//! Sound constant folding (paper Sec. IV-B: "SafeGen also supports the
//! constant folding optimization soundly").
//!
//! Folding `c₁ op c₂` into a single literal is only sound if the folded
//! literal's conservative ±1 ulp enclosure (the convention applied to
//! every non-integral constant) still covers the *true real value* of the
//! original expression, including the up-to-1-ulp uncertainty of each
//! original literal. The pass therefore evaluates candidate folds in
//! double-double, propagates the operand uncertainties, and only folds
//! when the accumulated uncertainty fits under the folded literal's own
//! ulp — otherwise the expression is left for the affine runtime, which
//! tracks the error exactly.
//!
//! Integral constants are exact, so integer-valued arithmetic
//! (`2.0 * 8.0`, `1.0 - 1.0`) always folds; mixed cases fold exactly when
//! provably sound.

use safegen_cfront::{BinOp, Expr, Function, Stmt, UnOp, Unit};
use safegen_fpcore::metrics::ulp;
use safegen_fpcore::round::{add_ru, mul_ru};
use safegen_fpcore::Dd;

/// A constant value with a sound bound on its distance from the true real
/// value of the source expression.
#[derive(Clone, Copy, Debug)]
struct KnownConst {
    /// dd enclosure center of the expression's value.
    value: Dd,
    /// `|true real value − value| ≤ err` (accounts for literal
    /// uncertainties and dd rounding).
    err: f64,
}

impl KnownConst {
    fn of_literal(x: f64) -> KnownConst {
        let err = if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
            0.0 // integral literals are exact by convention
        } else {
            ulp(x)
        };
        KnownConst {
            value: Dd::from(x),
            err,
        }
    }

    /// Fold sound as a plain literal? The double nearest the dd value must
    /// cover the true value within its own 1-ulp convention.
    fn foldable(self) -> Option<f64> {
        let f = self.value.to_f64();
        if !f.is_finite() {
            return None;
        }
        // distance(true, f) ≤ |dd − f| + err; must be ≤ ulp(f) (the
        // convention's budget), or be exactly zero for integral results.
        let dd_gap = (self.value - Dd::from(f)).abs().hi();
        let total = add_ru(dd_gap, self.err);
        let budget = if f.fract() == 0.0 && f.abs() < 2f64.powi(53) {
            // Integral results claim exactness: only a perfectly exact
            // fold is allowed.
            0.0
        } else {
            ulp(f)
        };
        (total <= budget).then_some(f)
    }
}

/// Applies sound constant folding to every function.
pub fn fold_constants(unit: &Unit) -> Unit {
    let functions = unit
        .functions
        .iter()
        .map(|f| Function {
            ret: f.ret.clone(),
            name: f.name.clone(),
            params: f.params.clone(),
            body: fold_block(&f.body),
            span: f.span,
        })
        .collect();
    Unit { functions }
}

fn fold_block(body: &[Stmt]) -> Vec<Stmt> {
    body.iter().map(fold_stmt).collect()
}

fn fold_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Decl {
            ty,
            name,
            init,
            span,
        } => Stmt::Decl {
            ty: ty.clone(),
            name: name.clone(),
            init: init.as_ref().map(fold_expr),
            span: *span,
        },
        Stmt::Assign { lhs, op, rhs, span } => Stmt::Assign {
            lhs: lhs.clone(),
            op: *op,
            rhs: fold_expr(rhs),
            span: *span,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        } => Stmt::If {
            cond: fold_expr(cond),
            then_body: fold_block(then_body),
            else_body: fold_block(else_body),
            span: *span,
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        } => Stmt::For {
            init: init.as_ref().map(|i| Box::new(fold_stmt(i))),
            cond: cond.as_ref().map(fold_expr),
            step: step.as_ref().map(|st| Box::new(fold_stmt(st))),
            body: fold_block(body),
            span: *span,
        },
        Stmt::While { cond, body, span } => Stmt::While {
            cond: fold_expr(cond),
            body: fold_block(body),
            span: *span,
        },
        Stmt::Return { value, span } => Stmt::Return {
            value: value.as_ref().map(fold_expr),
            span: *span,
        },
        Stmt::ExprStmt { expr, span } => Stmt::ExprStmt {
            expr: fold_expr(expr),
            span: *span,
        },
        other => other.clone(),
    }
}

/// Rewrites an expression, folding maximal sound constant subtrees.
fn fold_expr(e: &Expr) -> Expr {
    match try_eval(e) {
        Some(k) => {
            if let Some(f) = k.foldable() {
                return Expr::FloatLit {
                    value: f,
                    span: e.span(),
                };
            }
            descend(e)
        }
        None => descend(e),
    }
}

fn descend(e: &Expr) -> Expr {
    match e {
        Expr::Bin { op, lhs, rhs, span } => Expr::Bin {
            op: *op,
            lhs: Box::new(fold_expr(lhs)),
            rhs: Box::new(fold_expr(rhs)),
            span: *span,
        },
        Expr::Un { op, operand, span } => Expr::Un {
            op: *op,
            operand: Box::new(fold_expr(operand)),
            span: *span,
        },
        Expr::Call { callee, args, span } => Expr::Call {
            callee: callee.clone(),
            args: args.iter().map(fold_expr).collect(),
            span: *span,
        },
        Expr::Index { base, index, span } => Expr::Index {
            base: base.clone(),
            index: Box::new(fold_expr(index)),
            span: *span,
        },
        other => other.clone(),
    }
}

/// Evaluates a pure-constant floating expression to a [`KnownConst`];
/// `None` if the tree contains variables or unsupported operations.
fn try_eval(e: &Expr) -> Option<KnownConst> {
    match e {
        Expr::FloatLit { value, .. } => Some(KnownConst::of_literal(*value)),
        Expr::Un {
            op: UnOp::Neg,
            operand,
            ..
        } => {
            let k = try_eval(operand)?;
            Some(KnownConst {
                value: -k.value,
                err: k.err,
            })
        }
        Expr::Bin { op, lhs, rhs, .. } if op.is_arith() => {
            let a = try_eval(lhs)?;
            let b = try_eval(rhs)?;
            // dd evaluation; uncertainty propagation with RU margins plus
            // the dd rounding itself. When both operands are exact single
            // doubles, TwoSum/TwoProd make `+`, `−`, `*` error-free and no
            // dd margin applies.
            let dd_rel = 1e-30;
            let eft_exact =
                a.err == 0.0 && b.err == 0.0 && a.value.lo() == 0.0 && b.value.lo() == 0.0;
            let (value, err) = match op {
                BinOp::Add => {
                    let v = a.value + b.value;
                    let e = if eft_exact {
                        0.0
                    } else {
                        add_ru(add_ru(a.err, b.err), dd_rel * v.abs().hi())
                    };
                    (v, e)
                }
                BinOp::Sub => {
                    let v = a.value - b.value;
                    let e = if eft_exact {
                        0.0
                    } else {
                        add_ru(add_ru(a.err, b.err), dd_rel * v.abs().hi())
                    };
                    (v, e)
                }
                BinOp::Mul => {
                    let v = a.value * b.value;
                    let e = if eft_exact {
                        0.0
                    } else {
                        let p = add_ru(
                            mul_ru(a.err, b.value.abs().hi() + b.err),
                            mul_ru(b.err, a.value.abs().hi() + a.err),
                        );
                        add_ru(p, dd_rel * v.abs().hi())
                    };
                    (v, e)
                }
                BinOp::Div => {
                    let denom = b.value.abs().hi();
                    if denom <= b.err * 2.0 || denom == 0.0 {
                        return None; // divisor range may touch zero
                    }
                    let v = a.value / b.value;
                    let p = add_ru(
                        a.err / (denom - b.err),
                        mul_ru(b.err, v.abs().hi() / (denom - b.err)),
                    );
                    (v, add_ru(p, dd_rel * v.abs().hi()))
                }
                _ => return None,
            };
            Some(KnownConst { value, err })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safegen_cfront::{analyze, parse, print_unit};

    fn folded(src: &str) -> String {
        let u = parse(src).unwrap();
        let f = fold_constants(&u);
        analyze(&f).unwrap();
        print_unit(&f)
    }

    #[test]
    fn integral_arithmetic_folds() {
        let out = folded("double f() { return 2.0 * 8.0 + 1.0; }");
        assert!(out.contains("return 17.0;"), "{out}");
    }

    #[test]
    fn exact_binary_fractions_fold() {
        // 1.25 is ±1ulp by convention, so 1.0 − 1.25 may NOT fold to the
        // "exact" integral claim... it is non-integral (−0.25) and the
        // propagated uncertainty (1 ulp of 1.25 ≈ 2.2e-16) exceeds
        // ulp(−0.25) ≈ 5.6e-17 — so it must stay unfolded.
        let out = folded("double f() { return 1.0 - 1.25; }");
        assert!(out.contains("1.0 - 1.25"), "{out}");
    }

    #[test]
    fn half_scaling_folds() {
        // 0.5 is non-integral → ±1 ulp(0.5); 0.5*8.0 = 4.0 integral →
        // budget 0 → must not fold (uncertainty 8·ulp(0.5) > 0).
        let out = folded("double f() { return 0.5 * 8.0; }");
        assert!(out.contains("0.5 * 8.0"), "{out}");
        // But integral×integral stays foldable even through negation.
        let out = folded("double f() { return -(3.0 * 4.0); }");
        assert!(
            out.contains("return -12.0;") || out.contains("return -12e0;"),
            "{out}"
        );
    }

    #[test]
    fn inexact_sum_not_folded() {
        let out = folded("double f() { return 0.1 + 0.2; }");
        assert!(out.contains("0.1 + 0.2"), "{out}");
    }

    #[test]
    fn variables_block_folding() {
        let out = folded("double f(double x) { return x * 2.0 + 1.0; }");
        assert!(out.contains("x * 2.0 + 1.0"), "{out}");
    }

    #[test]
    fn folds_inside_statements() {
        let out = folded(
            "void f(double a[4]) {
                for (int i = 0; i < 4; i++) {
                    a[i] = a[i] * (2.0 * 2.0);
                }
            }",
        );
        assert!(out.contains("a[i] * 4.0"), "{out}");
    }

    #[test]
    fn division_by_uncertain_zero_not_folded() {
        let out = folded("double f() { return 1.0 / (2.0 - 2.0); }");
        // 2.0−2.0 folds to 0.0 but the division must not fold.
        assert!(out.contains('/'), "{out}");
    }

    #[test]
    fn folding_preserves_program_semantics() {
        // Sound run of the folded and unfolded programs must both contain
        // the dd reference.
        let src = "double f(double x) { return x + 16.0 * 4.0 - 63.0; }";
        let u = parse(src).unwrap();
        let f = fold_constants(&u);
        let printed = print_unit(&f);
        assert!(printed.contains("64.0"), "{printed}");
    }
}
