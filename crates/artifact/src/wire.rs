//! Little-endian wire primitives for the artifact body.
//!
//! All multi-byte integers in a `.sga` file are little-endian
//! (`docs/ARTIFACT.md` §2). The [`Reader`] is strict: every read is
//! bounds-checked, strings must be valid UTF-8, and the decoder's caller
//! checks that no bytes remain — a truncated or oversized body is a
//! format error, never a panic or a silent acceptance.

use std::fmt;

/// A decode failure: what was being read and at which byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What the reader was trying to decode (e.g. `"u32"`, `"string"`).
    pub what: &'static str,
    /// Byte offset into the buffer where the read started.
    pub offset: usize,
    /// Problem description.
    pub reason: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decoding {} at byte {}: {}",
            self.what, self.offset, self.reason
        )
    }
}

/// Appends length-prefixed and fixed-width values to a byte buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, little-endian.
    /// NaN payloads and signed zeros round-trip exactly.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a UTF-8 string as `u32` byte length + bytes.
    pub fn string(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Bounds-checked reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError {
                what,
                offset: self.pos,
                reason: "input truncated",
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern (exact, including NaNs).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8, "f64")?.try_into().unwrap(),
        )))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let start = self.pos;
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError {
                what: "string",
                offset: start,
                reason: "length exceeds remaining input",
            });
        }
        let bytes = self.take(len, "string")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError {
            what: "string",
            offset: start,
            reason: "invalid UTF-8",
        })
    }

    /// Reads a `u32` element count for a sequence whose elements occupy at
    /// least `min_elem_bytes` each, rejecting counts the remaining input
    /// cannot possibly hold (so a corrupted count cannot trigger a huge
    /// allocation before the truncation is noticed).
    pub fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, WireError> {
        let start = self.pos;
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError {
                what,
                offset: start,
                reason: "count exceeds remaining input",
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        w.string("κ symbols");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(r.string().unwrap(), "κ symbols");
        assert!(r.is_at_end());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        let e = r.u64().unwrap_err();
        assert_eq!(e.reason, "input truncated");
    }

    #[test]
    fn string_rejects_bad_utf8_and_overlong_length() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            Reader::new(&bad).string().unwrap_err().reason,
            "invalid UTF-8"
        );

        let mut overlong = Vec::new();
        overlong.extend_from_slice(&100u32.to_le_bytes());
        overlong.push(b'x');
        assert_eq!(
            Reader::new(&overlong).string().unwrap_err().reason,
            "length exceeds remaining input"
        );
    }

    #[test]
    fn count_guards_allocation() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        let e = Reader::new(&huge).count(4, "instrs").unwrap_err();
        assert_eq!(e.reason, "count exceeds remaining input");
    }
}
