//! The on-disk content-addressed compile cache.
//!
//! `safegen run file.c` pays front-end + mid-end cost on every
//! invocation even when the source has not changed. The cache removes
//! that: compilation outputs are stored as `.sga` artifacts keyed by a
//! hash of everything that determines them — the source text, the
//! compile options, and the artifact format version — so a repeat
//! compile is a single file read plus the artifact validator.
//!
//! The key is a SHA-256 over **length-prefixed** parts (a raw
//! concatenation would let `("ab","c")` and `("a","bc")` collide), and
//! the stored artifact carries its own content hash in the header, so a
//! corrupted cache entry fails validation on load and is treated as a
//! miss rather than ever being executed.
//!
//! The cache directory is `$SAFEGEN_CACHE_DIR` when set, else
//! `.safegen-cache/` under the current directory. Writes are atomic
//! (temp file + rename) so concurrent compiles never observe a torn
//! entry.
//!
//! The cache is **bounded**: after every store, entries are evicted
//! oldest-first (by modification time; hits refresh it, making the
//! order LRU-ish) until the directory is back under
//! `$SAFEGEN_CACHE_CAP_BYTES` (default 256 MiB; `0` disables the cap).
//! Eviction is best-effort — a failure to remove an old entry never
//! fails the store.

use crate::hash::Sha256;
use crate::{Artifact, ArtifactError, FORMAT_VERSION};
use safegen_telemetry as telemetry;
use safegen_telemetry::json::Json;
use safegen_telemetry::metrics::metrics;
#[cfg(feature = "os")]
use std::path::Path;
use std::path::PathBuf;

/// Records a `cache.lookup`/`cache.store` JSONL event (when the recorder
/// is enabled) carrying the key prefix and outcome — and, like every
/// event, the active request id, which is how a request's cache outcome
/// shows up in its trace.
fn cache_event(kind: &str, key: &str, outcome: &str) {
    if telemetry::enabled() {
        telemetry::record(
            kind,
            vec![
                ("key", Json::from(&key[..key.len().min(12)])),
                ("outcome", Json::from(outcome)),
            ],
        );
    }
}

/// Rescans the cache directory and sets the entry-count and byte-size
/// gauges. Called after stores and evictions (never on the lookup path).
#[cfg(feature = "os")]
fn refresh_gauges(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut count = 0i64;
    let mut bytes = 0i64;
    for e in entries.flatten() {
        let path = e.path();
        if path.extension().is_none_or(|x| x != "sga") {
            continue;
        }
        if let Ok(meta) = e.metadata() {
            count += 1;
            bytes += meta.len() as i64;
        }
    }
    let m = metrics();
    m.cache.entries.set(count);
    m.cache.bytes.set(bytes);
}

/// Environment variable overriding the cache directory.
pub const CACHE_DIR_ENV: &str = "SAFEGEN_CACHE_DIR";

/// The default cache directory name (under the current directory).
pub const DEFAULT_CACHE_DIR: &str = ".safegen-cache";

/// Environment variable overriding the cache size cap in bytes
/// (`0` = unlimited).
pub const CACHE_CAP_ENV: &str = "SAFEGEN_CACHE_CAP_BYTES";

/// Default cache size cap: 256 MiB.
pub const DEFAULT_CACHE_CAP_BYTES: u64 = 256 << 20;

/// The cache size cap currently in effect (`None` = unlimited).
pub fn cache_cap_bytes() -> Option<u64> {
    let cap = match std::env::var(CACHE_CAP_ENV) {
        Ok(v) if !v.is_empty() => v.parse().unwrap_or(DEFAULT_CACHE_CAP_BYTES),
        _ => DEFAULT_CACHE_CAP_BYTES,
    };
    (cap != 0).then_some(cap)
}

/// The cache directory currently in effect.
pub fn cache_dir() -> PathBuf {
    match std::env::var_os(CACHE_DIR_ENV) {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(DEFAULT_CACHE_DIR),
    }
}

/// Derives the cache key for a compilation: SHA-256 (hex) over the
/// length-prefixed source text and option strings, bound to the artifact
/// [`FORMAT_VERSION`] so a format bump invalidates every old entry.
///
/// ```
/// use safegen_artifact::cache::compile_key;
/// let k1 = compile_key("double f() { return 1.0; }", &["k=8"]);
/// let k2 = compile_key("double f() { return 2.0; }", &["k=8"]);
/// let k3 = compile_key("double f() { return 1.0; }", &["k=16"]);
/// assert_ne!(k1, k2); // source changes the key
/// assert_ne!(k1, k3); // options change the key
/// assert_eq!(k1, compile_key("double f() { return 1.0; }", &["k=8"]));
/// ```
pub fn compile_key(source: &str, options: &[&str]) -> String {
    let mut h = Sha256::new();
    let mut part = |bytes: &[u8]| {
        h.update(&(bytes.len() as u64).to_le_bytes());
        h.update(bytes);
    };
    part(b"safegen-compile-key");
    part(&FORMAT_VERSION.to_le_bytes());
    part(source.as_bytes());
    for opt in options {
        part(opt.as_bytes());
    }
    Sha256::hex(&h.finish())
}

/// The path a given key's artifact is stored at.
pub fn entry_path(key: &str) -> PathBuf {
    cache_dir().join(format!("{key}.sga"))
}

/// Looks up `key`, returning the cached artifact when present **and**
/// valid. A missing file is a miss; a file that fails artifact
/// validation (torn write, truncation, stale format, bit rot) is also
/// treated as a miss — the caller recompiles and overwrites it. A hit
/// refreshes the entry's modification time so the eviction order
/// approximates least-recently-used rather than least-recently-written.
pub fn load(key: &str) -> Option<Artifact> {
    #[cfg(not(feature = "os"))]
    {
        // No filesystem without an OS: every lookup is a (counted) miss.
        metrics().cache.misses.inc();
        cache_event("cache.lookup", key, "miss");
        None
    }
    #[cfg(feature = "os")]
    {
        let m = metrics();
        let path = entry_path(key);
        if !path.exists() {
            m.cache.misses.inc();
            cache_event("cache.lookup", key, "miss");
            return None;
        }
        match Artifact::read_file(&path) {
            Ok(artifact) => {
                m.cache.hits.inc();
                cache_event("cache.lookup", key, "hit");
                touch(&path);
                Some(artifact)
            }
            Err(_) => {
                // Present but invalid: count the corruption *and* the miss
                // (every lookup is exactly one hit or one miss).
                m.cache.corrupt.inc();
                m.cache.misses.inc();
                cache_event("cache.lookup", key, "corrupt");
                None
            }
        }
    }
}

/// Best-effort mtime refresh on a cache hit.
#[cfg(feature = "os")]
fn touch(path: &Path) {
    if let Ok(f) = std::fs::OpenOptions::new().append(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
}

/// Stores `artifact` under `key`, creating the cache directory on first
/// use. The write is atomic, so concurrent stores of the same key are
/// safe (last writer wins, both writers produced identical bytes). The
/// store then evicts oldest entries beyond the size cap (see
/// [`cache_cap_bytes`]); the entry just written is never evicted.
///
/// # Errors
///
/// [`ArtifactError::Io`] when the directory cannot be created or the
/// file cannot be written; callers may ignore it (a cold cache is only
/// a performance loss, never a correctness one). Eviction failures are
/// swallowed entirely.
pub fn store(key: &str, artifact: &Artifact) -> Result<(), ArtifactError> {
    #[cfg(not(feature = "os"))]
    {
        // No filesystem without an OS: a cold cache is only a
        // performance loss, so the store silently succeeds as a no-op.
        let _ = (key, artifact);
        Ok(())
    }
    #[cfg(feature = "os")]
    {
        let dir = cache_dir();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ArtifactError::Io(format!("create {}: {e}", dir.display())))?;
        artifact.write_file(&entry_path(key))?;
        if let Some(cap) = cache_cap_bytes() {
            let evicted = evict_to_cap(&dir, cap, key);
            metrics().cache.evictions.add(evicted);
        }
        refresh_gauges(&dir);
        cache_event("cache.store", key, "stored");
        Ok(())
    }
}

/// Removes `.sga` entries oldest-first until the directory's total entry
/// size is within `cap`, returning how many entries were removed.
/// `keep_key`'s entry is exempt, so a store always lands even when the
/// artifact alone exceeds the cap. Entirely best-effort: unreadable
/// metadata or a failed remove just skips that entry.
#[cfg(feature = "os")]
fn evict_to_cap(dir: &Path, cap: u64, keep_key: &str) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let keep_name = format!("{keep_key}.sga");
    // (mtime, path, size), `.sga` files only.
    let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
        .flatten()
        .filter_map(|e| {
            let path = e.path();
            if path.extension().is_none_or(|x| x != "sga") {
                return None;
            }
            let meta = e.metadata().ok()?;
            Some((meta.modified().ok()?, path, meta.len()))
        })
        .collect();
    let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
    if total <= cap {
        return 0;
    }
    // Oldest first; path as the tiebreaker keeps the order deterministic
    // on filesystems with coarse mtime granularity.
    files.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    let mut removed = 0u64;
    for (_, path, len) in files {
        if total <= cap {
            break;
        }
        if path.file_name().is_some_and(|n| n == keep_name.as_str()) {
            continue;
        }
        if std::fs::remove_file(&path).is_ok() {
            total = total.saturating_sub(len);
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArtifactMeta, ProgramVariant, VariantKind};
    use safegen_cfront::Span;
    use safegen_ir::cfg::ParamBinding;
    use safegen_ir::{Instr, Program};

    fn tiny_artifact() -> Artifact {
        Artifact {
            meta: ArtifactMeta::new("t.c"),
            programs: vec![ProgramVariant {
                func: "t".into(),
                kind: VariantKind::Plain,
                program: Program {
                    name: "t".into(),
                    code: vec![Instr::Ret(Some(0))],
                    n_fregs: 1,
                    n_iregs: 0,
                    arrays: vec![],
                    params: vec![("x".into(), ParamBinding::Float(0))],
                    spans: vec![Span::default()],
                },
            }],
        }
    }

    /// Serializes env mutation: tests in this module all touch
    /// `SAFEGEN_CACHE_DIR`.
    fn with_cache_dir<R>(f: impl FnOnce(&std::path::Path) -> R) -> R {
        use std::sync::Mutex;
        static ENV_LOCK: Mutex<()> = Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "sga-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::env::set_var(CACHE_DIR_ENV, &dir);
        let r = f(&dir);
        std::env::remove_var(CACHE_DIR_ENV);
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn store_then_load_round_trips() {
        with_cache_dir(|_| {
            let a = tiny_artifact();
            let key = compile_key("double t(double x) { return x; }", &[]);
            assert!(load(&key).is_none(), "cold cache must miss");
            store(&key, &a).unwrap();
            assert_eq!(load(&key).unwrap(), a);
        });
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        with_cache_dir(|_| {
            let a = tiny_artifact();
            let key = compile_key("src", &["opt"]);
            store(&key, &a).unwrap();
            let path = entry_path(&key);
            let mut bytes = std::fs::read(&path).unwrap();
            *bytes.last_mut().unwrap() ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            assert!(load(&key).is_none(), "corrupt entry must read as a miss");
        });
    }

    #[test]
    fn truncated_entry_is_a_miss_and_overwritten() {
        with_cache_dir(|_| {
            let a = tiny_artifact();
            let key = compile_key("src-trunc", &[]);
            store(&key, &a).unwrap();
            let path = entry_path(&key);
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
            assert!(load(&key).is_none(), "truncated entry must read as a miss");
            // The caller's recompile-and-store path overwrites it cleanly.
            store(&key, &a).unwrap();
            assert_eq!(load(&key).unwrap(), a);
        });
    }

    /// Sets the cache cap for the duration of `f` (call only inside
    /// `with_cache_dir`, which holds the env lock).
    fn with_cache_cap<R>(cap: u64, f: impl FnOnce() -> R) -> R {
        std::env::set_var(CACHE_CAP_ENV, cap.to_string());
        let r = f();
        std::env::remove_var(CACHE_CAP_ENV);
        r
    }

    fn set_mtime(key: &str, secs_ago: u64) {
        let t = std::time::SystemTime::now() - std::time::Duration::from_secs(secs_ago);
        let f = std::fs::OpenOptions::new()
            .append(true)
            .open(entry_path(key))
            .unwrap();
        f.set_modified(t).unwrap();
    }

    #[test]
    fn store_evicts_oldest_entries_beyond_the_cap() {
        with_cache_dir(|_| {
            let a = tiny_artifact();
            let (k1, k2, k3) = (
                compile_key("one", &[]),
                compile_key("two", &[]),
                compile_key("three", &[]),
            );
            store(&k1, &a).unwrap();
            store(&k2, &a).unwrap();
            let size = std::fs::metadata(entry_path(&k1)).unwrap().len();
            set_mtime(&k1, 300); // oldest
            set_mtime(&k2, 200);
            // Two entries fit under the cap; storing a third overflows
            // it and must evict exactly the oldest.
            with_cache_cap(2 * size, || store(&k3, &a).unwrap());
            assert!(load(&k1).is_none(), "oldest entry must be evicted");
            assert!(load(&k2).is_some());
            assert!(load(&k3).is_some(), "the just-stored entry survives");
        });
    }

    #[test]
    fn cache_hits_refresh_the_eviction_order() {
        with_cache_dir(|_| {
            let a = tiny_artifact();
            let (k1, k2, k3) = (
                compile_key("one", &[]),
                compile_key("two", &[]),
                compile_key("three", &[]),
            );
            store(&k1, &a).unwrap();
            store(&k2, &a).unwrap();
            let size = std::fs::metadata(entry_path(&k1)).unwrap().len();
            set_mtime(&k1, 300);
            set_mtime(&k2, 200);
            // A hit on the older entry moves it to the back of the
            // eviction queue, so the overflow evicts k2 instead.
            assert!(load(&k1).is_some());
            with_cache_cap(2 * size, || store(&k3, &a).unwrap());
            assert!(load(&k1).is_some(), "recently-hit entry survives");
            assert!(load(&k2).is_none(), "now-oldest entry is evicted");
            assert!(load(&k3).is_some());
        });
    }

    #[test]
    fn just_stored_entry_is_never_evicted() {
        with_cache_dir(|_| {
            let a = tiny_artifact();
            let key = compile_key("solo", &[]);
            // Cap smaller than a single artifact: the store must still
            // land (the cap only bounds *other* entries).
            with_cache_cap(1, || store(&key, &a).unwrap());
            assert!(load(&key).is_some());
        });
    }

    #[test]
    fn lookups_and_stores_move_the_cache_metrics() {
        with_cache_dir(|_| {
            let m = &metrics().cache;
            let (hits0, misses0, corrupt0) = (m.hits.get(), m.misses.get(), m.corrupt.get());
            let a = tiny_artifact();
            let key = compile_key("metrics-src", &[]);

            assert!(load(&key).is_none());
            assert_eq!(m.misses.get(), misses0 + 1, "cold lookup counts a miss");

            store(&key, &a).unwrap();
            assert!(load(&key).is_some());
            assert_eq!(m.hits.get(), hits0 + 1, "warm lookup counts a hit");

            // Corrupt the entry: the lookup counts both corrupt and miss.
            let path = entry_path(&key);
            let mut bytes = std::fs::read(&path).unwrap();
            *bytes.last_mut().unwrap() ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            assert!(load(&key).is_none());
            assert_eq!(m.corrupt.get(), corrupt0 + 1);
            assert_eq!(m.misses.get(), misses0 + 2);

            // Gauges reflect the directory contents after a store.
            store(&key, &a).unwrap();
            assert!(m.entries.get() >= 1, "entry gauge set after store");
            assert!(m.bytes.get() > 0, "byte gauge set after store");
        });
    }

    #[test]
    fn evictions_are_counted() {
        with_cache_dir(|_| {
            let m = &metrics().cache;
            let evictions0 = m.evictions.get();
            let a = tiny_artifact();
            let (k1, k2) = (compile_key("ev-one", &[]), compile_key("ev-two", &[]));
            store(&k1, &a).unwrap();
            let size = std::fs::metadata(entry_path(&k1)).unwrap().len();
            set_mtime(&k1, 300);
            with_cache_cap(size, || store(&k2, &a).unwrap());
            assert!(load(&k1).is_none(), "k1 must have been evicted");
            assert_eq!(m.evictions.get(), evictions0 + 1);
        });
    }

    #[test]
    fn key_parts_do_not_concatenate_ambiguously() {
        // Length prefixing: shifting a byte between parts changes the key.
        assert_ne!(compile_key("ab", &["c"]), compile_key("a", &["bc"]));
        assert_ne!(compile_key("x", &["y", "z"]), compile_key("x", &["yz"]));
    }
}
