//! The on-disk content-addressed compile cache.
//!
//! `safegen run file.c` pays front-end + mid-end cost on every
//! invocation even when the source has not changed. The cache removes
//! that: compilation outputs are stored as `.sga` artifacts keyed by a
//! hash of everything that determines them — the source text, the
//! compile options, and the artifact format version — so a repeat
//! compile is a single file read plus the artifact validator.
//!
//! The key is a SHA-256 over **length-prefixed** parts (a raw
//! concatenation would let `("ab","c")` and `("a","bc")` collide), and
//! the stored artifact carries its own content hash in the header, so a
//! corrupted cache entry fails validation on load and is treated as a
//! miss rather than ever being executed.
//!
//! The cache directory is `$SAFEGEN_CACHE_DIR` when set, else
//! `.safegen-cache/` under the current directory. Writes are atomic
//! (temp file + rename) so concurrent compiles never observe a torn
//! entry.

use crate::hash::Sha256;
use crate::{Artifact, ArtifactError, FORMAT_VERSION};
use std::path::PathBuf;

/// Environment variable overriding the cache directory.
pub const CACHE_DIR_ENV: &str = "SAFEGEN_CACHE_DIR";

/// The default cache directory name (under the current directory).
pub const DEFAULT_CACHE_DIR: &str = ".safegen-cache";

/// The cache directory currently in effect.
pub fn cache_dir() -> PathBuf {
    match std::env::var_os(CACHE_DIR_ENV) {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(DEFAULT_CACHE_DIR),
    }
}

/// Derives the cache key for a compilation: SHA-256 (hex) over the
/// length-prefixed source text and option strings, bound to the artifact
/// [`FORMAT_VERSION`] so a format bump invalidates every old entry.
///
/// ```
/// use safegen_artifact::cache::compile_key;
/// let k1 = compile_key("double f() { return 1.0; }", &["k=8"]);
/// let k2 = compile_key("double f() { return 2.0; }", &["k=8"]);
/// let k3 = compile_key("double f() { return 1.0; }", &["k=16"]);
/// assert_ne!(k1, k2); // source changes the key
/// assert_ne!(k1, k3); // options change the key
/// assert_eq!(k1, compile_key("double f() { return 1.0; }", &["k=8"]));
/// ```
pub fn compile_key(source: &str, options: &[&str]) -> String {
    let mut h = Sha256::new();
    let mut part = |bytes: &[u8]| {
        h.update(&(bytes.len() as u64).to_le_bytes());
        h.update(bytes);
    };
    part(b"safegen-compile-key");
    part(&FORMAT_VERSION.to_le_bytes());
    part(source.as_bytes());
    for opt in options {
        part(opt.as_bytes());
    }
    Sha256::hex(&h.finish())
}

/// The path a given key's artifact is stored at.
pub fn entry_path(key: &str) -> PathBuf {
    cache_dir().join(format!("{key}.sga"))
}

/// Looks up `key`, returning the cached artifact when present **and**
/// valid. A missing file is a miss; a file that fails artifact
/// validation (torn write, stale format, bit rot) is also treated as a
/// miss — the caller recompiles and overwrites it.
pub fn load(key: &str) -> Option<Artifact> {
    Artifact::read_file(&entry_path(key)).ok()
}

/// Stores `artifact` under `key`, creating the cache directory on first
/// use. The write is atomic, so concurrent stores of the same key are
/// safe (last writer wins, both writers produced identical bytes).
///
/// # Errors
///
/// [`ArtifactError::Io`] when the directory cannot be created or the
/// file cannot be written; callers may ignore it (a cold cache is only
/// a performance loss, never a correctness one).
pub fn store(key: &str, artifact: &Artifact) -> Result<(), ArtifactError> {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir)
        .map_err(|e| ArtifactError::Io(format!("create {}: {e}", dir.display())))?;
    artifact.write_file(&entry_path(key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArtifactMeta, ProgramVariant, VariantKind};
    use safegen_cfront::Span;
    use safegen_ir::cfg::ParamBinding;
    use safegen_ir::{Instr, Program};

    fn tiny_artifact() -> Artifact {
        Artifact {
            meta: ArtifactMeta::new("t.c"),
            programs: vec![ProgramVariant {
                func: "t".into(),
                kind: VariantKind::Plain,
                program: Program {
                    name: "t".into(),
                    code: vec![Instr::Ret(Some(0))],
                    n_fregs: 1,
                    n_iregs: 0,
                    arrays: vec![],
                    params: vec![("x".into(), ParamBinding::Float(0))],
                    spans: vec![Span::default()],
                },
            }],
        }
    }

    /// Serializes env mutation: tests in this module all touch
    /// `SAFEGEN_CACHE_DIR`.
    fn with_cache_dir<R>(f: impl FnOnce(&std::path::Path) -> R) -> R {
        use std::sync::Mutex;
        static ENV_LOCK: Mutex<()> = Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "sga-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::env::set_var(CACHE_DIR_ENV, &dir);
        let r = f(&dir);
        std::env::remove_var(CACHE_DIR_ENV);
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn store_then_load_round_trips() {
        with_cache_dir(|_| {
            let a = tiny_artifact();
            let key = compile_key("double t(double x) { return x; }", &[]);
            assert!(load(&key).is_none(), "cold cache must miss");
            store(&key, &a).unwrap();
            assert_eq!(load(&key).unwrap(), a);
        });
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        with_cache_dir(|_| {
            let a = tiny_artifact();
            let key = compile_key("src", &["opt"]);
            store(&key, &a).unwrap();
            let path = entry_path(&key);
            let mut bytes = std::fs::read(&path).unwrap();
            *bytes.last_mut().unwrap() ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            assert!(load(&key).is_none(), "corrupt entry must read as a miss");
        });
    }

    #[test]
    fn key_parts_do_not_concatenate_ambiguously() {
        // Length prefixing: shifting a byte between parts changes the key.
        assert_ne!(compile_key("ab", &["c"]), compile_key("a", &["bc"]));
        assert_ne!(compile_key("x", &["y", "z"]), compile_key("x", &["yz"]));
    }
}
