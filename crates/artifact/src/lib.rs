#![warn(missing_docs)]
//! # safegen-artifact
//!
//! The versioned, content-hashed serialization of SafeGen-compiled
//! programs — the `.sga` artifact format — plus the on-disk
//! content-addressed compile cache.
//!
//! The compiler's output ([`Program`] bytecode, register/array layout,
//! provenance spans, and the pass-pipeline/analysis metadata of the
//! compilation) is plain data; this crate gives it a stable on-disk
//! shape so compilation can be **amortized**: compile once, ship or
//! cache the artifact, and serve many evaluation requests from it
//! without ever re-running the front-end (`safegen serve`). The format
//! is specified normatively in `docs/ARTIFACT.md`; this crate is the
//! reference implementation, and `tests/artifact_spec.rs` checks the
//! spec's worked example byte-for-byte against [`Artifact::to_bytes`].
//!
//! ## Safety model
//!
//! Artifacts may arrive over a network or a shared cache, so
//! [`Artifact::from_bytes`] is **strict**: it validates the magic,
//! format version, header flags, payload length, and the SHA-256
//! content hash *before* touching the body, and then bounds-checks
//! every register index, array id, and jump target against the declared
//! layout before a program is handed to the VM. A corrupted, truncated,
//! or incompatible artifact is a diagnostic ([`ArtifactError`]), never
//! an out-of-bounds execution.
//!
//! ## Round trip
//!
//! ```
//! use safegen_artifact::{Artifact, ArtifactMeta, ProgramVariant, VariantKind};
//! use safegen_ir::{Instr, Program};
//! use safegen_ir::cfg::ParamBinding;
//! use safegen_cfront::Span;
//!
//! // A tiny hand-built program: double sq(double x) { return x * x; }
//! let prog = Program {
//!     name: "sq".into(),
//!     code: vec![Instr::Mul(1, 0, 0), Instr::Ret(Some(1))],
//!     n_fregs: 2,
//!     n_iregs: 0,
//!     arrays: vec![],
//!     params: vec![("x".into(), ParamBinding::Float(0))],
//!     spans: vec![Span::default(); 2],
//! };
//! let artifact = Artifact {
//!     meta: ArtifactMeta::new("sq.c"),
//!     programs: vec![ProgramVariant { func: "sq".into(), kind: VariantKind::Plain, program: prog }],
//! };
//!
//! let bytes = artifact.to_bytes();
//! let back = Artifact::from_bytes(&bytes).unwrap();
//! assert_eq!(back, artifact);
//! assert_eq!(back.find("sq", &VariantKind::Plain).unwrap().code.len(), 2);
//!
//! // Any bit flip in the payload is caught by the content hash.
//! let mut corrupt = bytes.clone();
//! *corrupt.last_mut().unwrap() ^= 1;
//! assert!(Artifact::from_bytes(&corrupt).is_err());
//! ```

pub mod cache;
pub mod hash;
pub mod wire;

use hash::Sha256;
use safegen_cfront::Span;
use safegen_ir::cfg::{ArrayDecl, ParamBinding};
use safegen_ir::{CmpOp, Instr, Program};
use safegen_telemetry::json::{self, Json};
use std::fmt;
use std::path::Path;
use wire::{Reader, WireError, Writer};

/// The four magic bytes every artifact starts with: `"SGAF"`.
pub const MAGIC: [u8; 4] = *b"SGAF";

/// The artifact format version this crate reads and writes.
///
/// The version is bumped on **any** change to the byte layout; readers
/// reject every version other than their own (`docs/ARTIFACT.md` §6 —
/// recompiling is always possible and always sound, so there is no
/// cross-version compatibility machinery to get wrong).
pub const FORMAT_VERSION: u16 = 1;

/// Fixed header length in bytes (`docs/ARTIFACT.md` §3).
pub const HEADER_LEN: usize = 48;

/// Hard cap on a program's register-file sizes; a layout above this is
/// rejected as malformed before the VM would allocate it.
pub const MAX_REGS: usize = 1 << 20;

/// Hard cap on one array's element count (same rationale as [`MAX_REGS`]).
pub const MAX_ARRAY_ELEMS: usize = 1 << 24;

/// Header capability flag: the artifact contains programs whose loops
/// were compiled for the **fixpoint** evaluation mode (unbounded-loop
/// invariants; `docs/ARTIFACT.md` §3). Readers that predate the flag
/// reject such artifacts with [`ArtifactError::BadFlags`] — a specific
/// diagnostic, never a silent wrong evaluation.
pub const FLAG_FIXPOINT: u16 = 0x0001;

/// The META `capabilities` entry paired with [`FLAG_FIXPOINT`].
pub const CAP_FIXPOINT: &str = "loop.fixpoint";

/// Every header flag this reader understands; any other bit is rejected.
pub const KNOWN_FLAGS: u16 = FLAG_FIXPOINT;

/// Section tag: artifact metadata (JSON), exactly one, first.
pub const SEC_META: [u8; 4] = *b"META";

/// Section tag: one serialized program variant.
pub const SEC_PROG: [u8; 4] = *b"PROG";

/// Why an artifact failed to load.
#[derive(Clone, Debug, PartialEq)]
pub enum ArtifactError {
    /// Input shorter than the fixed header.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Header version ≠ [`FORMAT_VERSION`].
    UnsupportedVersion(u16),
    /// Header flags carried a bit this reader does not understand
    /// (version-1 readers that predate every capability treat the whole
    /// field as reserved-zero).
    BadFlags(u16),
    /// The header capability flags and the META `capabilities` list
    /// disagree — one was edited without the other.
    CapabilityMismatch(String),
    /// Header payload length disagrees with the actual input length.
    PayloadLength {
        /// Length the header declares.
        declared: u64,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// SHA-256 of the payload does not match the header hash.
    HashMismatch {
        /// Hash stored in the header (hex).
        expected: String,
        /// Hash of the payload as read (hex).
        actual: String,
    },
    /// A primitive read failed (truncation, bad UTF-8, absurd count).
    Wire(WireError),
    /// The bytes parsed but violate a structural rule of the format.
    Malformed(String),
    /// Filesystem failure (only from the path-based helpers).
    Io(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated { need, have } => {
                write!(f, "artifact truncated: need {need} bytes, have {have}")
            }
            ArtifactError::BadMagic(m) => {
                write!(f, "not a safegen artifact (magic {m:02x?}, want \"SGAF\")")
            }
            ArtifactError::UnsupportedVersion(v) => write!(
                f,
                "unsupported artifact version {v} (this build reads version {FORMAT_VERSION}); \
                 recompile the source to regenerate the artifact"
            ),
            ArtifactError::BadFlags(x) => write!(f, "reserved header flags set ({x:#06x})"),
            ArtifactError::CapabilityMismatch(msg) => {
                write!(f, "capability mismatch: {msg}")
            }
            ArtifactError::PayloadLength { declared, actual } => write!(
                f,
                "payload length mismatch: header declares {declared} bytes, found {actual}"
            ),
            ArtifactError::HashMismatch { expected, actual } => write!(
                f,
                "content hash mismatch (artifact corrupted or tampered): header {expected}, \
                 payload hashes to {actual}"
            ),
            ArtifactError::Wire(e) => write!(f, "malformed artifact: {e}"),
            ArtifactError::Malformed(m) => write!(f, "malformed artifact: {m}"),
            ArtifactError::Io(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<WireError> for ArtifactError {
    fn from(e: WireError) -> Self {
        ArtifactError::Wire(e)
    }
}

/// Which compilation variant of a function a serialized program is.
///
/// The driver compiles each function into up to three shapes (paper
/// Sec. VI): the plain program, the priority-annotated program for a
/// symbol budget `k`, and the variable-capacity program. The artifact
/// stores each precompiled shape under its key so the serving path
/// never recompiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VariantKind {
    /// No analysis annotations; valid for every numeric domain.
    Plain,
    /// `#pragma safegen prioritize` protection compiled in for budget `k`.
    Prioritized {
        /// The noise-symbol budget the max-reuse analysis targeted.
        k: u32,
    },
    /// Variable-capacity annotations: operations off every reuse
    /// connection run at `k_low` symbols instead of `k`.
    Capacity {
        /// The full symbol budget.
        k: u32,
        /// The reduced budget off reuse connections.
        k_low: u32,
        /// Whether priorities were also compiled in.
        prioritized: bool,
    },
}

impl fmt::Display for VariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantKind::Plain => write!(f, "plain"),
            VariantKind::Prioritized { k } => write!(f, "prioritized(k={k})"),
            VariantKind::Capacity {
                k,
                k_low,
                prioritized,
            } => write!(
                f,
                "capacity(k={k},k_low={k_low}{})",
                if *prioritized { ",prioritized" } else { "" }
            ),
        }
    }
}

/// One serialized program: the function it came from, the compilation
/// variant, and the bytecode itself.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramVariant {
    /// Source function name.
    pub func: String,
    /// Which compilation variant this program is.
    pub kind: VariantKind,
    /// The executable program.
    pub program: Program,
}

/// Artifact-level metadata (the JSON `META` section).
#[derive(Clone, Debug, PartialEq)]
pub struct ArtifactMeta {
    /// Human-readable artifact name (conventionally the source file name).
    pub name: String,
    /// Producing tool and version, e.g. `safegen-rs 0.1.0`.
    pub tool: String,
    /// The mid-end pass pipeline every program was compiled with, in run
    /// order — the *pass-pipeline fingerprint* of the compilation.
    pub passes: Vec<String>,
    /// Whether the max-reuse analysis was enabled at compile time.
    pub prioritize: bool,
    /// SHA-256 (hex) of the C source this artifact was compiled from,
    /// when known — lets a cache detect stale artifacts.
    pub source_sha256: Option<String>,
    /// Execution capabilities the artifact's programs require, e.g.
    /// [`CAP_FIXPOINT`]. Each known capability is mirrored into the
    /// header flags so readers that predate it reject the artifact at
    /// the header, before parsing anything. Empty for every artifact a
    /// pre-capability producer would have written (and then omitted from
    /// the META JSON, keeping those byte layouts identical).
    pub capabilities: Vec<String>,
}

impl ArtifactMeta {
    /// Metadata with this crate's tool string, the default pipeline
    /// fingerprint left empty, analysis marked on, no source hash, and
    /// no capabilities.
    pub fn new(name: &str) -> ArtifactMeta {
        ArtifactMeta {
            name: name.to_string(),
            tool: tool_version(),
            passes: Vec::new(),
            prioritize: true,
            source_sha256: None,
            capabilities: Vec::new(),
        }
    }

    /// The header flag bits implied by the capability list.
    pub fn header_flags(&self) -> u16 {
        if self.capabilities.iter().any(|c| c == CAP_FIXPOINT) {
            FLAG_FIXPOINT
        } else {
            0
        }
    }
}

/// The producing tool string this build writes into artifacts.
pub fn tool_version() -> String {
    format!("safegen-rs {}", env!("CARGO_PKG_VERSION"))
}

/// A deserialized (or to-be-serialized) artifact: metadata plus a set of
/// precompiled program variants.
#[derive(Clone, Debug, PartialEq)]
pub struct Artifact {
    /// The `META` section.
    pub meta: ArtifactMeta,
    /// The `PROG` sections, in file order. Keys `(func, kind)` are
    /// unique (enforced on both encode and decode).
    pub programs: Vec<ProgramVariant>,
}

impl Artifact {
    /// Looks up the program for `(func, kind)`.
    pub fn find(&self, func: &str, kind: &VariantKind) -> Option<&Program> {
        self.programs
            .iter()
            .find(|v| v.func == func && v.kind == *kind)
            .map(|v| &v.program)
    }

    /// The distinct function names with at least one variant, in first-
    /// appearance order.
    pub fn functions(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for v in &self.programs {
            if !out.contains(&v.func.as_str()) {
                out.push(&v.func);
            }
        }
        out
    }

    /// Serializes to the `.sga` byte format (header + hashed payload).
    ///
    /// # Panics
    ///
    /// Panics if two variants share the same `(func, kind)` key — a
    /// builder bug, caught before an ambiguous artifact can be written.
    pub fn to_bytes(&self) -> Vec<u8> {
        for (i, a) in self.programs.iter().enumerate() {
            for b in &self.programs[..i] {
                assert!(
                    !(a.func == b.func && a.kind == b.kind),
                    "duplicate program variant {} {}",
                    a.func,
                    a.kind
                );
            }
        }
        let payload = self.encode_payload();
        let digest = Sha256::digest(&payload);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.meta.header_flags().to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&digest);
        out.extend_from_slice(&payload);
        out
    }

    /// The artifact's content id: SHA-256 (hex) of the payload — the
    /// same digest [`Artifact::to_bytes`] stores in the header, and the
    /// name the content-addressed cache stores the artifact under.
    pub fn id(&self) -> String {
        Sha256::hex(&Sha256::digest(&self.encode_payload()))
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        push_section(&mut payload, SEC_META, &self.encode_meta());
        for v in &self.programs {
            push_section(&mut payload, SEC_PROG, &encode_program(v));
        }
        payload
    }

    fn encode_meta(&self) -> Vec<u8> {
        let m = &self.meta;
        let mut fields = vec![
            ("format", Json::from("safegen-artifact")),
            ("version", Json::from(FORMAT_VERSION as u64)),
            ("name", Json::from(m.name.as_str())),
            ("tool", Json::from(m.tool.as_str())),
            (
                "passes",
                Json::Arr(m.passes.iter().map(|p| Json::from(p.as_str())).collect()),
            ),
            ("prioritize", Json::Bool(m.prioritize)),
            (
                "source_sha256",
                match &m.source_sha256 {
                    Some(h) => Json::from(h.as_str()),
                    None => Json::Null,
                },
            ),
        ];
        // Omitted entirely when empty, so every capability-free artifact
        // is byte-identical to what pre-capability producers wrote (the
        // pinned bytes of `tests/artifact_spec.rs` stay valid).
        if !m.capabilities.is_empty() {
            fields.push((
                "capabilities",
                Json::Arr(
                    m.capabilities
                        .iter()
                        .map(|c| Json::from(c.as_str()))
                        .collect(),
                ),
            ));
        }
        Json::obj(fields).to_string().into_bytes()
    }

    /// Strictly deserializes an artifact, validating the header, the
    /// content hash, the section structure, and every program's bounds
    /// before returning.
    ///
    /// # Errors
    ///
    /// Every way the input can be wrong maps to a specific
    /// [`ArtifactError`]; nothing malformed is ever silently accepted.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
        if bytes.len() < HEADER_LEN {
            return Err(ArtifactError::Truncated {
                need: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
        if flags & !KNOWN_FLAGS != 0 {
            return Err(ArtifactError::BadFlags(flags));
        }
        let declared = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let payload = &bytes[HEADER_LEN..];
        if declared != payload.len() as u64 {
            return Err(ArtifactError::PayloadLength {
                declared,
                actual: payload.len(),
            });
        }
        let stored: [u8; 32] = bytes[16..48].try_into().unwrap();
        let actual = Sha256::digest(payload);
        if stored != actual {
            return Err(ArtifactError::HashMismatch {
                expected: Sha256::hex(&stored),
                actual: Sha256::hex(&actual),
            });
        }

        let mut meta: Option<ArtifactMeta> = None;
        let mut programs: Vec<ProgramVariant> = Vec::new();
        let mut r = Reader::new(payload);
        let mut first = true;
        while !r.is_at_end() {
            let tag: [u8; 4] = r.bytes(4, "section tag")?.try_into().unwrap();
            let len = r.u64()? as usize;
            if len > r.remaining() {
                return Err(ArtifactError::Malformed(format!(
                    "section {:?} declares {len} bytes, {} remain",
                    String::from_utf8_lossy(&tag),
                    r.remaining()
                )));
            }
            let body = r.bytes(len, "section body")?;
            match tag {
                SEC_META => {
                    if !first {
                        return Err(ArtifactError::Malformed(
                            "META section must come first".into(),
                        ));
                    }
                    if meta.is_some() {
                        return Err(ArtifactError::Malformed("duplicate META section".into()));
                    }
                    meta = Some(decode_meta(body)?);
                }
                SEC_PROG => {
                    if meta.is_none() {
                        return Err(ArtifactError::Malformed(
                            "PROG section before META section".into(),
                        ));
                    }
                    let v = decode_program(body)?;
                    if programs
                        .iter()
                        .any(|p| p.func == v.func && p.kind == v.kind)
                    {
                        return Err(ArtifactError::Malformed(format!(
                            "duplicate program variant {} {}",
                            v.func, v.kind
                        )));
                    }
                    programs.push(v);
                }
                other => {
                    return Err(ArtifactError::Malformed(format!(
                        "unknown section tag {:?}",
                        String::from_utf8_lossy(&other)
                    )));
                }
            }
            first = false;
        }
        let meta = meta.ok_or_else(|| ArtifactError::Malformed("missing META section".into()))?;
        if meta.header_flags() != flags {
            return Err(ArtifactError::CapabilityMismatch(format!(
                "header flags {flags:#06x} but META capabilities imply {:#06x}",
                meta.header_flags()
            )));
        }
        Ok(Artifact { meta, programs })
    }

    /// Writes the artifact to `path` (atomically: temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] with the failing path.
    pub fn write_file(&self, path: &Path) -> Result<(), ArtifactError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("sga.tmp");
        std::fs::write(&tmp, &bytes)
            .map_err(|e| ArtifactError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| ArtifactError::Io(format!("rename to {}: {e}", path.display())))
    }

    /// Reads and strictly validates an artifact file.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] if the file cannot be read, otherwise any
    /// [`Artifact::from_bytes`] validation error.
    pub fn read_file(path: &Path) -> Result<Artifact, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("read {}: {e}", path.display())))?;
        Artifact::from_bytes(&bytes)
    }
}

fn push_section(out: &mut Vec<u8>, tag: [u8; 4], body: &[u8]) {
    out.extend_from_slice(&tag);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
}

fn decode_meta(body: &[u8]) -> Result<ArtifactMeta, ArtifactError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ArtifactError::Malformed("META section is not UTF-8".into()))?;
    let v = json::parse(text).map_err(|e| ArtifactError::Malformed(format!("META JSON: {e}")))?;
    let str_field = |key: &str| -> Result<String, ArtifactError> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ArtifactError::Malformed(format!("META missing string field {key:?}")))
    };
    let format = str_field("format")?;
    if format != "safegen-artifact" {
        return Err(ArtifactError::Malformed(format!(
            "META format is {format:?}, want \"safegen-artifact\""
        )));
    }
    let version = v
        .get("version")
        .and_then(Json::as_f64)
        .ok_or_else(|| ArtifactError::Malformed("META missing numeric field \"version\"".into()))?;
    if version != FORMAT_VERSION as f64 {
        return Err(ArtifactError::Malformed(format!(
            "META version {version} disagrees with header version {FORMAT_VERSION}"
        )));
    }
    let passes = v
        .get("passes")
        .and_then(Json::as_arr)
        .ok_or_else(|| ArtifactError::Malformed("META missing array field \"passes\"".into()))?
        .iter()
        .map(|p| {
            p.as_str().map(str::to_string).ok_or_else(|| {
                ArtifactError::Malformed("META passes entries must be strings".into())
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let prioritize = match v.get("prioritize") {
        Some(Json::Bool(b)) => *b,
        _ => {
            return Err(ArtifactError::Malformed(
                "META missing boolean field \"prioritize\"".into(),
            ))
        }
    };
    let source_sha256 = match v.get("source_sha256") {
        Some(Json::Null) | None => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => {
            return Err(ArtifactError::Malformed(
                "META source_sha256 must be a string or null".into(),
            ))
        }
    };
    let capabilities = match v.get("capabilities") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Arr(cs)) => cs
            .iter()
            .map(|c| {
                c.as_str().map(str::to_string).ok_or_else(|| {
                    ArtifactError::Malformed("META capabilities entries must be strings".into())
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => {
            return Err(ArtifactError::Malformed(
                "META capabilities must be an array of strings".into(),
            ))
        }
    };
    Ok(ArtifactMeta {
        name: str_field("name")?,
        tool: str_field("tool")?,
        passes,
        prioritize,
        source_sha256,
        capabilities,
    })
}

/// Variant-kind wire tags (`docs/ARTIFACT.md` §4.1).
const VK_PLAIN: u8 = 0;
const VK_PRIORITIZED: u8 = 1;
const VK_CAPACITY: u8 = 2;

fn encode_program(v: &ProgramVariant) -> Vec<u8> {
    let p = &v.program;
    let mut w = Writer::new();
    w.string(&v.func);
    match v.kind {
        VariantKind::Plain => {
            w.u8(VK_PLAIN);
            w.u32(0);
            w.u32(0);
            w.u8(0);
        }
        VariantKind::Prioritized { k } => {
            w.u8(VK_PRIORITIZED);
            w.u32(k);
            w.u32(0);
            w.u8(0);
        }
        VariantKind::Capacity {
            k,
            k_low,
            prioritized,
        } => {
            w.u8(VK_CAPACITY);
            w.u32(k);
            w.u32(k_low);
            w.u8(u8::from(prioritized));
        }
    }
    w.string(&p.name);
    w.u32(p.n_fregs as u32);
    w.u32(p.n_iregs as u32);
    w.u32(p.arrays.len() as u32);
    for a in &p.arrays {
        w.string(&a.name);
        w.u64(a.len as u64);
        w.u8(a.dims.len() as u8);
        for d in &a.dims {
            w.u64(*d as u64);
        }
        w.u8(u8::from(a.is_param));
    }
    w.u32(p.params.len() as u32);
    for (name, binding) in &p.params {
        w.string(name);
        match binding {
            ParamBinding::Float(r) => {
                w.u8(0);
                w.u32(*r);
            }
            ParamBinding::Int(r) => {
                w.u8(1);
                w.u32(*r);
            }
            ParamBinding::Array(id) => {
                w.u8(2);
                w.u32(*id);
            }
        }
    }
    w.u32(p.code.len() as u32);
    for i in &p.code {
        encode_instr(&mut w, i);
    }
    for s in &p.spans {
        w.u64(s.start as u64);
        w.u64(s.end as u64);
        w.u32(s.line);
        w.u32(s.col);
    }
    w.into_bytes()
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Gt => 2,
        CmpOp::Ge => 3,
        CmpOp::Eq => 4,
        CmpOp::Ne => 5,
    }
}

fn cmp_of(tag: u8, at: usize) -> Result<CmpOp, ArtifactError> {
    Ok(match tag {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        5 => CmpOp::Ne,
        other => {
            return Err(ArtifactError::Malformed(format!(
                "unknown comparison tag {other} at byte {at}"
            )))
        }
    })
}

/// Opcode bytes (`docs/ARTIFACT.md` §4.4). Stable within a format
/// version; any renumbering requires a [`FORMAT_VERSION`] bump.
#[rustfmt::skip]
mod op {
    pub const ADD: u8 = 0;      pub const SUB: u8 = 1;
    pub const MUL: u8 = 2;      pub const DIV: u8 = 3;
    pub const SQRT: u8 = 4;     pub const ABS: u8 = 5;
    pub const NEG: u8 = 6;      pub const MIN: u8 = 7;
    pub const MAX: u8 = 8;      pub const CONST_F: u8 = 9;
    pub const MOV_F: u8 = 10;   pub const CAST_IF: u8 = 11;
    pub const LOAD_ARR: u8 = 12; pub const STORE_ARR: u8 = 13;
    pub const CONST_I: u8 = 14; pub const ADD_I: u8 = 15;
    pub const SUB_I: u8 = 16;   pub const MUL_I: u8 = 17;
    pub const DIV_I: u8 = 18;   pub const MOV_I: u8 = 19;
    pub const CAST_FI: u8 = 20; pub const CMP_I: u8 = 21;
    pub const CMP_F: u8 = 22;   pub const JUMP: u8 = 23;
    pub const JUMP_IF_ZERO: u8 = 24; pub const PROTECT: u8 = 25;
    pub const SET_CAPACITY: u8 = 26; pub const RET: u8 = 27;
}

fn encode_instr(w: &mut Writer, i: &Instr) {
    let rrr = |w: &mut Writer, o: u8, d: u32, a: u32, b: u32| {
        w.u8(o);
        w.u32(d);
        w.u32(a);
        w.u32(b);
    };
    let rr = |w: &mut Writer, o: u8, d: u32, a: u32| {
        w.u8(o);
        w.u32(d);
        w.u32(a);
    };
    match *i {
        Instr::Add(d, a, b) => rrr(w, op::ADD, d, a, b),
        Instr::Sub(d, a, b) => rrr(w, op::SUB, d, a, b),
        Instr::Mul(d, a, b) => rrr(w, op::MUL, d, a, b),
        Instr::Div(d, a, b) => rrr(w, op::DIV, d, a, b),
        Instr::Sqrt(d, a) => rr(w, op::SQRT, d, a),
        Instr::Abs(d, a) => rr(w, op::ABS, d, a),
        Instr::Neg(d, a) => rr(w, op::NEG, d, a),
        Instr::Min(d, a, b) => rrr(w, op::MIN, d, a, b),
        Instr::Max(d, a, b) => rrr(w, op::MAX, d, a, b),
        Instr::ConstF(d, c) => {
            w.u8(op::CONST_F);
            w.u32(d);
            w.f64(c);
        }
        Instr::MovF(d, s) => rr(w, op::MOV_F, d, s),
        Instr::CastIF(d, s) => rr(w, op::CAST_IF, d, s),
        Instr::LoadArr(d, a, idx) => rrr(w, op::LOAD_ARR, d, a, idx),
        Instr::StoreArr(a, idx, s) => rrr(w, op::STORE_ARR, a, idx, s),
        Instr::ConstI(d, c) => {
            w.u8(op::CONST_I);
            w.u32(d);
            w.i64(c);
        }
        Instr::AddI(d, a, b) => rrr(w, op::ADD_I, d, a, b),
        Instr::SubI(d, a, b) => rrr(w, op::SUB_I, d, a, b),
        Instr::MulI(d, a, b) => rrr(w, op::MUL_I, d, a, b),
        Instr::DivI(d, a, b) => rrr(w, op::DIV_I, d, a, b),
        Instr::MovI(d, s) => rr(w, op::MOV_I, d, s),
        Instr::CastFI(d, s) => rr(w, op::CAST_FI, d, s),
        Instr::CmpI(cmp, d, a, b) => {
            w.u8(op::CMP_I);
            w.u8(cmp_tag(cmp));
            w.u32(d);
            w.u32(a);
            w.u32(b);
        }
        Instr::CmpF(cmp, d, a, b) => {
            w.u8(op::CMP_F);
            w.u8(cmp_tag(cmp));
            w.u32(d);
            w.u32(a);
            w.u32(b);
        }
        Instr::Jump(t) => {
            w.u8(op::JUMP);
            w.u64(t as u64);
        }
        Instr::JumpIfZero(c, t) => {
            w.u8(op::JUMP_IF_ZERO);
            w.u32(c);
            w.u64(t as u64);
        }
        Instr::Protect(r) => {
            w.u8(op::PROTECT);
            w.u32(r);
        }
        Instr::SetCapacity(k) => {
            w.u8(op::SET_CAPACITY);
            w.u32(k);
        }
        Instr::Ret(r) => {
            w.u8(op::RET);
            match r {
                Some(r) => {
                    w.u8(1);
                    w.u32(r);
                }
                None => w.u8(0),
            }
        }
    }
}

fn decode_instr(r: &mut Reader) -> Result<Instr, ArtifactError> {
    let at = r.offset();
    let opcode = r.u8()?;
    Ok(match opcode {
        op::ADD => Instr::Add(r.u32()?, r.u32()?, r.u32()?),
        op::SUB => Instr::Sub(r.u32()?, r.u32()?, r.u32()?),
        op::MUL => Instr::Mul(r.u32()?, r.u32()?, r.u32()?),
        op::DIV => Instr::Div(r.u32()?, r.u32()?, r.u32()?),
        op::SQRT => Instr::Sqrt(r.u32()?, r.u32()?),
        op::ABS => Instr::Abs(r.u32()?, r.u32()?),
        op::NEG => Instr::Neg(r.u32()?, r.u32()?),
        op::MIN => Instr::Min(r.u32()?, r.u32()?, r.u32()?),
        op::MAX => Instr::Max(r.u32()?, r.u32()?, r.u32()?),
        op::CONST_F => Instr::ConstF(r.u32()?, r.f64()?),
        op::MOV_F => Instr::MovF(r.u32()?, r.u32()?),
        op::CAST_IF => Instr::CastIF(r.u32()?, r.u32()?),
        op::LOAD_ARR => Instr::LoadArr(r.u32()?, r.u32()?, r.u32()?),
        op::STORE_ARR => Instr::StoreArr(r.u32()?, r.u32()?, r.u32()?),
        op::CONST_I => Instr::ConstI(r.u32()?, r.i64()?),
        op::ADD_I => Instr::AddI(r.u32()?, r.u32()?, r.u32()?),
        op::SUB_I => Instr::SubI(r.u32()?, r.u32()?, r.u32()?),
        op::MUL_I => Instr::MulI(r.u32()?, r.u32()?, r.u32()?),
        op::DIV_I => Instr::DivI(r.u32()?, r.u32()?, r.u32()?),
        op::MOV_I => Instr::MovI(r.u32()?, r.u32()?),
        op::CAST_FI => Instr::CastFI(r.u32()?, r.u32()?),
        op::CMP_I => {
            let tag = r.u8()?;
            Instr::CmpI(cmp_of(tag, at)?, r.u32()?, r.u32()?, r.u32()?)
        }
        op::CMP_F => {
            let tag = r.u8()?;
            Instr::CmpF(cmp_of(tag, at)?, r.u32()?, r.u32()?, r.u32()?)
        }
        op::JUMP => Instr::Jump(r.u64()? as usize),
        op::JUMP_IF_ZERO => Instr::JumpIfZero(r.u32()?, r.u64()? as usize),
        op::PROTECT => Instr::Protect(r.u32()?),
        op::SET_CAPACITY => Instr::SetCapacity(r.u32()?),
        op::RET => match r.u8()? {
            0 => Instr::Ret(None),
            1 => Instr::Ret(Some(r.u32()?)),
            other => {
                return Err(ArtifactError::Malformed(format!(
                    "bad Ret flag {other} at byte {at}"
                )))
            }
        },
        other => {
            return Err(ArtifactError::Malformed(format!(
                "unknown opcode {other} at byte {at}"
            )))
        }
    })
}

fn decode_program(body: &[u8]) -> Result<ProgramVariant, ArtifactError> {
    let mut r = Reader::new(body);
    let func = r.string()?;
    let kind_at = r.offset();
    let kind_tag = r.u8()?;
    let k = r.u32()?;
    let k_low = r.u32()?;
    let prio = r.u8()?;
    let kind = match (kind_tag, k, k_low, prio) {
        (VK_PLAIN, 0, 0, 0) => VariantKind::Plain,
        (VK_PRIORITIZED, k, 0, 0) => VariantKind::Prioritized { k },
        (VK_CAPACITY, k, k_low, p @ (0 | 1)) => VariantKind::Capacity {
            k,
            k_low,
            prioritized: p == 1,
        },
        _ => {
            return Err(ArtifactError::Malformed(format!(
                "bad variant descriptor at byte {kind_at} (tag {kind_tag}, unused fields must \
                 be zero)"
            )))
        }
    };
    let name = r.string()?;
    let n_fregs = r.u32()? as usize;
    let n_iregs = r.u32()? as usize;
    if n_fregs > MAX_REGS || n_iregs > MAX_REGS {
        return Err(ArtifactError::Malformed(format!(
            "register file too large ({n_fregs} float / {n_iregs} int, cap {MAX_REGS})"
        )));
    }
    let n_arrays = r.count(8, "array table")?;
    let mut arrays = Vec::with_capacity(n_arrays);
    for _ in 0..n_arrays {
        let name = r.string()?;
        let len = r.u64()? as usize;
        if len > MAX_ARRAY_ELEMS {
            return Err(ArtifactError::Malformed(format!(
                "array {name:?} too large ({len} elements, cap {MAX_ARRAY_ELEMS})"
            )));
        }
        let n_dims = r.u8()? as usize;
        let mut dims = Vec::with_capacity(n_dims);
        for _ in 0..n_dims {
            dims.push(r.u64()? as usize);
        }
        if dims.iter().product::<usize>() != len {
            return Err(ArtifactError::Malformed(format!(
                "array {name:?}: dims {dims:?} do not multiply to len {len}"
            )));
        }
        let is_param = decode_bool(&mut r, "array is_param")?;
        arrays.push(ArrayDecl {
            name,
            len,
            dims,
            is_param,
        });
    }
    let n_params = r.count(9, "parameter list")?;
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let pname = r.string()?;
        let at = r.offset();
        let tag = r.u8()?;
        let idx = r.u32()?;
        let binding = match tag {
            0 if (idx as usize) < n_fregs => ParamBinding::Float(idx),
            1 if (idx as usize) < n_iregs => ParamBinding::Int(idx),
            2 if (idx as usize) < arrays.len() => ParamBinding::Array(idx),
            0..=2 => {
                return Err(ArtifactError::Malformed(format!(
                    "parameter {pname:?}: binding index {idx} out of range at byte {at}"
                )))
            }
            other => {
                return Err(ArtifactError::Malformed(format!(
                    "parameter {pname:?}: unknown binding tag {other} at byte {at}"
                )))
            }
        };
        params.push((pname, binding));
    }
    let n_code = r.count(2, "instruction stream")?;
    let mut code = Vec::with_capacity(n_code);
    for _ in 0..n_code {
        code.push(decode_instr(&mut r)?);
    }
    let mut spans = Vec::with_capacity(n_code);
    for _ in 0..n_code {
        let start = r.u64()? as usize;
        let end = r.u64()? as usize;
        let line = r.u32()?;
        let col = r.u32()?;
        spans.push(Span {
            start,
            end,
            line,
            col,
        });
    }
    if !r.is_at_end() {
        return Err(ArtifactError::Malformed(format!(
            "{} trailing bytes after program {func:?}",
            r.remaining()
        )));
    }
    let program = Program {
        name,
        code,
        n_fregs,
        n_iregs,
        arrays,
        params,
        spans,
    };
    validate_program(&program)?;
    Ok(ProgramVariant {
        func,
        kind,
        program,
    })
}

fn decode_bool(r: &mut Reader, what: &str) -> Result<bool, ArtifactError> {
    let at = r.offset();
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(ArtifactError::Malformed(format!(
            "{what}: bad boolean {other} at byte {at}"
        ))),
    }
}

/// Checks every register index, array id, and jump target of a decoded
/// program against its declared layout — the guarantee that a validated
/// artifact can never index the VM out of bounds.
fn validate_program(p: &Program) -> Result<(), ArtifactError> {
    let bad = |i: usize, what: &str| {
        Err(ArtifactError::Malformed(format!(
            "instruction {i}: {what} out of range"
        )))
    };
    for (i, ins) in p.code.iter().enumerate() {
        let f = |r: u32| (r as usize) < p.n_fregs;
        let g = |r: u32| (r as usize) < p.n_iregs;
        let ok = match *ins {
            Instr::Add(d, a, b)
            | Instr::Sub(d, a, b)
            | Instr::Mul(d, a, b)
            | Instr::Div(d, a, b)
            | Instr::Min(d, a, b)
            | Instr::Max(d, a, b) => f(d) && f(a) && f(b),
            Instr::Sqrt(d, a) | Instr::Abs(d, a) | Instr::Neg(d, a) | Instr::MovF(d, a) => {
                f(d) && f(a)
            }
            Instr::ConstF(d, _) => f(d),
            Instr::CastIF(d, s) => f(d) && g(s),
            Instr::LoadArr(d, a, idx) => f(d) && (a as usize) < p.arrays.len() && g(idx),
            Instr::StoreArr(a, idx, s) => (a as usize) < p.arrays.len() && g(idx) && f(s),
            Instr::ConstI(d, _) => g(d),
            Instr::AddI(d, a, b)
            | Instr::SubI(d, a, b)
            | Instr::MulI(d, a, b)
            | Instr::DivI(d, a, b)
            | Instr::CmpI(_, d, a, b) => g(d) && g(a) && g(b),
            Instr::MovI(d, s) => g(d) && g(s),
            Instr::CastFI(d, s) => g(d) && f(s),
            Instr::CmpF(_, d, a, b) => g(d) && f(a) && f(b),
            Instr::Jump(t) => t <= p.code.len(),
            Instr::JumpIfZero(c, t) => g(c) && t <= p.code.len(),
            Instr::Protect(r) => f(r),
            Instr::SetCapacity(_) => true,
            Instr::Ret(r) => r.is_none_or(f),
        };
        if !ok {
            return bad(i, "operand");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq_program() -> Program {
        Program {
            name: "sq".into(),
            code: vec![Instr::Mul(1, 0, 0), Instr::Ret(Some(1))],
            n_fregs: 2,
            n_iregs: 0,
            arrays: vec![],
            params: vec![("x".into(), ParamBinding::Float(0))],
            spans: vec![Span::default(); 2],
        }
    }

    fn sq_artifact() -> Artifact {
        Artifact {
            meta: ArtifactMeta {
                name: "sq.c".into(),
                tool: "safegen-rs 0.1.0".into(),
                passes: vec!["cse".into(), "dce".into()],
                prioritize: true,
                source_sha256: Some(Sha256::hex(&Sha256::digest(b"double sq..."))),
                capabilities: Vec::new(),
            },
            programs: vec![ProgramVariant {
                func: "sq".into(),
                kind: VariantKind::Prioritized { k: 8 },
                program: sq_program(),
            }],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let a = sq_artifact();
        let back = Artifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.functions(), vec!["sq"]);
        assert!(back
            .find("sq", &VariantKind::Prioritized { k: 8 })
            .is_some());
        assert!(back.find("sq", &VariantKind::Plain).is_none());
    }

    #[test]
    fn fixpoint_capability_round_trips_and_sets_header_flag() {
        let mut a = sq_artifact();
        a.meta.capabilities.push(CAP_FIXPOINT.to_string());
        let bytes = a.to_bytes();
        assert_eq!(
            u16::from_le_bytes([bytes[6], bytes[7]]),
            FLAG_FIXPOINT,
            "capability must be mirrored into the header flags"
        );
        let back = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.meta.capabilities, vec![CAP_FIXPOINT.to_string()]);

        // Clearing the flag while keeping the META capability is the
        // mismatch direction an old writer could never produce.
        let mut forged = bytes.clone();
        forged[6] = 0;
        assert!(matches!(
            Artifact::from_bytes(&forged).unwrap_err(),
            ArtifactError::CapabilityMismatch(_)
        ));
    }

    #[test]
    fn id_is_header_hash() {
        let a = sq_artifact();
        let bytes = a.to_bytes();
        let header_hash: [u8; 32] = bytes[16..48].try_into().unwrap();
        assert_eq!(a.id(), Sha256::hex(&header_hash));
    }

    #[test]
    fn every_instruction_round_trips() {
        // One of each opcode, all operands within the declared layout.
        let code = vec![
            Instr::ConstF(0, 0.1),
            Instr::ConstF(1, -0.0),
            Instr::Add(2, 0, 1),
            Instr::Sub(2, 2, 0),
            Instr::Mul(2, 2, 2),
            Instr::Div(2, 2, 1),
            Instr::Sqrt(2, 2),
            Instr::Abs(2, 2),
            Instr::Neg(2, 2),
            Instr::Min(2, 0, 1),
            Instr::Max(2, 0, 1),
            Instr::MovF(0, 2),
            Instr::CastIF(0, 0),
            Instr::LoadArr(1, 0, 1),
            Instr::StoreArr(0, 1, 1),
            Instr::ConstI(0, -7),
            Instr::AddI(1, 0, 0),
            Instr::SubI(1, 1, 0),
            Instr::MulI(1, 1, 0),
            Instr::DivI(1, 1, 0),
            Instr::MovI(0, 1),
            Instr::CastFI(1, 0),
            Instr::CmpI(CmpOp::Le, 0, 0, 1),
            Instr::CmpF(CmpOp::Ne, 0, 1, 2),
            Instr::JumpIfZero(0, 27),
            Instr::Protect(1),
            Instr::SetCapacity(4),
            Instr::Jump(28),
            Instr::Ret(None),
        ];
        let n = code.len();
        let program = Program {
            name: "all".into(),
            code,
            n_fregs: 3,
            n_iregs: 2,
            arrays: vec![ArrayDecl {
                name: "a".into(),
                len: 6,
                dims: vec![2, 3],
                is_param: true,
            }],
            params: vec![
                ("a".into(), ParamBinding::Array(0)),
                ("n".into(), ParamBinding::Int(0)),
                ("x".into(), ParamBinding::Float(0)),
            ],
            spans: (0..n)
                .map(|i| Span {
                    start: i,
                    end: i + 1,
                    line: 1 + i as u32,
                    col: 2,
                })
                .collect(),
        };
        let a = Artifact {
            meta: ArtifactMeta::new("all.c"),
            programs: vec![ProgramVariant {
                func: "all".into(),
                kind: VariantKind::Capacity {
                    k: 16,
                    k_low: 2,
                    prioritized: true,
                },
                program,
            }],
        };
        let back = Artifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn header_errors_are_specific() {
        let good = sq_artifact().to_bytes();

        assert!(matches!(
            Artifact::from_bytes(&good[..20]).unwrap_err(),
            ArtifactError::Truncated { .. }
        ));

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Artifact::from_bytes(&bad).unwrap_err(),
            ArtifactError::BadMagic(_)
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            Artifact::from_bytes(&bad).unwrap_err(),
            ArtifactError::UnsupportedVersion(99)
        ));

        let mut bad = good.clone();
        bad[6] = 2;
        assert!(matches!(
            Artifact::from_bytes(&bad).unwrap_err(),
            ArtifactError::BadFlags(2)
        ));

        // A *known* flag passes the header check but must still agree
        // with the META capabilities list.
        let mut bad = good.clone();
        bad[6] = FLAG_FIXPOINT as u8;
        assert!(matches!(
            Artifact::from_bytes(&bad).unwrap_err(),
            ArtifactError::CapabilityMismatch(_)
        ));

        let mut bad = good.clone();
        bad.truncate(good.len() - 1);
        assert!(matches!(
            Artifact::from_bytes(&bad).unwrap_err(),
            ArtifactError::PayloadLength { .. }
        ));

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            Artifact::from_bytes(&bad).unwrap_err(),
            ArtifactError::HashMismatch { .. }
        ));
    }

    /// Re-signs a tampered payload so the corruption reaches the body
    /// decoder instead of being caught by the hash check.
    fn resign(mut bytes: Vec<u8>, tamper: impl FnOnce(&mut [u8])) -> Vec<u8> {
        tamper(&mut bytes[HEADER_LEN..]);
        let digest = Sha256::digest(&bytes[HEADER_LEN..]);
        bytes[16..48].copy_from_slice(&digest);
        bytes
    }

    #[test]
    fn body_corruption_is_rejected_after_resigning() {
        let good = sq_artifact().to_bytes();

        // Unknown section tag.
        let bad = resign(good.clone(), |p| p[0] = b'Z');
        assert!(matches!(
            Artifact::from_bytes(&bad).unwrap_err(),
            ArtifactError::Malformed(_)
        ));

        // Register index out of range: the Mul destination (first
        // instruction operand) bumped past n_fregs. Find it by scanning
        // for the opcode-prefixed operand we know is there.
        let a = sq_artifact();
        let mut evil = a.clone();
        evil.programs[0].program.code[0] = Instr::Mul(7, 0, 0);
        // Encoding never validates (the builder is trusted); decoding must.
        let err = Artifact::from_bytes(&evil.to_bytes()).unwrap_err();
        assert!(
            matches!(&err, ArtifactError::Malformed(m) if m.contains("out of range")),
            "{err}"
        );

        // Jump past the end of the code.
        let mut evil = a.clone();
        evil.programs[0].program.code[1] = Instr::Jump(99);
        assert!(Artifact::from_bytes(&evil.to_bytes()).is_err());

        // Spans shorter than code (truncate the last span record).
        let bad = resign(good, |p| {
            let n = p.len();
            // Move the PROG section length down by one span record (24
            // bytes) and drop those bytes: structurally a short section.
            let _ = n;
        });
        // (Structural truncation is covered by PayloadLength/Wire tests.)
        let _ = bad;
    }

    #[test]
    fn duplicate_variants_rejected() {
        let mut a = sq_artifact();
        a.programs.push(a.programs[0].clone());
        let payload_dup = std::panic::catch_unwind(|| a.to_bytes());
        assert!(payload_dup.is_err(), "encoder must refuse duplicates");
    }

    #[test]
    fn meta_must_be_first_and_wellformed() {
        // Hand-build a payload whose first section is PROG.
        let a = sq_artifact();
        let good = a.to_bytes();
        let payload = &good[HEADER_LEN..];
        // Parse section boundaries: META is first.
        let meta_len = u64::from_le_bytes(payload[4..12].try_into().unwrap()) as usize;
        let meta_end = 12 + meta_len;
        let mut swapped = Vec::new();
        swapped.extend_from_slice(&payload[meta_end..]); // PROG first
        swapped.extend_from_slice(&payload[..meta_end]); // META second
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&(swapped.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&Sha256::digest(&swapped));
        bytes.extend_from_slice(&swapped);
        let err = Artifact::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(&err, ArtifactError::Malformed(m) if m.contains("before META")),
            "{err}"
        );
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join(format!("sga-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sq.sga");
        let a = sq_artifact();
        a.write_file(&path).unwrap();
        assert_eq!(Artifact::read_file(&path).unwrap(), a);
        assert!(matches!(
            Artifact::read_file(&dir.join("missing.sga")).unwrap_err(),
            ArtifactError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
