//! The max-reuse problem (paper Sec. VI-A/B).
//!
//! Given the reuse opportunities of a DAG, select which to realize so that
//! the total reuse profit `ρ_tot(π) = Σ_{(s,t)∈Q_π} ρ(s)` is maximized
//! while every node protects at most `k − 1` symbols.
//!
//! The exact encoding introduces a selection variable `x_{s,t}` per reuse
//! and an indicator `y_{s,v}` per (symbol, node) pair appearing in a
//! connection, with `x_{s,t} ≤ y_{s,v}` for every node `v` of the
//! connection and `Σ_s y_{s,v} ≤ k − 1` per node — a direct linearization
//! of the paper's Boolean formulation, solved by `safegen-ilp` (the
//! paper uses Gurobi). Large instances fall back to a profit-greedy pass.

use crate::reuse::Reuse;
use safegen_ir::NodeId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How to solve the max-reuse instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// Exact ILP when the instance is small enough, greedy otherwise.
    #[default]
    Auto,
    /// Always the exact ILP (may be slow on big DAGs).
    Ilp,
    /// Always the greedy heuristic.
    Greedy,
}

/// The result of the analysis: the priority assignment `π`.
#[derive(Clone, Debug, Default)]
pub struct PriorityAssignment {
    /// `π(s)`: for each symbol-source node, the nodes that protect it.
    pub pi: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// The realized reuses `Q_π`.
    pub realized: Vec<Reuse>,
    /// Total reuse profit `ρ_tot(π)`.
    pub total_profit: usize,
    /// True if produced by the exact ILP (provably optimal).
    pub exact: bool,
}

impl PriorityAssignment {
    /// The symbols node `v` protects (`P_v` in the paper's capacity rule).
    pub fn protected_at(&self, v: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .pi
            .iter()
            .filter(|(_, nodes)| nodes.contains(&v))
            .map(|(&s, _)| s)
            .collect();
        out.sort_unstable();
        out
    }

    /// Checks the capacity constraint `|P_v| ≤ k − 1` for all nodes.
    pub fn respects_capacity(&self, k: usize) -> bool {
        let mut load: HashMap<NodeId, usize> = HashMap::new();
        for nodes in self.pi.values() {
            for &v in nodes {
                *load.entry(v).or_insert(0) += 1;
            }
        }
        load.values().all(|&c| c <= k.saturating_sub(1))
    }
}

/// Above this variable count, [`SolveMode::Auto`] switches to greedy.
const AUTO_ILP_LIMIT: usize = 600;

/// Solves the max-reuse problem for the given reuses and budget `k`.
///
/// Returns an empty assignment when `k < 2` (no protection capacity) or
/// when there are no reuses.
pub fn solve_max_reuse(reuses: &[Reuse], k: usize, mode: SolveMode) -> PriorityAssignment {
    solve_max_reuse_caps(reuses, &|_| k.saturating_sub(1), k >= 2, mode)
}

/// Solves the max-reuse problem with **per-node protection capacities** —
/// the second ILP extension of the paper (Sec. VI-B: "assigning to each
/// node a different capacity of symbols that can be prioritized instead of
/// our globally fixed k − 1").
///
/// `cap(v)` is the number of symbols node `v` may protect. Reuses whose
/// `(source, target)` pair appears with several alternative connections
/// are realized **at most once** (the at-most-one constraint of the
/// multi-connection extension).
pub fn solve_max_reuse_caps(
    reuses: &[Reuse],
    cap: &dyn Fn(NodeId) -> usize,
    any_capacity: bool,
    mode: SolveMode,
) -> PriorityAssignment {
    if !any_capacity || reuses.is_empty() {
        return PriorityAssignment::default();
    }
    let n_y: usize = {
        let mut pairs = BTreeSet::new();
        for r in reuses {
            for &v in &r.connection {
                pairs.insert((r.source, v));
            }
        }
        pairs.len()
    };
    let use_ilp = match mode {
        SolveMode::Ilp => true,
        SolveMode::Greedy => false,
        SolveMode::Auto => reuses.len() + n_y <= AUTO_ILP_LIMIT,
    };
    if use_ilp {
        solve_ilp(reuses, cap)
    } else {
        solve_greedy(reuses, cap)
    }
}

fn solve_ilp(reuses: &[Reuse], cap: &dyn Fn(NodeId) -> usize) -> PriorityAssignment {
    // Variable layout: x_r for r in 0..reuses.len(), then y_(s,v).
    let mut y_index: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
    for r in reuses {
        for &v in &r.connection {
            let next = reuses.len() + y_index.len();
            y_index.entry((r.source, v)).or_insert(next);
        }
    }
    let n = reuses.len() + y_index.len();
    let mut p = safegen_ilp::Problem::new(n);
    let mut obj = vec![0.0; n];
    for (i, r) in reuses.iter().enumerate() {
        obj[i] = r.profit as f64;
    }
    p.set_objective(&obj);
    // Linking: x_r ≤ y_(s,v) for every v in the connection.
    for (i, r) in reuses.iter().enumerate() {
        for &v in &r.connection {
            let y = y_index[&(r.source, v)];
            p.add_constraint(&[(i, 1.0), (y, -1.0)], 0.0);
        }
    }
    // Capacity: Σ_s y_(s,v) ≤ cap(v) per node v.
    let mut per_node: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (&(_, v), &idx) in &y_index {
        per_node.entry(v).or_default().push(idx);
    }
    for (v, ys) in per_node {
        let terms: Vec<(usize, f64)> = ys.into_iter().map(|y| (y, 1.0)).collect();
        p.add_constraint(&terms, cap(v) as f64);
    }
    // At most one realized connection per (source, target) pair
    // (multi-connection extension).
    let mut per_pair: BTreeMap<(NodeId, NodeId), Vec<usize>> = BTreeMap::new();
    for (i, r) in reuses.iter().enumerate() {
        per_pair.entry((r.source, r.target)).or_default().push(i);
    }
    for (_, xs) in per_pair {
        if xs.len() > 1 {
            let terms: Vec<(usize, f64)> = xs.into_iter().map(|x| (x, 1.0)).collect();
            p.add_constraint(&terms, 1.0);
        }
    }

    let sol = safegen_ilp::solve(&p, 2_000_000);
    let mut pa = PriorityAssignment {
        exact: sol.optimal,
        ..Default::default()
    };
    for (i, r) in reuses.iter().enumerate() {
        if sol.values[i] {
            pa.total_profit += r.profit;
            pa.realized.push(r.clone());
        }
    }
    for (&(s, v), &idx) in &y_index {
        if sol.values[idx] {
            pa.pi.entry(s).or_default().insert(v);
        }
    }
    // Drop y-selections not backing any realized reuse (the solver may set
    // free variables arbitrarily; trim to the union of realized
    // connections so capacity is not wasted downstream).
    let mut needed: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for r in &pa.realized {
        let e = needed.entry(r.source).or_default();
        e.extend(r.connection.iter().copied());
    }
    pa.pi = needed;
    pa
}

fn solve_greedy(reuses: &[Reuse], cap: &dyn Fn(NodeId) -> usize) -> PriorityAssignment {
    let mut order: Vec<usize> = (0..reuses.len()).collect();
    // Highest profit first; tie-break on smaller connections (cheaper).
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse(reuses[i].profit),
            reuses[i].connection.len(),
        )
    });
    let mut pa = PriorityAssignment::default();
    // load[v] = set of symbols currently protected at v.
    let mut load: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
    let mut realized_pairs: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    'next: for &i in &order {
        let r = &reuses[i];
        // At most one connection per (source, target) pair.
        if realized_pairs.contains(&(r.source, r.target)) {
            continue;
        }
        // Feasible if every connection node can take s (already protects
        // it, or has spare capacity).
        for &v in &r.connection {
            let set = load.entry(v).or_default();
            if !set.contains(&r.source) && set.len() >= cap(v) {
                continue 'next;
            }
        }
        for &v in &r.connection {
            load.get_mut(&v).unwrap().insert(r.source);
            pa.pi.entry(r.source).or_default().insert(v);
        }
        realized_pairs.insert((r.source, r.target));
        pa.total_profit += r.profit;
        pa.realized.push(r.clone());
    }
    pa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::find_reuses;
    use safegen_cfront::{analyze, parse};
    use safegen_ir::{build_dag, to_tac, Dag, NodeKind};

    fn dag_of(src: &str) -> Dag {
        let unit = parse(src).unwrap();
        let sema = analyze(&unit).unwrap();
        let tac = to_tac(&unit, &sema);
        let sema2 = analyze(&tac).unwrap();
        build_dag(&tac.functions[0], &sema2)
    }

    #[test]
    fn fig4_solution_protects_z_in_both_muls() {
        let dag = dag_of("double f(double x, double y, double z) { return x*z - y*z; }");
        let reuses = find_reuses(&dag);
        let pa = solve_max_reuse(&reuses, 2, SolveMode::Ilp);
        assert!(pa.exact);
        let z = dag
            .nodes()
            .iter()
            .position(|n| matches!(&n.kind, NodeKind::Input(s) if s == "z"))
            .unwrap();
        let muls: BTreeSet<NodeId> = dag
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::Mul)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(pa.pi.get(&z), Some(&muls));
        assert_eq!(pa.total_profit, 1);
        assert!(pa.respects_capacity(2));
    }

    #[test]
    fn capacity_one_symbol_per_node_forces_choice() {
        // Two independent reuses competing for the same middle nodes:
        //   s1 = a+b reused at r1; s2 = a·b reused at r1 as well.
        let dag = dag_of(
            "double f(double a, double b) {
                 double s = a + b;
                 double p = s * 2.0;
                 double q = s * 3.0;
                 return p - q;
             }",
        );
        let reuses = find_reuses(&dag);
        // With k=2 (capacity 1), the ILP must pick the most profitable
        // subset; with large k it can take everything.
        let small = solve_max_reuse(&reuses, 2, SolveMode::Ilp);
        let large = solve_max_reuse(&reuses, 16, SolveMode::Ilp);
        assert!(small.total_profit <= large.total_profit);
        assert!(small.respects_capacity(2));
        assert!(large.respects_capacity(16));
        assert!(large.total_profit > 0);
    }

    #[test]
    fn greedy_never_beats_ilp() {
        let srcs = [
            "double f(double x, double y, double z) { return x*z - y*z; }",
            "double f(double a, double b) {
                double s = a + b; double t = s * a; return t*s - s*b; }",
            "double f(double x, double a, double b, double c, double d) {
                return x*a*b - x*c*d; }",
            "double f(double a, double b, double c) {
                double u = a*b; double v = b*c; double w = u - v;
                return w*u - w*v; }",
        ];
        for src in srcs {
            let dag = dag_of(src);
            let reuses = find_reuses(&dag);
            for k in [2, 3, 4, 8] {
                let ilp = solve_max_reuse(&reuses, k, SolveMode::Ilp);
                let greedy = solve_max_reuse(&reuses, k, SolveMode::Greedy);
                assert!(ilp.exact, "{src} k={k}");
                assert!(
                    ilp.total_profit >= greedy.total_profit,
                    "{src} k={k}: ilp {} < greedy {}",
                    ilp.total_profit,
                    greedy.total_profit
                );
                assert!(greedy.respects_capacity(k));
                assert!(ilp.respects_capacity(k));
            }
        }
    }

    #[test]
    fn k1_has_no_capacity() {
        let dag = dag_of("double f(double x, double y, double z) { return x*z - y*z; }");
        let reuses = find_reuses(&dag);
        let pa = solve_max_reuse(&reuses, 1, SolveMode::Auto);
        assert_eq!(pa.total_profit, 0);
        assert!(pa.pi.is_empty());
    }

    #[test]
    fn realized_connections_are_fully_protected() {
        let dag = dag_of(
            "double f(double a, double b, double c) {
                double u = a*b; double v = b*c; return u*v - v*u; }",
        );
        let reuses = find_reuses(&dag);
        let pa = solve_max_reuse(&reuses, 4, SolveMode::Auto);
        for r in &pa.realized {
            let protected = &pa.pi[&r.source];
            for v in &r.connection {
                assert!(
                    protected.contains(v),
                    "connection node {v} unprotected in {r:?}"
                );
            }
        }
    }

    #[test]
    fn larger_k_is_monotone_in_profit() {
        let dag = dag_of(
            "double f(double a, double b, double c, double d) {
                double u = a*b; double v = c*d; double w = u + v;
                double p = w * a; double q = w * b; return p - q; }",
        );
        let reuses = find_reuses(&dag);
        let mut last = 0;
        for k in [2, 3, 4, 6, 10] {
            let pa = solve_max_reuse(&reuses, k, SolveMode::Ilp);
            assert!(pa.total_profit >= last, "profit must grow with k");
            last = pa.total_profit;
        }
        assert!(last > 0);
    }

    #[test]
    fn empty_reuses_empty_assignment() {
        let pa = solve_max_reuse(&[], 8, SolveMode::Auto);
        assert_eq!(pa.total_profit, 0);
        assert!(!pa.exact);
    }

    /// A DAG where the reused value reaches one parent through two routes:
    /// the multi-connection enumeration must offer alternatives.
    fn diamond_src() -> &'static str {
        "double f(double x, double c) {
            double u1 = x * 2.0;
            double u2 = x * 3.0;
            double m = u1 + u2;
            double w = x * c;
            return m - w;
        }"
    }

    #[test]
    fn multi_connection_enumeration_offers_alternatives() {
        let dag = dag_of(diamond_src());
        let single = crate::reuse::find_reuses_multi(&dag, 1);
        let multi = crate::reuse::find_reuses_multi(&dag, 3);
        assert!(
            multi.len() > single.len(),
            "{} !> {}",
            multi.len(),
            single.len()
        );
        // All alternatives for one pair must be distinct connections.
        use std::collections::BTreeSet;
        let mut seen: BTreeSet<(NodeId, NodeId, Vec<NodeId>)> = BTreeSet::new();
        for r in &multi {
            assert!(
                seen.insert((r.source, r.target, r.connection.clone())),
                "duplicate connection {r:?}"
            );
        }
    }

    #[test]
    fn at_most_one_connection_realized_per_pair() {
        let dag = dag_of(diamond_src());
        let multi = crate::reuse::find_reuses_multi(&dag, 3);
        let pa = solve_max_reuse(&multi, 8, SolveMode::Ilp);
        use std::collections::BTreeSet;
        let mut pairs = BTreeSet::new();
        for r in &pa.realized {
            assert!(
                pairs.insert((r.source, r.target)),
                "pair realized twice: {r:?}"
            );
        }
    }

    #[test]
    fn multi_connection_never_hurts_profit() {
        let dag = dag_of(diamond_src());
        for k in [2usize, 3, 4] {
            let p1 = solve_max_reuse(&crate::reuse::find_reuses_multi(&dag, 1), k, SolveMode::Ilp);
            let p3 = solve_max_reuse(&crate::reuse::find_reuses_multi(&dag, 3), k, SolveMode::Ilp);
            assert!(
                p3.total_profit >= p1.total_profit,
                "k={k}: multi {} < single {}",
                p3.total_profit,
                p1.total_profit
            );
        }
    }

    #[test]
    fn per_node_zero_capacity_blocks_protection() {
        let dag = dag_of("double f(double x, double y, double z) { return x*z - y*z; }");
        let reuses = find_reuses(&dag);
        // Uniform capacity 1 realizes the z-reuse…
        let open = solve_max_reuse_caps(&reuses, &|_| 1, true, SolveMode::Ilp);
        assert!(open.total_profit > 0);
        // …but capacity 0 on the first mul (a connection node) blocks it.
        let muls: Vec<NodeId> = dag
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::Mul)
            .map(|(i, _)| i)
            .collect();
        let blocked = solve_max_reuse_caps(
            &reuses,
            &|v| usize::from(v != muls[0]),
            true,
            SolveMode::Ilp,
        );
        assert_eq!(blocked.total_profit, 0);
    }

    #[test]
    fn heterogeneous_capacities_respected() {
        let dag = dag_of(
            "double f(double a, double b) {
                double s = a + b;
                double p = s * 2.0;
                double q = s * 3.0;
                return p - q;
            }",
        );
        let reuses = find_reuses(&dag);
        let pa = solve_max_reuse_caps(
            &reuses,
            &|v| if v % 2 == 0 { 2 } else { 1 },
            true,
            SolveMode::Ilp,
        );
        // Recheck loads against the heterogeneous caps.
        for v in 0..dag.len() {
            assert!(pa.protected_at(v).len() <= if v % 2 == 0 { 2 } else { 1 });
        }
    }
}
