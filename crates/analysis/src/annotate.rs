//! Code annotation (paper Sec. VI-C, "Annotating and transforming the
//! code").
//!
//! Turns the node-level [`PriorityAssignment`] into `#pragma safegen
//! prioritize(var)` lines in the TAC source. For each operation node that
//! protects symbols, the paper's heuristic selects **one variable**: among
//! the protected symbols, the one with the highest reuse profit; the
//! pragma names the variable of the node that *creates* that symbol, and
//! the runtime protects all symbols currently held by that variable.

use crate::maxreuse::{solve_max_reuse, PriorityAssignment, SolveMode};
use crate::reuse::find_reuses;
use safegen_cfront::{Function, ParseError, Sema, Span, Stmt, Unit};
use safegen_ir::{build_dag, Dag, NodeId};
use std::collections::BTreeMap;

/// Runs the full analysis on a TAC-form unit and returns it annotated.
///
/// `k` is the symbol budget the generated code will run with; the
/// capacity for protected symbols per operation is `k − 1`.
///
/// # Errors
///
/// Returns diagnostics if the unit fails semantic analysis.
pub fn annotate_unit(tac: &Unit, k: usize) -> Result<Unit, ParseError> {
    let sema = safegen_cfront::analyze(tac)?;
    let functions = tac
        .functions
        .iter()
        .map(|f| annotate_function(f, &sema, k, SolveMode::Auto))
        .collect();
    Ok(Unit { functions })
}

/// Analyzes and annotates a single TAC-form function.
pub fn annotate_function(f: &Function, sema: &Sema, k: usize, mode: SolveMode) -> Function {
    let dag = build_dag(f, sema);
    let reuses = find_reuses(&dag);
    let pa = solve_max_reuse(&reuses, k, mode);
    let pragmas = pragma_plan(&dag, &pa);
    insert_pragmas(f, &pragmas)
}

/// Computes, per operation span, the variable to prioritize there.
fn pragma_plan(dag: &Dag, pa: &PriorityAssignment) -> BTreeMap<(usize, usize), String> {
    // Profit of each source node (for the "highest reuse profit" pick).
    let profits = dag.ancestor_counts();
    let mut plan: BTreeMap<(usize, usize), String> = BTreeMap::new();
    for v in 0..dag.len() {
        let protected = pa.protected_at(v);
        if protected.is_empty() {
            continue;
        }
        // Pick the protected symbol with the highest profit whose creating
        // node has a nameable variable.
        let best: Option<&NodeId> = protected
            .iter()
            .filter(|&&s| dag.nodes()[s].var.is_some())
            .max_by_key(|&&s| profits[s]);
        let Some(&s) = best else { continue };
        let var = dag.nodes()[s].var.clone().unwrap();
        let span = dag.nodes()[v].span;
        plan.insert((span.start, span.end), var);
    }
    plan
}

/// Inserts pragma statements before the statements whose spans contain an
/// annotated operation.
fn insert_pragmas(f: &Function, plan: &BTreeMap<(usize, usize), String>) -> Function {
    fn rewrite(body: &[Stmt], plan: &BTreeMap<(usize, usize), String>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(body.len());
        for s in body {
            match s {
                Stmt::Decl { .. } | Stmt::Assign { .. } | Stmt::Return { .. } => {
                    let span = s.span();
                    if let Some(var) = lookup(plan, span) {
                        out.push(Stmt::Pragma {
                            payload: format!("prioritize({var})"),
                            span,
                        });
                    }
                    out.push(s.clone());
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_body: rewrite(then_body, plan),
                    else_body: rewrite(else_body, plan),
                    span: *span,
                }),
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                } => out.push(Stmt::For {
                    init: init.clone(),
                    cond: cond.clone(),
                    step: step.clone(),
                    body: rewrite(body, plan),
                    span: *span,
                }),
                Stmt::While { cond, body, span } => out.push(Stmt::While {
                    cond: cond.clone(),
                    body: rewrite(body, plan),
                    span: *span,
                }),
                Stmt::Block { body, span } => out.push(Stmt::Block {
                    body: rewrite(body, plan),
                    span: *span,
                }),
                other => out.push(other.clone()),
            }
        }
        out
    }

    fn lookup(plan: &BTreeMap<(usize, usize), String>, stmt_span: Span) -> Option<String> {
        // An operation span annotates its enclosing statement: containment
        // check on byte offsets. The plan is an ordered map so that when a
        // statement encloses several annotated operations the earliest span
        // wins deterministically (a hash map here made the chosen pragma —
        // and therefore the compiled variant — vary run to run).
        plan.iter()
            .find(|((start, end), _)| *start >= stmt_span.start && *end <= stmt_span.end)
            .map(|(_, v)| v.clone())
    }

    Function {
        ret: f.ret.clone(),
        name: f.name.clone(),
        params: f.params.clone(),
        body: rewrite(&f.body, plan),
        span: f.span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safegen_cfront::{analyze, parse, print_unit};
    use safegen_ir::to_tac;

    fn annotate_src(src: &str, k: usize) -> String {
        let unit = parse(src).unwrap();
        let sema = analyze(&unit).unwrap();
        let tac = to_tac(&unit, &sema);
        let annotated = annotate_unit(&tac, k).unwrap();
        print_unit(&annotated)
    }

    #[test]
    fn fig4_annotation_names_z() {
        let out = annotate_src(
            "double f(double x, double y, double z) { return x*z - y*z; }",
            4,
        );
        assert!(out.contains("#pragma safegen prioritize(z)"), "{out}");
    }

    #[test]
    fn annotated_output_reparses_and_analyzes() {
        let out = annotate_src(
            "double f(double a, double b) {
                 double s = a + b;
                 double p = s * a;
                 double q = s * b;
                 return p - q;
             }",
            4,
        );
        let reparsed = parse(&out).unwrap();
        analyze(&reparsed).unwrap();
        assert!(out.contains("prioritize("), "{out}");
    }

    #[test]
    fn no_reuse_no_pragmas() {
        let out = annotate_src("double f(double a, double b) { return a + b; }", 4);
        assert!(!out.contains("#pragma"), "{out}");
    }

    #[test]
    fn k1_produces_no_pragmas() {
        let out = annotate_src(
            "double f(double x, double y, double z) { return x*z - y*z; }",
            1,
        );
        assert!(!out.contains("#pragma"), "{out}");
    }

    #[test]
    fn annotation_is_deterministic_across_calls() {
        // Regression: the pragma plan used to be a hash map, so a statement
        // enclosing several annotated operation spans picked an arbitrary
        // pragma per call — the compiled variant (and its affine result)
        // varied run to run, surfacing as serial/batch fuzz mismatches.
        let src = "double f(double v0, double v1, int n) {
                double v2 = v1;
                int t = 0;
                while (t < n) {
                    v2 = v2 / (v1 * v1 + 0.5) + 1.0;
                    t = t + 1;
                }
                double v3 = v1 * v1;
                double v5 = v0;
                int t5 = 0;
                while (t5 < n) {
                    v5 = v5 * 1.5 + v2;
                    t5 = t5 + 1;
                }
                return v5 / (v3 * v3 + 0.5);
            }";
        let first = annotate_src(src, 16);
        for _ in 0..10 {
            assert_eq!(first, annotate_src(src, 16));
        }
    }

    #[test]
    fn pragma_lands_inside_loop_body() {
        let out = annotate_src(
            "void f(double x, double y, double z) {
                 for (int i = 0; i < 4; i++) {
                     x = x * z;
                     y = y * z;
                     x = x - y;
                 }
             }",
            4,
        );
        // The pragma must be attached to the statements inside the loop.
        let loop_pos = out.find("for (").unwrap();
        if let Some(p) = out.find("#pragma") {
            assert!(p > loop_pos, "{out}");
        }
    }

    #[test]
    fn henon_step_gets_annotated() {
        // One Henon step written out: x reused at the final add chain.
        let out = annotate_src(
            "void henon(double x, double y) {
                 double xx = x * x;
                 double t = 1.05 * xx;
                 double xn = 1.0 - t + y;
                 y = 0.3 * x;
                 x = xn;
             }",
            8,
        );
        // x is reused (x*x is self-use — no; but x feeds both xx-chain and
        // y) — reuse happens only if paths reconverge; they do not here,
        // so no pragma is *required*; the call must simply succeed.
        let reparsed = parse(&out).unwrap();
        analyze(&reparsed).unwrap();
    }
}
