//! Variable-capacity assignment — the extension the paper names as future
//! work (Sec. VIII): "Assigning a different limit on the number of symbols
//! for each variable may thus improve the overall performance while
//! preserving accuracy."
//!
//! The heuristic implemented here: operations that lie on **no reuse
//! connection** can never contribute a cancellation, so their results may
//! be kept at a reduced budget `k_low` (approaching interval-arithmetic
//! cost); operations on a reuse connection — and everything downstream of
//! one — keep the full budget. The decision is emitted as
//! `#pragma safegen capacity(N)` annotations consumed by the backend.

use crate::reuse::find_reuses;
use safegen_cfront::{Function, Sema, Span, Stmt};
use safegen_ir::{build_dag, NodeId};
use std::collections::{BTreeMap, HashSet};

/// Computes, per operation span, the capacity that suffices there.
///
/// Returns annotations only for operations that can run at `k_low`
/// (everything else implicitly keeps the configured `k`).
pub fn capacity_plan(f: &Function, sema: &Sema, k_low: usize) -> BTreeMap<(usize, usize), usize> {
    let dag = build_dag(f, sema);
    let reuses = find_reuses(&dag);

    // Nodes that participate in any reuse connection (as source, member,
    // or target) need the full budget…
    let mut hot: HashSet<NodeId> = HashSet::new();
    for r in &reuses {
        hot.insert(r.source);
        hot.insert(r.target);
        hot.extend(r.connection.iter().copied());
    }
    // …and so does everything reachable from a hot node (the protected
    // symbols must survive in downstream values until they cancel).
    let children = dag.children();
    let mut stack: Vec<NodeId> = hot.iter().copied().collect();
    while let Some(v) = stack.pop() {
        for &c in &children[v] {
            if hot.insert(c) {
                stack.push(c);
            }
        }
    }

    let mut plan = BTreeMap::new();
    for (id, node) in dag.nodes().iter().enumerate() {
        // Inputs create no operation; constants materialize a fresh form
        // without fusing anything — neither needs a capacity annotation.
        if node.kind.is_input() || matches!(node.kind, safegen_ir::NodeKind::Const(_)) {
            continue;
        }
        if !hot.contains(&id) {
            plan.insert((node.span.start, node.span.end), k_low);
        }
    }
    plan
}

/// Inserts `#pragma safegen capacity(N)` before the statements covered by
/// the plan (mirrors the prioritize-pragma insertion).
pub fn annotate_capacities(f: &Function, plan: &BTreeMap<(usize, usize), usize>) -> Function {
    // Each plan entry annotates exactly one statement (TAC statements can
    // share source regions through their spans): consume entries as they
    // match.
    let mut plan = plan.clone();

    fn rewrite(body: &[Stmt], plan: &mut BTreeMap<(usize, usize), usize>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(body.len());
        for s in body {
            match s {
                Stmt::Decl { .. } | Stmt::Assign { .. } | Stmt::Return { .. } => {
                    if let Some(k) = lookup(plan, s.span()) {
                        out.push(Stmt::Pragma {
                            payload: format!("capacity({k})"),
                            span: s.span(),
                        });
                    }
                    out.push(s.clone());
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_body: rewrite(then_body, plan),
                    else_body: rewrite(else_body, plan),
                    span: *span,
                }),
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                } => out.push(Stmt::For {
                    init: init.clone(),
                    cond: cond.clone(),
                    step: step.clone(),
                    body: rewrite(body, plan),
                    span: *span,
                }),
                Stmt::While { cond, body, span } => out.push(Stmt::While {
                    cond: cond.clone(),
                    body: rewrite(body, plan),
                    span: *span,
                }),
                Stmt::Block { body, span } => out.push(Stmt::Block {
                    body: rewrite(body, plan),
                    span: *span,
                }),
                other => out.push(other.clone()),
            }
        }
        out
    }

    fn lookup(plan: &mut BTreeMap<(usize, usize), usize>, stmt: Span) -> Option<usize> {
        // Ordered map: when several entries fall inside one statement the
        // earliest span is consumed, deterministically (see the matching
        // note in annotate.rs).
        let key = plan
            .iter()
            .find(|((start, end), _)| *start >= stmt.start && *end <= stmt.end)
            .map(|(&key, _)| key)?;
        plan.remove(&key)
    }

    Function {
        ret: f.ret.clone(),
        name: f.name.clone(),
        params: f.params.clone(),
        body: rewrite(&f.body, &mut plan),
        span: f.span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safegen_cfront::{analyze, parse, print_unit, Unit};
    use safegen_ir::to_tac;

    fn plan_and_annotate(src: &str, k_low: usize) -> (Unit, usize) {
        let unit = parse(src).unwrap();
        let sema = analyze(&unit).unwrap();
        let tac = to_tac(&unit, &sema);
        let sema = analyze(&tac).unwrap();
        let f = &tac.functions[0];
        let plan = capacity_plan(f, &sema, k_low);
        let n = plan.len();
        let annotated = Unit {
            functions: vec![annotate_capacities(f, &plan)],
        };
        // Annotated output must remain a valid program.
        let printed = print_unit(&annotated);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        analyze(&reparsed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        (annotated, n)
    }

    #[test]
    fn straight_line_without_reuse_is_all_low_capacity() {
        // No value is used twice: every op can run at the low budget.
        let (u, n) = plan_and_annotate(
            "double f(double a, double b, double c) { return a + b * c; }",
            2,
        );
        assert!(n >= 2, "both ops should be low-capacity, got {n}");
        assert!(print_unit(&u).contains("capacity(2)"));
    }

    #[test]
    fn reuse_connection_keeps_full_budget() {
        // x·z − y·z: the two muls and the sub are on a reuse connection.
        let (u, n) = plan_and_annotate(
            "double f(double x, double y, double z) { return x*z - y*z; }",
            2,
        );
        assert_eq!(n, 0, "all ops are reuse-hot: {}", print_unit(&u));
    }

    #[test]
    fn downstream_of_reuse_stays_hot() {
        // The final `* 2.0` consumes the cancellation result: it must keep
        // the full budget so the protected symbols survive into it.
        let (u, _) = plan_and_annotate(
            "double f(double x, double y, double z) {
                double d = x*z - y*z;
                return d * 2.0;
            }",
            2,
        );
        let printed = print_unit(&u);
        assert!(
            !printed.contains("capacity"),
            "downstream op must not be throttled:\n{printed}"
        );
    }

    #[test]
    fn mixed_program_splits() {
        // One reuse-heavy region plus an unrelated tail computation.
        let (u, n) = plan_and_annotate(
            "double f(double x, double z, double a, double b) {
                double d = x*z - x*z;
                double t = a + b;
                t = t * 3.0;
                return d + t;
            }",
            4,
        );
        let printed = print_unit(&u);
        assert!(n >= 1, "the a+b chain should be low-capacity:\n{printed}");
    }
}
