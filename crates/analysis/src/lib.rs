//! # safegen-analysis
//!
//! The novel static analysis of the paper (Sec. VI): decide, for each
//! operation of a program, which error symbols to **protect from fusion**
//! so that later cancellations — the whole point of affine arithmetic —
//! actually happen despite the bounded symbol budget.
//!
//! The pipeline:
//!
//! 1. [`reuse`] — find every *reuse*: a node `s` whose symbol can reach a
//!    node `t` along two distinct operand paths (Definition 1), together
//!    with the *reuse connection*, the set of nodes that must carry `s`'s
//!    symbol for the cancellation at `t` to be possible.
//! 2. [`maxreuse`] — select which reuses to realize under the per-node
//!    capacity of `k − 1` protected symbols, maximizing total *reuse
//!    profit* `ρ(s)` (Definitions 3–4). Solved exactly as a 0–1 ILP
//!    (`safegen-ilp`) or greedily for large instances.
//! 3. [`annotate`] — turn the node-level priority assignment into
//!    `#pragma safegen prioritize(var)` annotations on the TAC source
//!    (Sec. VI-C): per node, the variable holding the most profitable
//!    protected symbol.
//!
//! ```
//! use safegen_cfront::{analyze, parse};
//!
//! let unit = parse("double f(double x, double y, double z) { return x*z - y*z; }").unwrap();
//! let sema = analyze(&unit).unwrap();
//! let tac = safegen_ir::to_tac(&unit, &sema);
//! let annotated = safegen_analysis::annotate_unit(&tac, 4).unwrap();
//! let printed = safegen_cfront::print_unit(&annotated);
//! assert!(printed.contains("#pragma safegen prioritize(z)"), "{printed}");
//! ```

pub mod annotate;
pub mod capacity;
pub mod maxreuse;
pub mod reuse;

pub use annotate::{annotate_function, annotate_unit};
pub use capacity::{annotate_capacities, capacity_plan};
pub use maxreuse::{solve_max_reuse, PriorityAssignment, SolveMode};
pub use reuse::{find_reuses, Reuse};
