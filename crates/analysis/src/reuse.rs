//! Reuse detection (paper Definitions 1 and 3).
//!
//! A node `s` is *reused* at node `t` when two paths lead from `s` to two
//! distinct parents of `t`: the symbol `ε_s` then arrives at `t` through
//! both operands and can cancel. The *reuse connection* is the set of
//! nodes along those two paths (excluding `s` itself) — every one of them
//! must keep `ε_s` alive (protect it from fusion) for the cancellation to
//! happen.
//!
//! For a pair `(s, t)` there may be many path pairs; like the paper's ILP
//! formulation, one canonical connection per pair is kept (shortest paths,
//! which impose the fewest protection obligations).

use safegen_ir::{Dag, NodeId};
use std::collections::VecDeque;

/// One reuse opportunity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reuse {
    /// The node whose symbol can cancel.
    pub source: NodeId,
    /// The node where the two paths meet.
    pub target: NodeId,
    /// Nodes that must protect `ε_source` (the reuse connection,
    /// excluding `source`, including the two parents of `target`).
    pub connection: Vec<NodeId>,
    /// Reuse profit `ρ(source)`: ancestors of `source` including itself.
    pub profit: usize,
}

/// Ancestor bitsets (self included) in topological (construction) order.
fn ancestor_sets(dag: &Dag) -> Vec<Vec<u64>> {
    let n = dag.len();
    let words = n.div_ceil(64);
    let mut sets: Vec<Vec<u64>> = Vec::with_capacity(n);
    for id in 0..n {
        let mut set = vec![0u64; words];
        set[id / 64] |= 1 << (id % 64);
        for &a in dag.parents(id) {
            let (before, _) = sets.split_at(id);
            for (w, &aw) in set.iter_mut().zip(before[a].iter()) {
                *w |= aw;
            }
        }
        sets.push(set);
    }
    sets
}

#[inline]
fn bit(set: &[u64], i: usize) -> bool {
    set[i / 64] & (1 << (i % 64)) != 0
}

/// Shortest path from `s` to `dst` walking parent edges backwards from
/// `dst`; returns the nodes on the path **excluding `s`, including `dst`**.
/// `avoid` excludes one node from the search (detour alternatives).
fn shortest_path(
    dag: &Dag,
    s: NodeId,
    dst: NodeId,
    anc: &[Vec<u64>],
    avoid: Option<NodeId>,
) -> Option<Vec<NodeId>> {
    if s == dst {
        return Some(Vec::new());
    }
    if !bit(&anc[dst], s) || avoid == Some(dst) {
        return None;
    }
    // BFS from dst towards s over parent edges, restricted to nodes having
    // s as an ancestor (guarantees progress towards s).
    let mut prev: Vec<Option<NodeId>> = vec![None; dag.len()];
    let mut queue = VecDeque::new();
    queue.push_back(dst);
    prev[dst] = Some(dst);
    while let Some(v) = queue.pop_front() {
        for &p in dag.parents(v) {
            if p == s {
                // Reconstruct.
                let mut path = vec![v];
                let mut cur = v;
                while cur != dst {
                    cur = prev[cur].unwrap();
                    path.push(cur);
                }
                return Some(path);
            }
            if prev[p].is_none() && bit(&anc[p], s) && avoid != Some(p) {
                prev[p] = Some(v);
                queue.push_back(p);
            }
        }
    }
    None
}

/// Finds all reuse opportunities in the DAG, one canonical connection per
/// `(source, target)` pair (paper Sec. VI-A: the base ILP formulation
/// keeps one reuse connection per pair).
pub fn find_reuses(dag: &Dag) -> Vec<Reuse> {
    find_reuses_multi(dag, 1)
}

/// Finds reuse opportunities with up to `per_pair` **alternative**
/// connections per `(source, target)` pair — the first ILP extension the
/// paper describes (Sec. VI-B, "the model can also be extended to consider
/// two or more reuse connections between two nodes").
///
/// Alternatives come from distinct parent pairs of the target and from
/// detours around the shortest connection's interior nodes; giving the
/// solver a choice matters when the cheapest connection competes for the
/// capacity of a congested node.
pub fn find_reuses_multi(dag: &Dag, per_pair: usize) -> Vec<Reuse> {
    assert!(per_pair >= 1, "per_pair must be at least 1");
    let anc = ancestor_sets(dag);
    let profits = dag.ancestor_counts();
    let mut out: Vec<Reuse> = Vec::new();

    for t in 0..dag.len() {
        let parents = dag.parents(t);
        if parents.len() < 2 {
            continue;
        }
        // Distinct parent pairs (binary ops have at most one).
        for i in 0..parents.len() {
            for j in (i + 1)..parents.len() {
                let (u, v) = (parents[i], parents[j]);
                if u == v {
                    continue;
                }
                // Common ancestors of u and v.
                #[allow(clippy::needless_range_loop)] // s is a node id, not a slice position
                for s in 0..dag.len() {
                    if !(bit(&anc[u], s) && bit(&anc[v], s)) {
                        continue;
                    }
                    let have = out
                        .iter()
                        .filter(|r| r.source == s && r.target == t)
                        .count();
                    if have >= per_pair {
                        continue;
                    }
                    let Some(p1) = shortest_path(dag, s, u, &anc, None) else {
                        continue;
                    };
                    let Some(p2) = shortest_path(dag, s, v, &anc, None) else {
                        continue;
                    };
                    let base = merge_paths(&p1, &p2);
                    push_unique(&mut out, s, t, base.clone(), profits[s]);
                    // Detour alternatives: re-route either leg around each
                    // interior node of the base connection.
                    if per_pair > 1 {
                        for &avoid in &base {
                            if avoid == u || avoid == v {
                                continue;
                            }
                            let count = out
                                .iter()
                                .filter(|r| r.source == s && r.target == t)
                                .count();
                            if count >= per_pair {
                                break;
                            }
                            let q1 = shortest_path(dag, s, u, &anc, Some(avoid));
                            let q2 = shortest_path(dag, s, v, &anc, Some(avoid));
                            if let (Some(q1), Some(q2)) = (q1, q2) {
                                push_unique(&mut out, s, t, merge_paths(&q1, &q2), profits[s]);
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn merge_paths(p1: &[NodeId], p2: &[NodeId]) -> Vec<NodeId> {
    let mut connection: Vec<NodeId> = p1.to_vec();
    for &n in p2 {
        if !connection.contains(&n) {
            connection.push(n);
        }
    }
    connection.sort_unstable();
    connection
}

fn push_unique(out: &mut Vec<Reuse>, s: NodeId, t: NodeId, connection: Vec<NodeId>, profit: usize) {
    if !out
        .iter()
        .any(|r| r.source == s && r.target == t && r.connection == connection)
    {
        out.push(Reuse {
            source: s,
            target: t,
            connection,
            profit,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safegen_cfront::{analyze, parse};
    use safegen_ir::{build_dag, to_tac, NodeKind};

    fn dag_of(src: &str) -> Dag {
        let unit = parse(src).unwrap();
        let sema = analyze(&unit).unwrap();
        let tac = to_tac(&unit, &sema);
        let sema2 = analyze(&tac).unwrap();
        build_dag(&tac.functions[0], &sema2)
    }

    fn input_id(dag: &Dag, name: &str) -> NodeId {
        dag.nodes()
            .iter()
            .position(|n| matches!(&n.kind, NodeKind::Input(s) if s == name))
            .unwrap()
    }

    #[test]
    fn fig4_reuse_of_z_at_sub() {
        // x·z − y·z (paper Fig. 4): z is reused at the subtraction.
        let dag = dag_of("double f(double x, double y, double z) { return x*z - y*z; }");
        let reuses = find_reuses(&dag);
        let z = input_id(&dag, "z");
        let sub = dag
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::Sub)
            .unwrap();
        let r = reuses
            .iter()
            .find(|r| r.source == z && r.target == sub)
            .expect("z must be reused at the subtraction");
        // Connection = the two multiplications.
        let muls: Vec<NodeId> = dag
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::Mul)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(r.connection, muls);
        // ρ(z) = 1 (an input is its own only ancestor).
        assert_eq!(r.profit, 1);
    }

    #[test]
    fn no_reuse_without_shared_ancestor() {
        let dag = dag_of("double f(double a, double b, double c, double d) { return a*b - c*d; }");
        let reuses = find_reuses(&dag);
        assert!(reuses.is_empty(), "{reuses:?}");
    }

    #[test]
    fn squaring_is_self_reuse() {
        // x*x: both parents of the mul are the same node — NOT a reuse
        // (Definition 1 requires two distinct parents).
        let dag = dag_of("double f(double x) { return x * x; }");
        let reuses = find_reuses(&dag);
        assert!(reuses.is_empty());
    }

    #[test]
    fn deep_reuse_has_larger_connection() {
        // ((x*a)*b) - ((x*c)*d): x reused at the sub via 2-hop paths.
        let dag = dag_of(
            "double f(double x, double a, double b, double c, double d) {
                 return x*a*b - x*c*d;
             }",
        );
        let reuses = find_reuses(&dag);
        let x = input_id(&dag, "x");
        let sub = dag
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::Sub)
            .unwrap();
        let r = reuses
            .iter()
            .find(|r| r.source == x && r.target == sub)
            .unwrap();
        assert_eq!(r.connection.len(), 4, "{r:?}"); // 4 muls on the two paths
    }

    #[test]
    fn intermediate_node_reuse() {
        // s = a+b; return s*c - s*d: the *operation* node s is reused.
        let dag = dag_of(
            "double f(double a, double b, double c, double d) {
                 double s = a + b;
                 return s*c - s*d;
             }",
        );
        let reuses = find_reuses(&dag);
        let add = dag
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::Add)
            .unwrap();
        let sub = dag
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::Sub)
            .unwrap();
        let r = reuses
            .iter()
            .find(|r| r.source == add && r.target == sub)
            .unwrap();
        // ρ(s) = a, b, s = 3.
        assert_eq!(r.profit, 3);
        // a and b are also reused at the sub (through s).
        let a = input_id(&dag, "a");
        assert!(reuses.iter().any(|r| r.source == a && r.target == sub));
    }

    #[test]
    fn one_connection_per_pair() {
        // Diamond with two routes: s → u via two paths and s → v: multiple
        // path pairs for (s, target) but only one connection kept.
        let dag = dag_of(
            "double f(double x, double c) {
                 double u1 = x * 2.0;
                 double u2 = x * 3.0;
                 double m = u1 + u2;
                 return m - x * c;
             }",
        );
        let reuses = find_reuses(&dag);
        let x = input_id(&dag, "x");
        let count = reuses
            .iter()
            .filter(|r| r.source == x)
            .map(|r| r.target)
            .collect::<std::collections::HashSet<_>>()
            .len();
        let total = reuses.iter().filter(|r| r.source == x).count();
        assert_eq!(count, total, "duplicate (s,t) pairs found");
    }

    #[test]
    fn connection_contains_both_parents() {
        let dag = dag_of("double f(double x, double y, double z) { return x*z - y*z; }");
        let reuses = find_reuses(&dag);
        for r in &reuses {
            for &p in dag.parents(r.target) {
                if p != r.source {
                    assert!(
                        r.connection.contains(&p),
                        "connection of {r:?} must contain parent {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn profits_match_ancestor_counts() {
        let dag = dag_of(
            "double f(double a, double b) { double s = a*b; double t = s+a; return t*s - s*b; }",
        );
        let counts = dag.ancestor_counts();
        for r in find_reuses(&dag) {
            assert_eq!(r.profit, counts[r.source]);
        }
    }
}
