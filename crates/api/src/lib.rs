//! # safegen-api
//!
//! The **stable embedding facade** of SafeGen-rs — the one public
//! surface through which every consumer (the `safegen` CLI, the serve
//! daemon, the benchmark binaries, the C ABI in `safegen-capi`, and
//! external embedders) drives the sound-compilation engine.
//!
//! The object model is deliberately small:
//!
//! * [`Engine`] — compilation entry point: configuration (pass
//!   pipeline, analysis toggle) plus the compile paths (`compile`,
//!   `compile_artifact`, `load_bytes`).
//! * [`Program`] — an immutable, cheaply cloneable (`Arc`-shared)
//!   compiled program. Convertible to/from the versioned `.sga`
//!   artifact bytes, evaluable from any number of threads at once.
//! * [`EvalRequest`] / [`EvalResult`] — one evaluation: the function,
//!   the numeric configuration ([`RunConfig`]), the inputs (a single
//!   argument list or a batch), and the certified enclosures plus
//!   execution statistics that come back.
//! * [`ApiError`] — every failure, classified.
//!
//! ```
//! use safegen_api::{Engine, EvalRequest, RunConfig};
//!
//! let engine = Engine::new();
//! let program = engine
//!     .compile("double f(double a, double b) { return a * b + 0.1; }", "demo.c")
//!     .unwrap();
//! let result = program
//!     .eval(&EvalRequest::new("f", RunConfig::affine_f64(8)).with_args(vec![0.5.into(), 0.25.into()]))
//!     .unwrap();
//! let (lo, hi) = result.report().ret.unwrap();
//! assert!(lo <= 0.5 * 0.25 + 0.1 && 0.5 * 0.25 + 0.1 <= hi);
//! ```
//!
//! ## Feature `os`
//!
//! Everything that needs a real operating system — the serve daemon
//! (Unix sockets, threads), the on-disk compile cache, batch worker
//! threads, wall clocks — sits behind the default `os` feature. With
//! `--no-default-features` the whole facade builds for OS-less targets
//! such as `wasm32-unknown-unknown`: evaluation runs serially (results
//! are bit-identical by the batch engine's determinism contract) and
//! timing fields read as zero. See `docs/EMBEDDING.md`.
//!
//! ## Stability
//!
//! This crate, the `.sga` artifact bytes, and the JSON request schema in
//! [`jsonreq`] are the stable surface. The engine crates underneath
//! (`safegen`, `safegen-ir`, …) are internal and may change shape at any
//! time; the escape hatch re-exports in [`diag`] are explicitly
//! unstable.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

use safegen::program::{ParamBinding, Program as BytecodeProgram};
use safegen::{
    build_artifact, compile_to_artifact_cached, run_batch, run_batch_with, run_on, select_program,
    variant_kind_with, Compiled, Compiler,
};
use safegen_telemetry::clock::Stamp;

pub mod jsonreq;
#[cfg(feature = "os")]
pub mod serve;

// ---------------------------------------------------------------------
// Stable re-exports: the vocabulary types of the facade.
// ---------------------------------------------------------------------

pub use safegen::{
    check_source, parse_corpus_header, run_fuzz, AaConfig, ArgValue, Artifact, ArtifactError,
    ArtifactMeta, BatchItem, BatchOptions, BatchResult, BuildOptions, CheckOpts, CheckReport,
    DomainKind, EmitPrecision, ErrorSource, FuzzOpts, FuzzSummary, LoopMode, PassManager,
    Placement, ProfileReport, RunConfig, RunReport, RunStats, VariantKind, WorkerStats,
};

/// The telemetry layer (metrics registry, JSONL recorder, JSON values),
/// re-exported so embedders need not depend on `safegen-telemetry`
/// directly.
pub use safegen_telemetry as telemetry;

/// Unstable engine internals, re-exported for the repository's own
/// benchmark binaries and diagnostic tools.
///
/// Nothing here is part of the stable embedding surface: names can move
/// or vanish between minor versions. Embedders should treat this module
/// as off-limits.
pub mod diag {
    pub use safegen::program::Program as BytecodeProgram;
    pub use safegen::{
        compile_program, compile_program_with, emit_program, encode, exec, exec_lanes,
        pair_histogram, run_lanes_on, run_on, Compiled, Compiler, FixedProgram, RunResult,
        UnsoundF64, MAX_LANES,
    };
}

/// The facade's version string (the workspace version), the same string
/// reported by `sg_version` in the C ABI.
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Every way a facade call can fail, classified.
///
/// The classification is stable: the serve daemon's error categories and
/// the C ABI's `sg_status` codes are both derived from these variants.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApiError {
    /// The source program did not compile (parse or semantic error).
    Compile(String),
    /// The requested function/variant does not exist in the program.
    UnknownProgram(String),
    /// The request itself is malformed (bad config name, bad argument
    /// shape, bad JSON field).
    InvalidRequest(String),
    /// Evaluation failed in the VM.
    Eval(String),
    /// The artifact bytes are invalid (truncated, corrupted, version or
    /// capability mismatch).
    Artifact(String),
    /// An operating-system level failure (file or socket IO).
    Io(String),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Compile(m) => write!(f, "compile error: {m}"),
            ApiError::UnknownProgram(m) => write!(f, "unknown program: {m}"),
            ApiError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ApiError::Eval(m) => write!(f, "evaluation error: {m}"),
            ApiError::Artifact(m) => write!(f, "artifact error: {m}"),
            ApiError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl ApiError {
    /// The bare message, without the category prefix `Display` adds.
    pub fn message(&self) -> &str {
        match self {
            ApiError::Compile(m)
            | ApiError::UnknownProgram(m)
            | ApiError::InvalidRequest(m)
            | ApiError::Eval(m)
            | ApiError::Artifact(m)
            | ApiError::Io(m) => m,
        }
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// The compilation entry point: configuration plus the compile paths.
///
/// An `Engine` is cheap to create and to clone; it holds no caches
/// itself — the content-addressed compile cache behind
/// [`Engine::compile_artifact`] is process-global and on disk (see
/// `SAFEGEN_CACHE_DIR`), and the always-on metrics registry is
/// process-global too ([`Engine::metrics`]).
#[derive(Clone, Debug)]
pub struct Engine {
    passes: Option<PassManager>,
    analysis: bool,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the default configuration: max-reuse analysis on,
    /// pass pipeline resolved from `SAFEGEN_PASSES` at compile time
    /// (the optimizing default when unset).
    pub fn new() -> Engine {
        Engine {
            passes: None,
            analysis: true,
        }
    }

    /// Disables the max-reuse static analysis (paper Sec. VI): compiled
    /// programs carry no prioritized variants.
    pub fn without_analysis(mut self) -> Engine {
        self.analysis = false;
        self
    }

    /// Pins the mid-level pass pipeline, overriding `SAFEGEN_PASSES`.
    pub fn with_passes(mut self, pm: PassManager) -> Engine {
        self.passes = Some(pm);
        self
    }

    /// Pins the pass pipeline from a spec string (`"none"`, `"default"`,
    /// or a comma list like `"cse,dce"`).
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] for an unknown pass name.
    pub fn with_pass_spec(self, spec: &str) -> Result<Engine, ApiError> {
        let pm = PassManager::from_spec(spec).map_err(ApiError::InvalidRequest)?;
        Ok(self.with_passes(pm))
    }

    /// Compiles C source in-process: front end → TAC → analysis → pass
    /// pipeline. The returned [`Program`] compiles evaluation variants
    /// lazily, for any budget `k` — use this for interactive work; use
    /// [`Engine::compile_artifact`] when the variant set should be fixed
    /// and serialized.
    ///
    /// `name` labels the program (artifact metadata, daemon `list`
    /// responses) — conventionally the source path.
    ///
    /// # Errors
    ///
    /// [`ApiError::Compile`] with the parse/semantic diagnostic.
    pub fn compile(&self, source: &str, name: &str) -> Result<Program, ApiError> {
        let mut compiler = if self.analysis {
            Compiler::new()
        } else {
            Compiler::new().without_prioritization()
        };
        if let Some(pm) = &self.passes {
            compiler = compiler.with_passes(pm.clone());
        }
        let compiled = compiler
            .compile(source)
            .map_err(|e| ApiError::Compile(e.to_string()))?;
        Ok(Program {
            inner: Arc::new(Backing::Compiled {
                compiled,
                name: name.to_string(),
            }),
        })
    }

    /// Compiles C source to a fixed, serializable variant set through
    /// the content-addressed compile cache. Returns the program and
    /// whether it was a cache hit.
    ///
    /// The variant set (budgets, capacity splits, fixpoint support) is
    /// controlled by `opts`; the engine's analysis toggle and pass
    /// pipeline do not apply here — `opts.analysis` and the
    /// `SAFEGEN_PASSES` environment (hashed into the cache key) do.
    ///
    /// # Errors
    ///
    /// [`ApiError::Compile`] for front-end failures.
    pub fn compile_artifact(
        &self,
        source: &str,
        opts: &BuildOptions,
    ) -> Result<(Program, bool), ApiError> {
        let (artifact, cache_hit) =
            compile_to_artifact_cached(source, opts).map_err(ApiError::Compile)?;
        Ok((
            Program {
                inner: Arc::new(Backing::Artifact(artifact)),
            },
            cache_hit,
        ))
    }

    /// Loads a program from `.sga` artifact bytes (strict validation:
    /// magic, version, checksums, capability gates).
    ///
    /// # Errors
    ///
    /// [`ApiError::Artifact`] with the validation diagnostic.
    pub fn load_bytes(&self, bytes: &[u8]) -> Result<Program, ApiError> {
        let artifact =
            Artifact::from_bytes(bytes).map_err(|e| ApiError::Artifact(e.to_string()))?;
        Ok(Program {
            inner: Arc::new(Backing::Artifact(artifact)),
        })
    }

    /// Loads a program from a `.sga` artifact file.
    ///
    /// # Errors
    ///
    /// [`ApiError::Artifact`] for unreadable or invalid files.
    #[cfg(feature = "os")]
    pub fn load_file(&self, path: &std::path::Path) -> Result<Program, ApiError> {
        let artifact = Artifact::read_file(path).map_err(|e| ApiError::Artifact(e.to_string()))?;
        Ok(Program {
            inner: Arc::new(Backing::Artifact(artifact)),
        })
    }

    /// Emits the paper's actual artifact shape: a sound C program
    /// against the `aa_*` runtime API (Fig. 2), annotated with the
    /// max-reuse priorities at budget `k` when the engine's analysis is
    /// enabled.
    ///
    /// # Errors
    ///
    /// [`ApiError::Compile`] for front-end or analysis failures.
    pub fn emit_sound_c(
        &self,
        source: &str,
        precision: EmitPrecision,
        k: usize,
    ) -> Result<String, ApiError> {
        let mut compiler = Compiler::new();
        compiler.prioritize = self.analysis;
        if let Some(pm) = &self.passes {
            compiler = compiler.with_passes(pm.clone());
        }
        let compiled = compiler
            .compile(source)
            .map_err(|e| ApiError::Compile(e.to_string()))?;
        let unit = if self.analysis {
            safegen_analysis::annotate_unit(&compiled.tac, k)
                .map_err(|e| ApiError::Compile(e.to_string()))?
        } else {
            compiled.tac.clone()
        };
        let sema = safegen_cfront::analyze(&unit).map_err(|e| ApiError::Compile(e.to_string()))?;
        Ok(safegen::emit_c(&unit, &sema, precision))
    }

    /// A live snapshot of the process-global metrics registry as a JSON
    /// value (the same shape the daemon's `stats` verb returns; see
    /// `safegen_telemetry::metrics::SNAPSHOT_VERSION`).
    pub fn metrics(&self) -> telemetry::json::Json {
        telemetry::metrics::metrics().snapshot()
    }
}

// ---------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------

/// What a [`Program`] is backed by.
///
/// An artifact backing has a *fixed* variant set (strict selection, the
/// serve daemon's semantics); a compiled backing can produce a variant
/// for any configuration on demand (the interactive semantics).
#[derive(Debug)]
enum Backing {
    Artifact(Artifact),
    Compiled { compiled: Compiled, name: String },
}

/// An immutable compiled program, shareable across threads.
///
/// `Program` is an `Arc` around immutable state: `clone` is one atomic
/// increment, and any number of threads may evaluate concurrently
/// without contending a lock (the serve daemon's hot path runs on
/// exactly this guarantee).
#[derive(Clone, Debug)]
pub struct Program {
    inner: Arc<Backing>,
}

/// One program variant a [`Program`] can run: which function, which
/// annotation kind, how large the compiled bytecode is.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct VariantInfo {
    /// Function name.
    pub func: String,
    /// The variant kind (plain / prioritized / capacity-split).
    pub kind: VariantKind,
    /// Instruction count of the compiled bytecode.
    pub instrs: usize,
}

impl Program {
    /// The program's label: the artifact name, conventionally the
    /// source path it was compiled from.
    pub fn name(&self) -> &str {
        match &*self.inner {
            Backing::Artifact(a) => &a.meta.name,
            Backing::Compiled { name, .. } => name,
        }
    }

    /// The producing tool string (`safegen <version>`).
    pub fn tool(&self) -> String {
        match &*self.inner {
            Backing::Artifact(a) => a.meta.tool.clone(),
            Backing::Compiled { .. } => safegen_artifact::tool_version(),
        }
    }

    /// The functions this program can evaluate.
    pub fn functions(&self) -> Vec<String> {
        match &*self.inner {
            Backing::Artifact(a) => a.functions().into_iter().map(str::to_string).collect(),
            Backing::Compiled { compiled, .. } => compiled
                .tac
                .functions
                .iter()
                .map(|f| f.name.clone())
                .collect(),
        }
    }

    /// Every materialized program variant. For an artifact backing this
    /// is the complete (fixed) set; for an in-process compilation it is
    /// the precompiled set — other configurations still evaluate, they
    /// just compile their variant on demand.
    pub fn variants(&self) -> Vec<VariantInfo> {
        match &*self.inner {
            Backing::Artifact(a) => a
                .programs
                .iter()
                .map(|v| VariantInfo {
                    func: v.func.clone(),
                    kind: v.kind,
                    instrs: v.program.code.len(),
                })
                .collect(),
            Backing::Compiled { compiled, .. } => compiled
                .all_variants()
                .into_iter()
                .map(|(func, kind, prog)| VariantInfo {
                    func,
                    kind,
                    instrs: prog.code.len(),
                })
                .collect(),
        }
    }

    /// The variant kind `config` selects on this program.
    pub fn variant_kind(&self, config: &RunConfig) -> VariantKind {
        let prioritize = match &*self.inner {
            Backing::Artifact(a) => a.meta.prioritize,
            Backing::Compiled { compiled, .. } => compiled.prioritize(),
        };
        variant_kind_with(config, prioritize)
    }

    /// Evaluates one request: selects the variant, runs the VM (the
    /// batch engine for batch requests), and returns enclosures plus
    /// statistics.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownProgram`] when the function (or, for artifact
    /// backings, the selected variant) does not exist — with a listing
    /// of what does; [`ApiError::Eval`] for VM failures.
    pub fn eval(&self, req: &EvalRequest) -> Result<EvalResult, ApiError> {
        self.with_bytecode(&req.func, &req.config, |prog| {
            let batch = match &req.inputs {
                Some(inputs) => {
                    run_batch(prog, inputs, &req.config, &req.batch).map_err(ApiError::Eval)?
                }
                None => {
                    let t0 = Stamp::now();
                    let report = run_on(prog, &req.args, &req.config).map_err(ApiError::Eval)?;
                    single_batch(report, t0.elapsed().as_secs_f64())
                }
            };
            Ok(EvalResult {
                func: req.func.clone(),
                config_label: req.config.label(),
                batch,
            })
        })
    }

    /// Evaluates `n` generated input sets through the batch engine:
    /// item `i` receives `make_input(base_seed ^ i, i)` — the
    /// benchmark-harness entry point. Results are bit-identical across
    /// thread counts (seeds derive from item indices, never workers).
    ///
    /// # Errors
    ///
    /// As [`Program::eval`].
    pub fn eval_batch_seeded(
        &self,
        func: &str,
        config: &RunConfig,
        n: usize,
        base_seed: u64,
        make_input: impl Fn(u64, usize) -> Vec<ArgValue> + Sync,
        opts: &BatchOptions,
    ) -> Result<EvalResult, ApiError> {
        self.with_bytecode(func, config, |prog| {
            let batch = run_batch_with(prog, n, base_seed, &make_input, config, opts)
                .map_err(ApiError::Eval)?;
            Ok(EvalResult {
                func: func.to_string(),
                config_label: config.label(),
                batch,
            })
        })
    }

    /// Runs the function with symbol tracing and returns the
    /// error-attribution table (which source locations the final
    /// enclosure width comes from; affine configurations only).
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownProgram`] for a missing function,
    /// [`ApiError::Eval`] for non-affine configurations or VM failures.
    pub fn profile(
        &self,
        func: &str,
        args: &[ArgValue],
        config: &RunConfig,
    ) -> Result<ProfileReport, ApiError> {
        self.with_bytecode(func, config, |prog| {
            safegen::profile(prog, args, config).map_err(ApiError::Eval)
        })
    }

    /// Deterministic default inputs for `func` under `config`, paired
    /// with the parameter names: varied floats in (0, 1), iteration
    /// counts of 8, arrays filled with the same varied sequence.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownProgram`] for a missing function.
    pub fn default_args(
        &self,
        func: &str,
        config: &RunConfig,
    ) -> Result<Vec<(String, ArgValue)>, ApiError> {
        self.with_bytecode(func, config, |prog| {
            let vary = |i: usize| 0.3 + 0.17 * (i % 5) as f64; // 0.3, 0.47, …, 0.98
            Ok(prog
                .params
                .iter()
                .enumerate()
                .map(|(i, (name, binding))| {
                    let value = match binding {
                        ParamBinding::Float(_) => ArgValue::Float(vary(i)),
                        ParamBinding::Int(_) => ArgValue::Int(8),
                        ParamBinding::Array(id) => {
                            let len = prog.arrays[*id as usize].len;
                            ArgValue::Array((0..len).map(vary).collect())
                        }
                    };
                    (name.clone(), value)
                })
                .collect())
        })
    }

    /// Serializes the program as `.sga` artifact bytes — the stable
    /// interchange format (see `docs/ARTIFACT.md`).
    ///
    /// An [`Engine::compile`] backing packages only the variants
    /// materialized so far (plain programs; prioritized variants are
    /// built on demand and are **not** retroactively included). To ship
    /// the standard precompiled variant set, compile through
    /// [`Engine::compile_artifact`] instead — that is what the CLI and
    /// the C ABI do.
    pub fn to_bytes(&self) -> Vec<u8> {
        match &*self.inner {
            Backing::Artifact(a) => a.to_bytes(),
            Backing::Compiled { compiled, name } => build_artifact(compiled, name, None).to_bytes(),
        }
    }

    /// The artifact's content hash (hex). For an in-process compilation
    /// this serializes first — prefer artifact backings when the id is
    /// on a hot path.
    pub fn artifact_id(&self) -> String {
        match &*self.inner {
            Backing::Artifact(a) => a.id(),
            Backing::Compiled { compiled, name } => build_artifact(compiled, name, None).id(),
        }
    }

    /// Writes the program as a `.sga` artifact file.
    ///
    /// # Errors
    ///
    /// [`ApiError::Io`] for write failures.
    #[cfg(feature = "os")]
    pub fn write_file(&self, path: &std::path::Path) -> Result<(), ApiError> {
        match &*self.inner {
            Backing::Artifact(a) => a.write_file(path).map_err(|e| ApiError::Io(e.to_string())),
            Backing::Compiled { compiled, name } => build_artifact(compiled, name, None)
                .write_file(path)
                .map_err(|e| ApiError::Io(e.to_string())),
        }
    }

    /// The three-address-code form of the unit (what the max-reuse
    /// analysis operates on). In-process compilations only.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] for artifact-backed programs (the
    /// TAC is not serialized).
    pub fn tac_text(&self) -> Result<String, ApiError> {
        match &*self.inner {
            Backing::Compiled { compiled, .. } => Ok(safegen_cfront::print_unit(&compiled.tac)),
            Backing::Artifact(_) => Err(ApiError::InvalidRequest(
                "TAC dump needs source input (artifacts do not carry the TAC form)".to_string(),
            )),
        }
    }

    /// The optimized CFG IR after the pass pipeline, for `only` (or
    /// every function when `None`). In-process compilations only.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidRequest`] for artifact-backed programs;
    /// [`ApiError::UnknownProgram`] when `only` names no function.
    pub fn ir_text(&self, only: Option<&str>) -> Result<String, ApiError> {
        let Backing::Compiled { compiled, .. } = &*self.inner else {
            return Err(ApiError::InvalidRequest(
                "IR dump needs source input (artifacts carry bytecode, not IR)".to_string(),
            ));
        };
        if let Some(name) = only {
            if !compiled.tac.functions.iter().any(|f| f.name == name) {
                return Err(self.unknown_function(name));
            }
        }
        let mut out = String::new();
        for f in &compiled.tac.functions {
            if only.is_some_and(|name| name != f.name) {
                continue;
            }
            out.push_str(&compiled.dump_ir(&f.name));
        }
        Ok(out)
    }

    /// Selects the bytecode variant for `func` under `config` and hands
    /// it to `action`. Artifact backings select strictly (the fixed
    /// variant set, with a diagnostic listing on a miss); compiled
    /// backings compile the variant on demand after checking the
    /// function exists.
    fn with_bytecode<T>(
        &self,
        func: &str,
        config: &RunConfig,
        action: impl FnOnce(&BytecodeProgram) -> Result<T, ApiError>,
    ) -> Result<T, ApiError> {
        match &*self.inner {
            Backing::Artifact(a) => {
                let prog = select_program(a, func, config).map_err(ApiError::UnknownProgram)?;
                action(prog)
            }
            Backing::Compiled { compiled, .. } => {
                if !compiled.tac.functions.iter().any(|f| f.name == func) {
                    return Err(self.unknown_function(func));
                }
                let prog = compiled.program_for(func, config);
                action(&prog)
            }
        }
    }

    /// The facade's uniform "no such function" diagnostic, listing what
    /// the program does contain.
    fn unknown_function(&self, func: &str) -> ApiError {
        ApiError::UnknownProgram(format!(
            "no function `{func}` in `{}` (functions: {})",
            self.name(),
            self.functions().join(", ")
        ))
    }
}

/// Wraps a single-run report in the batch result shape, so single and
/// batch evaluations come back through one [`EvalResult`] type.
fn single_batch(report: RunReport, elapsed_s: f64) -> BatchResult {
    let stats = report.stats;
    BatchResult {
        items: vec![BatchItem {
            index: 0,
            report,
            elapsed_s,
        }],
        stats,
        threads: 1,
        workers: vec![WorkerStats {
            worker: 0,
            items: 1,
            busy_s: elapsed_s,
        }],
        lanes: 1,
    }
}

// ---------------------------------------------------------------------
// EvalRequest / EvalResult
// ---------------------------------------------------------------------

/// One evaluation request: function, numeric configuration, inputs.
///
/// A request with `inputs` set is a batch (evaluated by the parallel
/// batch engine, results in input order); otherwise `args` is the
/// single argument list. Construct with [`EvalRequest::new`] and the
/// `with_*` builders — the struct is `#[non_exhaustive]`.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct EvalRequest {
    /// The function to evaluate.
    pub func: String,
    /// The numeric configuration (domain, budget, loop mode).
    pub config: RunConfig,
    /// The argument list for a single evaluation (ignored when `inputs`
    /// is set).
    pub args: Vec<ArgValue>,
    /// Batch form: one argument list per item.
    pub inputs: Option<Vec<Vec<ArgValue>>>,
    /// Batch engine options (thread count, lane width); irrelevant for
    /// single evaluations.
    pub batch: BatchOptions,
}

impl EvalRequest {
    /// A request for `func` under `config` with no arguments yet.
    pub fn new(func: impl Into<String>, config: RunConfig) -> EvalRequest {
        EvalRequest {
            func: func.into(),
            config,
            args: Vec::new(),
            inputs: None,
            batch: BatchOptions::serial(),
        }
    }

    /// Sets the single-evaluation argument list.
    pub fn with_args(mut self, args: Vec<ArgValue>) -> EvalRequest {
        self.args = args;
        self
    }

    /// Turns the request into a batch over `inputs`.
    pub fn with_inputs(mut self, inputs: Vec<Vec<ArgValue>>) -> EvalRequest {
        self.inputs = Some(inputs);
        self
    }

    /// Sets the batch engine options (threads, lane width).
    pub fn with_batch(mut self, batch: BatchOptions) -> EvalRequest {
        self.batch = batch;
        self
    }
}

/// The outcome of one evaluation: certified enclosures, statistics, and
/// provenance.
///
/// Single evaluations and batches share this shape: a single run is a
/// batch of one item ([`EvalResult::report`] is the shortcut).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct EvalResult {
    /// The evaluated function.
    pub func: String,
    /// The configuration label (e.g. `f64a-dspv-k16`) — provenance for
    /// logs and responses.
    pub config_label: String,
    /// The per-item reports plus aggregate statistics, worker
    /// accounting, and the lane width that actually ran.
    pub batch: BatchResult,
}

impl EvalResult {
    /// The report of a single evaluation (the first item of a batch).
    ///
    /// # Panics
    ///
    /// Never for results returned by this crate: even an empty batch
    /// request produces an (empty) item vector only when `inputs` was
    /// empty — in that case there is genuinely no report and this
    /// panics; use [`EvalResult::reports`] for batches.
    pub fn report(&self) -> &RunReport {
        &self.batch.items[0].report
    }

    /// The reports of every item, in input order.
    pub fn reports(&self) -> impl Iterator<Item = &RunReport> {
        self.batch.items.iter().map(|i| &i.report)
    }
}
