//! The compile-once/serve-many evaluation daemon.
//!
//! `safegen serve` loads a `.sga` artifact **once** into shared
//! immutable program state and then answers evaluation requests over a
//! Unix-domain socket, amortizing the front-end + mid-end compilation
//! cost across every request (`docs/ARTIFACT.md` motivates the format;
//! DESIGN.md §9 covers the serving architecture).
//!
//! ## Protocol
//!
//! Newline-delimited JSON, one request line → one response line per
//! connection round; a connection may issue any number of rounds.
//! Requests carry an `"op"`:
//!
//! * `{"op":"ping"}` → `{"ok":true,"pong":true}`
//! * `{"op":"list"}` → artifact name, tool, functions, variants
//! * `{"op":"eval","func":F,"config":C,"k":K,"args":[...]}` — one
//!   evaluation; `args` entries are `{"float":x}`, `{"int":n}`,
//!   `{"array":[...]}` (bare numbers are accepted as floats)
//! * `{"op":"eval","func":F,"config":C,"k":K,"inputs":[[...],[...]]}` —
//!   a batch, evaluated by the parallel batch engine; the response
//!   carries one report per input set, in input order
//! * `{"op":"stats"}` → `{"ok":true,"stats":{...}}` — a live, versioned
//!   snapshot of the process metrics registry (per-verb request counts,
//!   error counts by category, latency/byte histograms with p50/p90/p99,
//!   cache and lane-engine counters; see `safegen_telemetry::metrics`)
//! * `{"op":"shutdown"}` → `{"ok":true,"bye":true}`, then the daemon
//!   exits cleanly (removing its socket file)
//!
//! Every failure is a response line `{"ok":false,"error":"..."}` — the
//! daemon never dies on a bad request.
//!
//! ## Observability
//!
//! Every request updates the always-on metrics registry (a few relaxed
//! atomics — see DESIGN.md §11): its verb and error-category counters,
//! the in-flight gauge, and the latency/request-bytes/response-bytes
//! histograms. When the JSONL recorder is enabled, each request is also
//! assigned a process-unique id at accept time and handled under it, so
//! every event it emits (the `serve.request` summary, `vm.exec` spans,
//! batch events, cache events) carries the same `"req"` field; the
//! buffered stream is flushed incrementally on every connection close and
//! on daemon shutdown, so the tail of the stream survives the daemon
//! exiting.
//!
//! ## Concurrency model
//!
//! The artifact is immutable and shared (`Arc<Artifact>`); each
//! connection gets a thread, and each evaluation builds its own domain
//! context ("per-request scratch"). There is **no lock anywhere on the
//! request path** — see `Compiled`'s immutability contract in the
//! driver, which this daemon inherits by construction.

use crate::jsonreq;
use crate::Program;
use safegen_telemetry as telemetry;
use safegen_telemetry::json::{self, Json};
use safegen_telemetry::metrics::{metrics, ErrCategory, Verb};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Serve-loop options.
///
/// Construct with [`ServeOptions::new`] and override fields by
/// assignment; `#[non_exhaustive]` reserves room for new knobs.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Socket path. A *stale* file at this path (no daemon answering)
    /// is replaced; a live daemon's socket is never stolen — see
    /// [`serve`].
    pub socket: PathBuf,
    /// Per-connection read timeout in milliseconds; a client that keeps
    /// a connection open without completing a request line is dropped
    /// after this long. `0` disables the timeout.
    pub read_timeout_ms: u64,
    /// Maximum accepted request-line length in bytes. Oversize requests
    /// are answered with a JSON error and the connection is closed, so
    /// a hostile client cannot grow the line buffer without bound.
    pub max_request_bytes: usize,
}

impl ServeOptions {
    /// Options for `socket` with the default limits (30 s read timeout,
    /// 1 MiB request lines).
    pub fn new(socket: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            socket: socket.into(),
            read_timeout_ms: 30_000,
            max_request_bytes: 1 << 20,
        }
    }
}

/// True when a daemon currently answers pings on `socket`. Connect and
/// ping with short timeouts: an abandoned socket file refuses the
/// connection (or nobody responds), a live daemon pongs.
fn daemon_answers(socket: &Path) -> bool {
    let timeout = std::time::Duration::from_millis(500);
    let Ok(stream) = UnixStream::connect(socket) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let Ok(mut writer) = stream.try_clone() else {
        return false;
    };
    let ping = Json::obj(vec![("op", Json::from("ping"))]);
    if writeln!(writer, "{ping}").is_err() {
        return false;
    }
    let mut line = String::new();
    if BufReader::new(stream).read_line(&mut line).is_err() {
        return false;
    }
    matches!(json::parse(line.trim()), Ok(v) if v.get("pong") == Some(&Json::Bool(true)))
}

/// Runs the daemon until a `shutdown` request arrives.
///
/// Binds the socket, accepts connections (one thread each), and blocks
/// the calling thread. On shutdown the socket file is removed before
/// returning.
///
/// An existing file at the socket path is probed first: if a daemon
/// answers pings there, `serve` refuses to start rather than silently
/// unlinking the live daemon's socket out from under it; only a
/// genuinely stale socket (no responder) is removed.
///
/// # Errors
///
/// A live daemon already on the socket, and socket bind/IO failures,
/// rendered as strings.
pub fn serve(program: Program, opts: &ServeOptions) -> Result<(), String> {
    if opts.socket.exists() {
        if daemon_answers(&opts.socket) {
            return Err(format!(
                "a daemon is already serving on {}: refusing to steal its socket \
                 (shut it down first or use another path)",
                opts.socket.display()
            ));
        }
        let _ = std::fs::remove_file(&opts.socket);
    }
    let listener = UnixListener::bind(&opts.socket)
        .map_err(|e| format!("bind {}: {e}", opts.socket.display()))?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                let _ = telemetry::flush();
                return Err(format!("accept: {e}"));
            }
        };
        // `Program` is an Arc around immutable state: one refcount
        // bump hands the thread its shared handle.
        let program = program.clone();
        let stop = Arc::clone(&stop);
        let conn_opts = opts.clone();
        workers.push(std::thread::spawn(move || {
            serve_connection(stream, &program, &stop, &conn_opts);
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_file(&opts.socket);
    // Clean shutdown: push any still-buffered telemetry to the sink so
    // the final requests' events are never lost.
    let _ = telemetry::flush();
    Ok(())
}

/// Increments the in-flight gauge for its lifetime (drop-safe).
struct InFlight;

impl InFlight {
    fn new() -> InFlight {
        metrics().serve.in_flight.inc();
        InFlight
    }
}

impl Drop for InFlight {
    fn drop(&mut self) {
        metrics().serve.in_flight.dec();
    }
}

/// Counts a connection open, and on drop (every socket-close path —
/// clean EOF, timeout, oversize rejection, write failure, shutdown)
/// counts the close and flushes buffered telemetry so tail events
/// survive however the connection ends. The flush is incremental
/// (append-only), so this is cheap even per-connection.
struct ConnGuard;

impl ConnGuard {
    fn new() -> ConnGuard {
        metrics().serve.connections_opened.inc();
        ConnGuard
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        metrics().serve.connections_closed.inc();
        let _ = telemetry::flush();
    }
}

/// How one attempt to read a request line ended.
enum LineRead {
    /// A complete line (without its terminator) is in the buffer.
    Line,
    /// Clean end of stream (client hung up between requests).
    Eof,
    /// The line exceeded the configured byte cap.
    Oversize,
    /// Read error — including the per-connection timeout expiring.
    Failed,
}

/// Reads one `\n`-terminated line into `out`, never buffering more than
/// `max` bytes — the bounded replacement for `read_line`, which would
/// grow its buffer as fast as a hostile client can send.
fn read_bounded_line(reader: &mut impl BufRead, out: &mut Vec<u8>, max: usize) -> LineRead {
    out.clear();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                // A final unterminated line still gets processed.
                return if out.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                };
            }
            Ok(c) => c,
            Err(_) => return LineRead::Failed,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if out.len() + pos > max {
                    return LineRead::Oversize;
                }
                out.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return LineRead::Line;
            }
            None => {
                if out.len() + chunk.len() > max {
                    return LineRead::Oversize;
                }
                out.extend_from_slice(chunk);
                let n = chunk.len();
                reader.consume(n);
            }
        }
    }
}

fn serve_connection(stream: UnixStream, program: &Program, stop: &AtomicBool, opts: &ServeOptions) {
    if opts.read_timeout_ms > 0 {
        let timeout = std::time::Duration::from_millis(opts.read_timeout_ms);
        if stream.set_read_timeout(Some(timeout)).is_err() {
            return;
        }
    }
    let socket: &Path = &opts.socket;
    let _conn = ConnGuard::new();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut raw = Vec::new();
    loop {
        match read_bounded_line(&mut reader, &mut raw, opts.max_request_bytes) {
            LineRead::Line => {}
            LineRead::Eof | LineRead::Failed => return, // client hung up or timed out
            LineRead::Oversize => {
                metrics().serve.errors(ErrCategory::Oversize).inc();
                let resp = Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::from(format!(
                            "request line exceeds {} bytes",
                            opts.max_request_bytes
                        )),
                    ),
                ]);
                let _ = writeln!(writer, "{resp}");
                return;
            }
        }
        let line = String::from_utf8_lossy(&raw);
        if line.trim().is_empty() {
            continue;
        }
        // One process-unique id per request, generated at accept time:
        // every telemetry event emitted while handling it — the
        // serve.request summary, vm.exec / batch spans, cache events —
        // carries the same "req" field.
        let req_id = telemetry::next_request_id();
        let started = Instant::now();
        let out = {
            let _in_flight = InFlight::new();
            telemetry::with_request(req_id, || handle_request(line.trim(), program))
        };
        let latency_ns = started.elapsed().as_nanos() as u64;
        let micros = latency_ns / 1_000;
        let response = match out.response {
            Json::Obj(mut fields) => {
                fields.push(("micros".to_string(), Json::from(micros)));
                Json::Obj(fields)
            }
            other => other,
        };
        let text = response.to_string();
        let m = metrics();
        m.serve.requests(out.verb).inc();
        if let Some(cat) = out.error {
            m.serve.errors(cat).inc();
        }
        m.serve.latency_ns.observe(latency_ns);
        m.serve.request_bytes.observe(raw.len() as u64);
        m.serve.response_bytes.observe(text.len() as u64 + 1);
        if telemetry::enabled() {
            // Per-request summary event, under the request id.
            telemetry::with_request(req_id, || {
                let mut fields = vec![
                    ("verb", Json::from(out.verb.name())),
                    ("ok", Json::Bool(out.error.is_none())),
                    ("micros", Json::from(micros)),
                    ("ns", Json::from(latency_ns)),
                    ("bytes_in", Json::from(raw.len())),
                    ("bytes_out", Json::from(text.len() + 1)),
                    ("shutdown", Json::Bool(out.shutdown)),
                ];
                if let Some(cat) = out.error {
                    fields.push(("error", Json::from(cat.name())));
                }
                fields.extend(out.detail.iter().map(|(k, v)| (k.as_str(), v.clone())));
                telemetry::record("serve.request", fields);
            });
        }
        if writer.write_all(text.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            return;
        }
        if out.shutdown {
            stop.store(true, Ordering::SeqCst);
            // The acceptor is blocked in `accept`; poke it awake so it
            // observes the stop flag and exits.
            let _ = UnixStream::connect(socket);
            return;
        }
    }
}

/// Everything the connection loop needs to know about one handled
/// request: the response line, whether to shut down, and the
/// classification that drives the metrics registry and the per-request
/// summary event.
struct Outcome {
    response: Json,
    shutdown: bool,
    verb: Verb,
    error: Option<ErrCategory>,
    /// Extra summary-event fields (eval phase breakdown, lanes, sizes).
    detail: Vec<(String, Json)>,
}

impl Outcome {
    fn ok(verb: Verb, response: Json) -> Outcome {
        Outcome {
            response,
            shutdown: false,
            verb,
            error: None,
            detail: Vec::new(),
        }
    }

    fn err(verb: Verb, cat: ErrCategory, msg: String) -> Outcome {
        Outcome {
            response: Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::from(msg))]),
            shutdown: false,
            verb,
            error: Some(cat),
            detail: Vec::new(),
        }
    }
}

/// Decodes and executes one request line.
fn handle_request(line: &str, program: &Program) -> Outcome {
    let request = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Outcome::err(
                Verb::Other,
                ErrCategory::BadJson,
                format!("bad request JSON: {e}"),
            )
        }
    };
    match request.get("op").and_then(Json::as_str) {
        Some("ping") => Outcome::ok(
            Verb::Ping,
            Json::obj(vec![("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
        ),
        Some("shutdown") => Outcome {
            shutdown: true,
            ..Outcome::ok(
                Verb::Shutdown,
                Json::obj(vec![("ok", Json::Bool(true)), ("bye", Json::Bool(true))]),
            )
        },
        Some("stats") => {
            // Push buffered JSONL to the sink so a scraper that reads the
            // snapshot and then the stream sees a consistent picture.
            let _ = telemetry::flush();
            Outcome::ok(
                Verb::Stats,
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("stats", metrics().snapshot()),
                ]),
            )
        }
        Some("list") => Outcome::ok(Verb::List, jsonreq::list_response(program)),
        Some("eval") => match jsonreq::handle_eval(&request, program) {
            Ok((response, detail)) => Outcome {
                detail,
                ..Outcome::ok(Verb::Eval, response)
            },
            Err((cat, msg)) => Outcome::err(Verb::Eval, cat, msg),
        },
        Some(other) => Outcome::err(
            Verb::Other,
            ErrCategory::UnknownVerb,
            format!("unknown op {other:?}"),
        ),
        None => Outcome::err(
            Verb::Other,
            ErrCategory::BadRequest,
            "request needs a string \"op\" field".to_string(),
        ),
    }
}

/// Client helper: sends one request line to a serving daemon and returns
/// the parsed response.
///
/// # Errors
///
/// Connection/IO failures and malformed responses, as strings.
pub fn request(socket: &Path, body: &Json) -> Result<Json, String> {
    let stream =
        UnixStream::connect(socket).map_err(|e| format!("connect {}: {e}", socket.display()))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writeln!(writer, "{body}").map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("receive: {e}"))?;
    if line.is_empty() {
        return Err("daemon closed the connection without responding".into());
    }
    json::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))
}

/// Waits (up to `timeout_ms`) for a daemon to answer pings on `socket` —
/// the test/benchmark startup helper.
///
/// # Errors
///
/// Times out with a message when the daemon never becomes ready.
pub fn wait_ready(socket: &Path, timeout_ms: u64) -> Result<(), String> {
    let deadline = Instant::now() + std::time::Duration::from_millis(timeout_ms);
    let ping = Json::obj(vec![("op", Json::from("ping"))]);
    loop {
        if request(socket, &ping).is_ok() {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "daemon on {} not ready after {timeout_ms}ms",
                socket.display()
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildOptions, Engine, EvalRequest, RunConfig};

    fn test_program() -> Program {
        let mut opts = BuildOptions::new("serve-test.c");
        opts.ks = vec![8];
        opts.use_cache = false;
        let (program, _) = Engine::new()
            .compile_artifact(
                "double f(double x, double y) { return x * y + 0.1; }",
                &opts,
            )
            .unwrap();
        program
    }

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("safegen-serve-{tag}-{}.sock", std::process::id()))
    }

    /// Spawns a daemon thread with custom options and waits until it
    /// answers pings.
    fn spawn_daemon_with(
        tag: &str,
        tweak: impl FnOnce(ServeOptions) -> ServeOptions,
    ) -> (PathBuf, std::thread::JoinHandle<Result<(), String>>) {
        let socket = sock_path(tag);
        let opts = tweak(ServeOptions::new(socket.clone()));
        let program = test_program();
        let handle = std::thread::spawn(move || serve(program, &opts));
        wait_ready(&socket, 5_000).unwrap();
        (socket, handle)
    }

    /// Spawns a daemon thread and waits until it answers pings.
    fn spawn_daemon(tag: &str) -> (PathBuf, std::thread::JoinHandle<Result<(), String>>) {
        spawn_daemon_with(tag, |o| o)
    }

    #[test]
    fn ping_eval_and_clean_shutdown() {
        let (socket, handle) = spawn_daemon("basic");

        let resp = request(
            &socket,
            &Json::obj(vec![
                ("op", Json::from("eval")),
                ("func", Json::from("f")),
                ("config", Json::from("dspv")),
                ("k", Json::from(8u64)),
                (
                    "args",
                    Json::Arr(vec![
                        Json::obj(vec![("float", Json::Num(0.5))]),
                        Json::Num(0.25), // bare number accepted as float
                    ]),
                ),
            ]),
        )
        .unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
        let ret = resp.get("ret").unwrap().as_arr().unwrap();
        let (lo, hi) = (ret[0].as_f64().unwrap(), ret[1].as_f64().unwrap());
        let expected = 0.5 * 0.25 + 0.1;
        assert!(lo <= expected && expected <= hi);
        assert!(resp.get("micros").unwrap().as_f64().unwrap() >= 0.0);

        // Response matches a direct in-process facade run bit-for-bit.
        let direct = test_program()
            .eval(
                &EvalRequest::new("f", RunConfig::affine_f64(8))
                    .with_args(vec![0.5.into(), 0.25.into()]),
            )
            .unwrap();
        assert_eq!(direct.report().ret.unwrap(), (lo, hi));

        let resp = request(&socket, &Json::obj(vec![("op", Json::from("list"))])).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            resp.get("functions").unwrap().as_arr().unwrap()[0].as_str(),
            Some("f")
        );

        let resp = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        assert_eq!(resp.get("bye"), Some(&Json::Bool(true)));
        handle.join().unwrap().unwrap();
        assert!(!socket.exists(), "socket file must be removed on shutdown");
    }

    #[test]
    fn batch_eval_and_error_paths() {
        let (socket, handle) = spawn_daemon("batch");

        // Batch form returns one report per input set, in order.
        let resp = request(
            &socket,
            &Json::obj(vec![
                ("op", Json::from("eval")),
                ("func", Json::from("f")),
                ("config", Json::from("ia")),
                (
                    "inputs",
                    Json::Arr(vec![
                        Json::Arr(vec![Json::Num(0.5), Json::Num(0.25)]),
                        Json::Arr(vec![Json::Num(1.5), Json::Num(2.0)]),
                    ]),
                ),
                ("threads", Json::from(2u64)),
            ]),
        )
        .unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
        assert_eq!(resp.get("reports").unwrap().as_arr().unwrap().len(), 2);

        // Bad requests get error responses; the daemon survives them all.
        for bad in [
            "not json at all".to_string(),
            Json::obj(vec![("op", Json::from("nope"))]).to_string(),
            Json::obj(vec![("op", Json::from("eval")), ("func", Json::from("g"))]).to_string(),
            Json::obj(vec![
                ("op", Json::from("eval")),
                ("func", Json::from("f")),
                ("config", Json::from("dspv")),
                ("k", Json::from(32u64)), // variant not in artifact
                ("args", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ])
            .to_string(),
        ] {
            let parsed = json::parse(&bad);
            let resp = match parsed {
                Ok(v) => request(&socket, &v).unwrap(),
                Err(_) => {
                    // Raw invalid line through a manual connection.
                    let stream = UnixStream::connect(&socket).unwrap();
                    let mut w = stream.try_clone().unwrap();
                    writeln!(w, "{bad}").unwrap();
                    let mut line = String::new();
                    BufReader::new(stream).read_line(&mut line).unwrap();
                    json::parse(line.trim()).unwrap()
                }
            };
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp}");
            assert!(resp.get("error").is_some());
        }

        let _ = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn live_daemon_socket_is_not_stolen() {
        let (socket, handle) = spawn_daemon("steal");

        // A second daemon on the same socket must refuse to start…
        let err = serve(test_program(), &ServeOptions::new(socket.clone()))
            .expect_err("second daemon must refuse a live socket");
        assert!(err.contains("already serving"), "{err}");

        // …and the first daemon must still be answering.
        let resp = request(&socket, &Json::obj(vec![("op", Json::from("ping"))])).unwrap();
        assert_eq!(resp.get("pong"), Some(&Json::Bool(true)));

        let _ = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn stale_socket_is_replaced() {
        let socket = sock_path("stale");
        // A socket file with no listener behind it: bind and drop.
        drop(UnixListener::bind(&socket).unwrap());
        assert!(socket.exists(), "stale socket file left behind");

        let opts = ServeOptions::new(socket.clone());
        let program = test_program();
        let handle = std::thread::spawn(move || serve(program, &opts));
        wait_ready(&socket, 5_000).expect("daemon must replace a stale socket");

        let _ = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn oversize_request_is_rejected_with_json_error() {
        let (socket, handle) = spawn_daemon_with("oversize", |o| ServeOptions {
            max_request_bytes: 256,
            ..o
        });

        let stream = UnixStream::connect(&socket).unwrap();
        let mut w = stream.try_clone().unwrap();
        let huge = "x".repeat(4096);
        // The server answers and closes as soon as the limit trips,
        // which can race the tail of this oversized write into a broken
        // pipe — that is the rejection working, not a test failure.
        let _ = writeln!(w, "{huge}");
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let resp = json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp}");
        assert!(
            resp.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("256 bytes"),
            "{resp}"
        );

        // The daemon survives and keeps serving new connections.
        let resp = request(&socket, &Json::obj(vec![("op", Json::from("ping"))])).unwrap();
        assert_eq!(resp.get("pong"), Some(&Json::Bool(true)));

        let _ = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn idle_connection_is_dropped_on_timeout() {
        let (socket, handle) = spawn_daemon_with("timeout", |o| ServeOptions {
            read_timeout_ms: 150,
            ..o
        });

        // Connect and send nothing: the daemon must hang up on us.
        let stream = UnixStream::connect(&socket).unwrap();
        let mut line = String::new();
        let n = BufReader::new(stream).read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0, "daemon must close an idle connection, got {line:?}");

        // Fresh connections still work afterwards.
        let resp = request(&socket, &Json::obj(vec![("op", Json::from("ping"))])).unwrap();
        assert_eq!(resp.get("pong"), Some(&Json::Bool(true)));

        let _ = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        handle.join().unwrap().unwrap();
    }

    /// Polls until `cond` holds, or panics after ~2 s. Metric gauges are
    /// process-global and other tests' daemons run concurrently, so
    /// transient values are expected; only the settled state is asserted.
    fn wait_until(what: &str, cond: impl Fn() -> bool) {
        for _ in 0..100 {
            if cond() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        panic!("timed out waiting for: {what}");
    }

    #[test]
    fn stats_verb_returns_versioned_snapshot() {
        // Counters are process-global and monotone, so deltas are
        // asserted as `>=`: concurrent tests can only add to them.
        let m = metrics();
        let evals0 = m.serve.requests(Verb::Eval).get();
        let stats0 = m.serve.requests(Verb::Stats).get();
        let lat0 = m.serve.latency_ns.count();
        let (socket, handle) = spawn_daemon("statsverb");

        let resp = request(
            &socket,
            &Json::obj(vec![
                ("op", Json::from("eval")),
                ("func", Json::from("f")),
                ("config", Json::from("dspv")),
                ("k", Json::from(8u64)),
                ("args", Json::Arr(vec![Json::Num(0.5), Json::Num(0.25)])),
            ]),
        )
        .unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");

        let resp = request(&socket, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
        let stats = resp.get("stats").expect("stats field");
        assert_eq!(
            stats.get("version").and_then(|v| v.as_str()),
            Some(safegen_telemetry::metrics::SNAPSHOT_VERSION),
            "{stats}"
        );
        let num = |path: &[&str]| -> f64 {
            let mut node = stats;
            for key in path {
                node = node.get(key).unwrap_or_else(|| panic!("missing {path:?}"));
            }
            node.as_f64()
                .unwrap_or_else(|| panic!("{path:?} not a number"))
        };
        assert!(num(&["serve", "requests", "eval"]) >= (evals0 + 1) as f64);
        // A request is counted after it is handled, so a snapshot never
        // sees the stats request that produced it — but it does see any
        // earlier one.
        let second = request(&socket, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        let second_stats = second.get("stats").expect("stats field");
        assert!(
            second_stats
                .get("serve")
                .and_then(|s| s.get("requests"))
                .and_then(|r| r.get("stats"))
                .and_then(|v| v.as_f64())
                .unwrap()
                >= (stats0 + 1) as f64
        );
        assert!(num(&["serve", "requests", "total"]) >= num(&["serve", "requests", "eval"]));
        assert!(num(&["serve", "latency_ns", "count"]) >= (lat0 + 1) as f64);
        assert!(
            num(&["serve", "latency_ns", "p50"]) > 0.0,
            "nanosecond latency p50 must be positive: {stats}"
        );
        // The other registry sections ride along in the same snapshot.
        assert!(stats.get("cache").is_some(), "{stats}");
        assert!(stats.get("lanes").is_some(), "{stats}");
        assert!(stats.get("compile").is_some(), "{stats}");
        assert!(num(&["uptime_s"]) >= 0.0);

        let _ = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn error_paths_move_their_error_counters() {
        let m = metrics();
        let in_flight0 = m.serve.in_flight.get();
        let oversize0 = m.serve.errors(ErrCategory::Oversize).get();
        let bad_json0 = m.serve.errors(ErrCategory::BadJson).get();
        let unk_verb0 = m.serve.errors(ErrCategory::UnknownVerb).get();
        let unk_prog0 = m.serve.errors(ErrCategory::UnknownProgram).get();
        let errors_total0 = m.serve.errors_total();
        let (socket, handle) = spawn_daemon_with("errmetrics", |o| ServeOptions {
            max_request_bytes: 256,
            ..o
        });

        // Oversize: the limit trips before a request is even parsed.
        let stream = UnixStream::connect(&socket).unwrap();
        let mut w = stream.try_clone().unwrap();
        let _ = writeln!(w, "{}", "x".repeat(4096));
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert!(m.serve.errors(ErrCategory::Oversize).get() > oversize0);

        // Malformed JSON.
        let stream = UnixStream::connect(&socket).unwrap();
        let mut w = stream.try_clone().unwrap();
        writeln!(w, "this is not json").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert!(m.serve.errors(ErrCategory::BadJson).get() > bad_json0);

        // Unknown verb.
        let resp = request(&socket, &Json::obj(vec![("op", Json::from("nope"))])).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(m.serve.errors(ErrCategory::UnknownVerb).get() > unk_verb0);

        // Unknown program (function not in the artifact).
        let resp = request(
            &socket,
            &Json::obj(vec![
                ("op", Json::from("eval")),
                ("func", Json::from("no_such_fn")),
                ("config", Json::from("dspv")),
                ("k", Json::from(8u64)),
                ("args", Json::Arr(vec![])),
            ]),
        )
        .unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(m.serve.errors(ErrCategory::UnknownProgram).get() > unk_prog0);

        // Every error above is also in the aggregate.
        assert!(m.serve.errors_total() >= errors_total0 + 4);

        let _ = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        handle.join().unwrap().unwrap();

        // Nothing above leaks an in-flight slot: the gauge settles back
        // to (at most) where it started once our daemon is down.
        wait_until("in-flight gauge returns to baseline", || {
            m.serve.in_flight.get() <= in_flight0
        });
    }

    #[test]
    fn request_id_correlates_summary_and_spans() {
        let prefix =
            std::env::temp_dir().join(format!("safegen-serve-trace-{}", std::process::id()));
        telemetry::init("serve-test", false, Some(prefix.clone()));
        let (socket, handle) = spawn_daemon("reqid");

        // An eval under a config label no other test uses, so its
        // summary event is findable in the shared JSONL stream.
        let resp = request(
            &socket,
            &Json::obj(vec![
                ("op", Json::from("eval")),
                ("func", Json::from("f")),
                ("config", Json::from("ssnn")),
                ("k", Json::from(8u64)),
                ("args", Json::Arr(vec![Json::Num(0.5), Json::Num(0.25)])),
            ]),
        )
        .unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");

        let _ = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        handle.join().unwrap().unwrap();
        telemetry::flush().unwrap();
        telemetry::shutdown();

        let jsonl = prefix.with_extension("jsonl");
        let text = std::fs::read_to_string(&jsonl).unwrap();
        let events: Vec<Json> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| json::parse(l).unwrap())
            .collect();
        let summary = events
            .iter()
            .find(|e| {
                e.get("kind").and_then(|k| k.as_str()) == Some("serve.request")
                    && e.get("config")
                        .and_then(|c| c.as_str())
                        .is_some_and(|c| c.contains("ssnn"))
            })
            .unwrap_or_else(|| panic!("no ssnn serve.request event in {}", jsonl.display()));
        let req = summary
            .get("req")
            .and_then(|r| r.as_f64())
            .expect("summary event carries a req id");
        assert!(req > 0.0);
        // The VM execution span recorded while handling that request
        // carries the same id — that is the cross-event correlation.
        let correlated_span = events.iter().any(|e| {
            e.get("kind").and_then(|k| k.as_str()) == Some("span")
                && e.get("name").and_then(|n| n.as_str()) == Some("vm.exec")
                && e.get("req").and_then(|r| r.as_f64()) == Some(req)
        });
        assert!(
            correlated_span,
            "no vm.exec span shares req {req} in {}",
            jsonl.display()
        );
        let _ = std::fs::remove_file(&jsonl);
        let _ = std::fs::remove_file(prefix.with_extension("summary.json"));
    }

    #[test]
    fn batch_eval_honors_lane_width() {
        let (socket, handle) = spawn_daemon("lanes");
        let inputs = Json::Arr(
            (0..6)
                .map(|i| Json::Arr(vec![Json::Num(0.1 * i as f64), Json::Num(0.25)]))
                .collect(),
        );
        let eval = |lanes: u64| {
            request(
                &socket,
                &Json::obj(vec![
                    ("op", Json::from("eval")),
                    ("func", Json::from("f")),
                    ("config", Json::from("ia")),
                    ("inputs", inputs.clone()),
                    ("lanes", Json::from(lanes)),
                ]),
            )
            .unwrap()
        };
        let scalar = eval(1);
        let laned = eval(4);
        assert_eq!(scalar.get("lanes"), Some(&Json::from(1u64)));
        assert_eq!(laned.get("lanes"), Some(&Json::from(4u64)));
        // Same enclosures either way.
        assert_eq!(scalar.get("reports"), laned.get("reports"));

        let _ = request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).unwrap();
        handle.join().unwrap().unwrap();
    }
}
