//! The JSON evaluation request schema — **one** decoder/encoder shared
//! by the serve daemon and the C ABI (`safegen-capi`), so an embedder
//! talking JSON through the FFI gets byte-identical responses to a
//! client talking to the daemon over its socket.
//!
//! ## Request shape
//!
//! ```text
//! {"func":F, "config":C, "k":K, "args":[...]}            one evaluation
//! {"func":F, "config":C, "k":K, "inputs":[[...],[...]],
//!  "threads":T, "lanes":L}                               a batch
//! ```
//!
//! `config` is a CLI config name (`dspv`, `ssnn`, …, `ia`, `ia-dd`,
//! `unsound`; default `dspv`), `k` the noise-symbol budget (default
//! 16); `k_low`, `loop_mode` (`unroll`/`fixpoint`/`auto`) and
//! `unroll_budget` are accepted optionally. Argument values are
//! `{"float":x}`, `{"int":n}`, `{"array":[...]}`, or bare numbers
//! (floats).
//!
//! ## Response shape
//!
//! Single: `{"ok":true, "config":LABEL, "ret":[lo,hi], "arrays":[...],
//! "acc_bits":B, "stats":{...}}`. Batch: `{"ok":true, "config":LABEL,
//! "reports":[...], "threads":T, "lanes":L}`. Failures are classified
//! [`ErrCategory`] values plus a message — the daemon renders them as
//! `{"ok":false,"error":MSG}` lines, the C ABI as status codes.

use crate::{ApiError, ArgValue, EvalRequest, Program, RunConfig, RunReport};
use safegen_telemetry::clock::Stamp;
use safegen_telemetry::json::Json;
use safegen_telemetry::metrics::ErrCategory;

/// An eval failure, classified for the daemon's error counters (and the
/// C ABI's status codes).
pub type EvalError = (ErrCategory, String);

/// The [`ErrCategory`] a facade error maps to.
pub fn error_category(e: &ApiError) -> ErrCategory {
    match e {
        ApiError::UnknownProgram(_) => ErrCategory::UnknownProgram,
        ApiError::Eval(_) => ErrCategory::Exec,
        _ => ErrCategory::BadRequest,
    }
}

/// Decodes and executes one eval request against `program`, returning
/// the response JSON plus telemetry detail fields (`func`, `config`,
/// `n`, `lanes`, phase timings).
///
/// # Errors
///
/// Classified request/selection/execution failures — see
/// [`error_category`].
pub fn handle_eval(
    request: &Json,
    program: &Program,
) -> Result<(Json, Vec<(String, Json)>), EvalError> {
    let bad = |msg: &str| (ErrCategory::BadRequest, msg.to_string());
    // Decode phase: request fields → config + argument values.
    let decode_started = Stamp::now();
    let func = request
        .get("func")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("eval needs a string \"func\" field"))?;
    let k = match request.get("k") {
        Some(v) => v.as_f64().ok_or_else(|| bad("\"k\" must be a number"))? as usize,
        None => 16,
    };
    let mut config = RunConfig::from_cli(
        request
            .get("config")
            .and_then(Json::as_str)
            .unwrap_or("dspv"),
        k,
    )
    .map_err(|e| (ErrCategory::BadRequest, e))?;
    if let Some(v) = request.get("k_low") {
        config.capacity_low = Some(
            v.as_f64()
                .ok_or_else(|| bad("\"k_low\" must be a number"))? as usize,
        );
    }
    if let Some(v) = request.get("loop_mode") {
        let s = v
            .as_str()
            .ok_or_else(|| bad("\"loop_mode\" must be a string"))?;
        config.loop_mode = crate::LoopMode::parse(s).ok_or_else(|| {
            bad("\"loop_mode\" must be one of \"unroll\", \"fixpoint\", \"auto\"")
        })?;
    }
    if let Some(v) = request.get("unroll_budget") {
        config.unroll_budget = Some(
            v.as_f64()
                .ok_or_else(|| bad("\"unroll_budget\" must be a number"))? as u64,
        );
    }
    let mut detail = vec![
        ("func".to_string(), Json::from(func)),
        ("config".to_string(), Json::from(config.label())),
    ];

    if let Some(inputs) = request.get("inputs").and_then(Json::as_arr) {
        // Batch form: the parallel batch engine evaluates all input sets.
        let decoded: Vec<Vec<ArgValue>> = inputs
            .iter()
            .map(|set| {
                set.as_arr()
                    .ok_or_else(|| bad("\"inputs\" entries must be arrays of argument values"))?
                    .iter()
                    .map(|v| decode_arg(v).map_err(|e| (ErrCategory::BadRequest, e)))
                    .collect()
            })
            .collect::<Result<_, EvalError>>()?;
        let threads = match request.get("threads") {
            Some(v) => {
                v.as_f64()
                    .ok_or_else(|| bad("\"threads\" must be a number"))? as usize
            }
            None => 0,
        };
        // SoA lane-group width (0 = per-domain default, 1 = scalar).
        let lanes = match request.get("lanes") {
            Some(v) => v
                .as_f64()
                .ok_or_else(|| bad("\"lanes\" must be a number"))? as usize,
            None => 0,
        };
        let n = decoded.len();
        let req = EvalRequest::new(func, config)
            .with_inputs(decoded)
            .with_batch(crate::BatchOptions::with_threads(threads).with_lanes(lanes));
        let decode_ns = decode_started.elapsed().as_nanos() as u64;
        let exec_started = Stamp::now();
        let result = program
            .eval(&req)
            .map_err(|e| (error_category(&e), e.message().to_string()))?;
        detail.extend([
            ("n".to_string(), Json::from(n)),
            ("threads".to_string(), Json::from(result.batch.threads)),
            ("lanes".to_string(), Json::from(result.batch.lanes)),
            ("decode_ns".to_string(), Json::from(decode_ns)),
            (
                "exec_ns".to_string(),
                Json::from(exec_started.elapsed().as_nanos() as u64),
            ),
        ]);
        let reports: Vec<Json> = result.reports().map(report_json).collect();
        return Ok((
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("config", Json::from(result.config_label.as_str())),
                ("reports", Json::Arr(reports)),
                ("threads", Json::from(result.batch.threads)),
                ("lanes", Json::from(result.batch.lanes)),
            ]),
            detail,
        ));
    }

    let args: Vec<ArgValue> = request
        .get("args")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("eval needs an \"args\" array (or \"inputs\" for a batch)"))?
        .iter()
        .map(|v| decode_arg(v).map_err(|e| (ErrCategory::BadRequest, e)))
        .collect::<Result<_, EvalError>>()?;
    let req = EvalRequest::new(func, config).with_args(args);
    let decode_ns = decode_started.elapsed().as_nanos() as u64;
    let exec_started = Stamp::now();
    let result = program
        .eval(&req)
        .map_err(|e| (error_category(&e), e.message().to_string()))?;
    detail.extend([
        ("n".to_string(), Json::from(1u64)),
        ("lanes".to_string(), Json::from(1u64)),
        ("decode_ns".to_string(), Json::from(decode_ns)),
        (
            "exec_ns".to_string(),
            Json::from(exec_started.elapsed().as_nanos() as u64),
        ),
    ]);
    let fields = vec![
        ("ok", Json::Bool(true)),
        ("config", Json::from(result.config_label.as_str())),
    ];
    if let Json::Obj(rep) = report_json(result.report()) {
        // Splice the report fields into the top-level response.
        return Ok((
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .chain(rep)
                    .collect(),
            ),
            detail,
        ));
    }
    unreachable!("report_json always returns an object")
}

/// The daemon's `list` response body: artifact name, tool, functions,
/// materialized variants.
pub fn list_response(program: &Program) -> Json {
    let functions = program
        .functions()
        .into_iter()
        .map(Json::from)
        .collect::<Vec<_>>();
    let variants = program
        .variants()
        .into_iter()
        .map(|v| {
            Json::obj(vec![
                ("func", Json::from(v.func.as_str())),
                ("kind", Json::from(v.kind.to_string())),
                ("instrs", Json::from(v.instrs)),
            ])
        })
        .collect::<Vec<_>>();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("name", Json::from(program.name())),
        ("tool", Json::from(program.tool())),
        ("functions", Json::Arr(functions)),
        ("variants", Json::Arr(variants)),
    ])
}

/// Decodes one argument value: tagged object or bare number.
///
/// # Errors
///
/// A message for values that are none of the accepted shapes.
pub fn decode_arg(v: &Json) -> Result<ArgValue, String> {
    if let Some(x) = v.as_f64() {
        return Ok(ArgValue::Float(x));
    }
    if let Some(x) = v.get("float").and_then(Json::as_f64) {
        return Ok(ArgValue::Float(x));
    }
    if let Some(n) = v.get("int").and_then(Json::as_f64) {
        return Ok(ArgValue::Int(n as i64));
    }
    if let Some(xs) = v.get("array").and_then(Json::as_arr) {
        let vals: Vec<f64> = xs
            .iter()
            .map(|x| x.as_f64().ok_or("array elements must be numbers"))
            .collect::<Result<_, _>>()?;
        return Ok(ArgValue::Array(vals));
    }
    Err(format!(
        "bad argument value {v} (want a number, {{\"float\":x}}, {{\"int\":n}}, or {{\"array\":[..]}})"
    ))
}

/// Renders a [`RunReport`] as response JSON.
pub fn report_json(r: &RunReport) -> Json {
    let range = |(lo, hi): (f64, f64)| Json::Arr(vec![Json::Num(lo), Json::Num(hi)]);
    let arrays: Vec<Json> = r
        .arrays
        .iter()
        .map(|(name, ranges)| {
            Json::obj(vec![
                ("name", Json::from(name.as_str())),
                (
                    "ranges",
                    Json::Arr(ranges.iter().map(|&x| range(x)).collect()),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("ret", r.ret.map_or(Json::Null, range)),
        ("arrays", Json::Arr(arrays)),
        ("acc_bits", Json::Num(r.acc_bits)),
        (
            "stats",
            Json::obj(vec![
                ("fp_ops", Json::from(r.stats.fp_ops)),
                ("instrs", Json::from(r.stats.instrs)),
                ("undecided_branches", Json::from(r.stats.undecided_branches)),
                ("fusions", Json::from(r.stats.fusions)),
                ("condensations", Json::from(r.stats.condensations)),
            ]),
        ),
    ])
}
