//! The SafeGen command-line interface: the shape of the paper's artifact.
//!
//! ```text
//! safegen emit    <file.c> [--precision f64|dd|f32] [--k N] [--no-analysis]
//! safegen compile <file.c> -o <prog.sga> [--k N,N,...] [--k-low N,N,...]
//!                 [--no-analysis] [--no-cache]
//! safegen run     <file.c|prog.sga> --fn NAME
//!                 [--config MNEMONIC|ia|ia-dd|unsound]
//!                 [--k N] [--arg X]... [--array "x,y,z"]...
//! safegen serve   <prog.sga|file.c> --socket PATH [--k N,N,...]
//! safegen request --socket PATH <json>
//! safegen stats   --socket PATH [--prom] [--assert-requests N]
//! safegen profile <file.c> <func> [--config MNEMONIC|dda] [--k N]
//!                 [--arg X]... [--int N]... [--array "x,y,z"]...
//! safegen tac     <file.c>
//! safegen ir      <file.c> [--fn NAME] [--passes LIST]
//! safegen fuzz    [--iters N] [--seed S] [--k N] [--out DIR]
//! ```
//!
//! Every subcommand validates its arguments **strictly**: an unknown
//! flag or verb is an error (exit code 2) listing what is valid — a
//! misspelled `--confg` can never silently fall back to defaults.
//!
//! `emit` prints the sound C program (annotated with the max-reuse
//! priorities); `compile` packages the compiled programs as a versioned,
//! content-hashed `.sga` artifact (see `docs/ARTIFACT.md`), consulting
//! the content-addressed compile cache (`SAFEGEN_CACHE_DIR`, default
//! `.safegen-cache/`); `run` executes the function under the chosen
//! numeric configuration and prints the certified ranges — from source,
//! or from a `.sga` artifact with zero recompilation (`--dump-ir` prints
//! the optimized CFG IR to stderr first, source input only); `serve`
//! loads an artifact once and answers evaluation requests over a
//! Unix-domain socket until a shutdown request (the protocol is
//! documented in `safegen_api::serve`); `request` sends one JSON request
//! line to a serving daemon and prints the response; `stats` fetches a
//! live daemon's metrics snapshot (versioned JSON by default, Prometheus
//! text exposition with `--prom`; `--assert-requests N` additionally
//! exits nonzero unless the daemon has served exactly N `eval` requests
//! with a positive latency p50 — the CI smoke gate); `profile` runs the
//! function with symbol tracing and prints the error-attribution table
//! (which source locations the final enclosure width comes from); `tac`
//! shows the three-address form the analysis operates on; `ir` dumps the
//! CFG IR after the pass pipeline (`--passes none` or a comma list like
//! `cse,dce` selects pipelines explicitly); `fuzz` runs the differential
//! soundness fuzzer (generated programs checked against an exact rational
//! oracle, cross-engine invariants and the optimized/unoptimized
//! pass-differential), writing minimized counterexamples under `--out`
//! (default `results/fuzz`) and exiting nonzero if any are found.
//!
//! All subcommands honor `SAFEGEN_TRACE=1` (span timing on stderr),
//! `SAFEGEN_METRICS_OUT=<prefix>` (JSONL event log + summary JSON) and
//! `SAFEGEN_PASSES` (the mid-level pass pipeline: unset/`default`,
//! `none`, or a comma list of `cse`, `copy-prop`, `dce`, `regalloc`).
//!
//! Everything below goes through the stable embedding facade
//! (`safegen_api`) — the CLI is an embedder like any other.

use safegen_api::serve::{request, serve, ServeOptions};
use safegen_api::telemetry;
use safegen_api::{
    ArgValue, BuildOptions, EmitPrecision, Engine, EvalRequest, FuzzOpts, LoopMode, Program,
    RunConfig,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  safegen emit    <file.c> [--precision f64|dd|f32] [--k N] [--no-analysis]
  safegen compile <file.c> -o <prog.sga> [--k N,N,...] [--k-low N,N,...]
                  [--no-analysis] [--no-cache] [--fixpoint]
  safegen run     <file.c|prog.sga> --fn NAME
                  [--config dspv|ssnn|...|ia|ia-dd|unsound]
                  [--k N] [--arg X]... [--int N]... [--array \"x,y,z\"]...
                  [--loop-mode unroll|fixpoint|auto] [--unroll-budget N]
                  [--dump-ir]
  safegen serve   <prog.sga|file.c> --socket PATH [--k N,N,...]
  safegen request --socket PATH <json>
  safegen stats   --socket PATH [--prom] [--assert-requests N]
  safegen profile <file.c> <func> [--config dspv|ssnn|...|dda] [--k N]
                  [--arg X]... [--int N]... [--array \"x,y,z\"]...
  safegen tac     <file.c>
  safegen ir      <file.c> [--fn NAME] [--passes none|default|cse,dce,...]
  safegen fuzz    [--iters N] [--seed S] [--k N] [--out DIR] [--loops]

environment: SAFEGEN_TRACE=1 traces phase timing to stderr;
             SAFEGEN_METRICS_OUT=<prefix> writes <prefix>.jsonl and
             <prefix>.summary.json;
             SAFEGEN_PASSES selects the optimizing pass pipeline
             (unset/default = cse,copy-prop,dce,regalloc; none = off);
             SAFEGEN_CACHE_DIR relocates the compile cache
             (default .safegen-cache/)"
    );
    ExitCode::from(2)
}

/// The strict argument schema of one verb: which flags take a value,
/// which are boolean, and how many positional arguments are accepted.
struct VerbSpec {
    name: &'static str,
    valued: &'static [&'static str],
    boolean: &'static [&'static str],
    /// (min, max) positional count.
    positionals: (usize, usize),
}

/// Every verb the CLI speaks, with its complete flag whitelist. A flag
/// not listed here is an *error*, never silently ignored — smoke tests
/// that misspell a flag must fail loudly, not pass vacuously.
const VERBS: &[VerbSpec] = &[
    VerbSpec {
        name: "emit",
        valued: &["--precision", "--k"],
        boolean: &["--no-analysis"],
        positionals: (1, 1),
    },
    VerbSpec {
        name: "compile",
        valued: &["-o", "--out", "--k", "--k-low"],
        boolean: &["--no-analysis", "--no-cache", "--fixpoint"],
        positionals: (1, 1),
    },
    VerbSpec {
        name: "run",
        valued: &[
            "--fn",
            "--config",
            "--k",
            "--loop-mode",
            "--unroll-budget",
            "--arg",
            "--int",
            "--array",
        ],
        boolean: &["--dump-ir"],
        positionals: (1, 1),
    },
    VerbSpec {
        name: "serve",
        valued: &["--socket", "--k", "--k-low"],
        boolean: &["--no-analysis", "--no-cache", "--fixpoint"],
        positionals: (1, 1),
    },
    VerbSpec {
        name: "request",
        valued: &["--socket"],
        boolean: &[],
        positionals: (1, 1),
    },
    VerbSpec {
        name: "stats",
        valued: &["--socket", "--assert-requests"],
        boolean: &["--prom"],
        positionals: (0, 0),
    },
    VerbSpec {
        name: "profile",
        valued: &["--fn", "--config", "--k", "--arg", "--int", "--array"],
        boolean: &[],
        positionals: (1, 2),
    },
    VerbSpec {
        name: "tac",
        valued: &[],
        boolean: &[],
        positionals: (1, 1),
    },
    VerbSpec {
        name: "ir",
        valued: &["--fn", "--passes"],
        boolean: &[],
        positionals: (1, 1),
    },
    VerbSpec {
        name: "fuzz",
        valued: &["--iters", "--seed", "--k", "--out"],
        boolean: &["--loops"],
        positionals: (0, 0),
    },
];

/// Validates `rest` against the verb's whitelist and returns the
/// positional arguments in order.
///
/// # Errors
///
/// Unknown flags (listing the valid ones), missing flag values, and
/// wrong positional counts.
fn validate(spec: &VerbSpec, rest: &[String]) -> Result<Vec<String>, String> {
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        if spec.valued.contains(&arg) {
            if i + 1 >= rest.len() {
                return Err(format!("flag `{arg}` needs a value"));
            }
            i += 2;
        } else if spec.boolean.contains(&arg) {
            i += 1;
        } else if arg.starts_with("--") || (arg.starts_with('-') && arg.len() == 2 && arg != "-") {
            let mut valid: Vec<&str> = spec
                .valued
                .iter()
                .chain(spec.boolean.iter())
                .copied()
                .collect();
            valid.sort_unstable();
            return Err(if valid.is_empty() {
                format!("`safegen {}` takes no flags, got `{arg}`", spec.name)
            } else {
                format!(
                    "unknown flag `{arg}` for `safegen {}` (valid flags: {})",
                    spec.name,
                    valid.join(", ")
                )
            });
        } else {
            positionals.push(rest[i].clone());
            i += 1;
        }
    }
    let (min, max) = spec.positionals;
    if positionals.len() < min {
        return Err(format!(
            "`safegen {}` needs {min} positional argument(s), got {}",
            spec.name,
            positionals.len()
        ));
    }
    if positionals.len() > max {
        return Err(format!(
            "unexpected extra argument `{}` for `safegen {}`",
            positionals[max], spec.name
        ));
    }
    Ok(positionals)
}

fn main() -> ExitCode {
    telemetry::init_from_env("safegen");
    // One CLI invocation is one request: every span and event the
    // compile/cache/exec paths record during this process carries the
    // same `req` id, exactly like a daemon-side request.
    telemetry::set_request(Some(telemetry::next_request_id()));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some(spec) = VERBS.iter().find(|v| v.name == cmd) else {
        let verbs: Vec<&str> = VERBS.iter().map(|v| v.name).collect();
        eprintln!(
            "safegen: unknown command `{cmd}` (valid commands: {})",
            verbs.join(", ")
        );
        return usage();
    };
    let positionals = match validate(spec, rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("safegen: {e}");
            return usage();
        }
    };
    let code = match cmd.as_str() {
        "emit" => cmd_emit(&positionals, rest),
        "compile" => cmd_compile(&positionals, rest),
        "run" => cmd_run(&positionals, rest),
        "serve" => cmd_serve(&positionals, rest),
        "request" => cmd_request(&positionals, rest),
        "stats" => cmd_stats(rest),
        "profile" => cmd_profile(&positionals, rest),
        "tac" => cmd_tac(&positionals),
        "ir" => cmd_ir(&positionals, rest),
        "fuzz" => cmd_fuzz(rest),
        _ => unreachable!("verb table and dispatch table match"),
    };
    match telemetry::flush() {
        Ok(Some(summary)) => eprintln!("safegen: metrics written ({})", summary.display()),
        Ok(None) => {}
        Err(e) => eprintln!("safegen: failed to write metrics: {e}"),
    }
    telemetry::shutdown();
    code
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn flag_value<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("safegen: {msg}");
    ExitCode::FAILURE
}

fn cmd_emit(positionals: &[String], rest: &[String]) -> ExitCode {
    let path = &positionals[0];
    let src = match read_source(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let precision = match flag_value(rest, "--precision").unwrap_or("f64") {
        "f64" => EmitPrecision::F64,
        "dd" => EmitPrecision::Dd,
        "f32" => EmitPrecision::F32,
        other => return fail(format!("unknown precision `{other}`")),
    };
    let k: usize = match flag_value(rest, "--k").unwrap_or("16").parse() {
        Ok(k) => k,
        Err(e) => return fail(format!("bad --k: {e}")),
    };
    let mut engine = Engine::new();
    if rest.iter().any(|a| a == "--no-analysis") {
        engine = engine.without_analysis();
    }
    match engine.emit_sound_c(&src, precision, k) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// Parses a comma-separated `usize` list flag, e.g. `--k 8,16,32`.
fn parse_list(rest: &[String], name: &str) -> Result<Option<Vec<usize>>, String> {
    match flag_value(rest, name) {
        None => Ok(None),
        Some(v) => v
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<Vec<_>, _>>()
            .map(Some)
            .map_err(|e| format!("bad {name} `{v}`: {e}")),
    }
}

/// Builds `BuildOptions` from the shared `compile`/`serve` flags.
fn build_options(path: &str, rest: &[String]) -> Result<BuildOptions, String> {
    let mut opts = BuildOptions::new(path);
    if let Some(ks) = parse_list(rest, "--k")? {
        opts.ks = ks;
    }
    if let Some(k_lows) = parse_list(rest, "--k-low")? {
        opts.k_lows = k_lows;
    }
    opts.analysis = !rest.iter().any(|a| a == "--no-analysis");
    opts.use_cache = !rest.iter().any(|a| a == "--no-cache");
    opts.fixpoint = rest.iter().any(|a| a == "--fixpoint");
    Ok(opts)
}

fn cmd_compile(positionals: &[String], rest: &[String]) -> ExitCode {
    let path = &positionals[0];
    let Some(out) = flag_value(rest, "-o").or_else(|| flag_value(rest, "--out")) else {
        return fail("-o <prog.sga> is required");
    };
    let src = match read_source(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let opts = match build_options(path, rest) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let (program, cache_hit) = match Engine::new().compile_artifact(&src, &opts) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    if let Err(e) = program.write_file(std::path::Path::new(out)) {
        return fail(e);
    }
    eprintln!(
        "safegen: wrote {out} ({} program variant(s), id {}{})",
        program.variants().len(),
        &program.artifact_id()[..16],
        if cache_hit { ", compile cache hit" } else { "" }
    );
    ExitCode::SUCCESS
}

/// Loads a program for `serve`: directly from `.sga`, or by compiling a
/// `.c` source to its fixed artifact form (through the compile cache).
fn load_or_compile(path: &str, rest: &[String]) -> Result<Program, String> {
    let engine = Engine::new();
    if path.ends_with(".sga") {
        return engine
            .load_file(std::path::Path::new(path))
            .map_err(|e| e.to_string());
    }
    let src = read_source(path)?;
    let opts = build_options(path, rest)?;
    engine
        .compile_artifact(&src, &opts)
        .map(|(p, _)| p)
        .map_err(|e| e.to_string())
}

fn cmd_serve(positionals: &[String], rest: &[String]) -> ExitCode {
    let path = &positionals[0];
    let Some(socket) = flag_value(rest, "--socket") else {
        return fail("--socket PATH is required");
    };
    let program = match load_or_compile(path, rest) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    eprintln!(
        "safegen: serving `{}` ({} program variant(s)) on {socket}",
        program.name(),
        program.variants().len()
    );
    let opts = ServeOptions::new(socket);
    match serve(program, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

fn cmd_request(positionals: &[String], rest: &[String]) -> ExitCode {
    let Some(socket) = flag_value(rest, "--socket") else {
        return fail("--socket PATH is required");
    };
    let body = match telemetry::json::parse(&positionals[0]) {
        Ok(v) => v,
        Err(e) => return fail(format!("bad request JSON: {e}")),
    };
    match request(std::path::Path::new(socket), &body) {
        Ok(resp) => {
            println!("{resp}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// Reads a numeric field out of a metrics snapshot by path, failing
/// loudly when the snapshot shape is not what this binary expects (a
/// version skew between client and daemon should be an error, never a
/// silently-passed assertion).
fn snapshot_num(stats: &telemetry::json::Json, path: &[&str]) -> Result<f64, String> {
    let mut node = stats;
    for key in path {
        node = node
            .get(key)
            .ok_or_else(|| format!("snapshot is missing `{}`", path.join(".")))?;
    }
    node.as_f64()
        .ok_or_else(|| format!("snapshot field `{}` is not a number", path.join(".")))
}

fn cmd_stats(rest: &[String]) -> ExitCode {
    let Some(socket) = flag_value(rest, "--socket") else {
        return fail("--socket PATH is required");
    };
    let body = telemetry::json::Json::obj(vec![("op", telemetry::json::Json::from("stats"))]);
    let resp = match request(std::path::Path::new(socket), &body) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    if resp.get("error").is_some() {
        return fail(format!("daemon error: {resp}"));
    }
    let Some(stats) = resp.get("stats") else {
        return fail(format!("response has no `stats` field: {resp}"));
    };
    // Validate the snapshot version before trusting any field in it.
    match stats.get("version").and_then(|v| v.as_str()) {
        Some(v) if v == telemetry::metrics::SNAPSHOT_VERSION => {}
        Some(v) => {
            return fail(format!(
                "snapshot version `{v}` (this binary speaks `{}`)",
                telemetry::metrics::SNAPSHOT_VERSION
            ))
        }
        None => return fail("snapshot has no `version` field"),
    }
    if rest.iter().any(|a| a == "--prom") {
        match telemetry::metrics::prometheus_text(stats) {
            Ok(text) => print!("{text}"),
            Err(e) => return fail(e),
        }
    } else {
        println!("{stats}");
    }
    if let Some(n) = flag_value(rest, "--assert-requests") {
        let want: f64 = match n.parse() {
            Ok(n) => n,
            Err(e) => return fail(format!("bad --assert-requests `{n}`: {e}")),
        };
        let evals = match snapshot_num(stats, &["serve", "requests", "eval"]) {
            Ok(v) => v,
            Err(e) => return fail(e),
        };
        let p50 = match snapshot_num(stats, &["serve", "latency_ns", "p50"]) {
            Ok(v) => v,
            Err(e) => return fail(e),
        };
        if evals != want {
            return fail(format!(
                "assertion failed: daemon served {evals} eval request(s), expected {want}"
            ));
        }
        if p50 <= 0.0 {
            return fail(format!(
                "assertion failed: latency p50 is {p50}, expected > 0"
            ));
        }
        eprintln!("safegen: stats assertion passed ({evals} eval request(s), p50 {p50} ns)");
    }
    ExitCode::SUCCESS
}

fn cmd_tac(positionals: &[String]) -> ExitCode {
    let path = &positionals[0];
    let src = match read_source(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let program = match Engine::new().compile(&src, path) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    match program.tac_text() {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_ir(positionals: &[String], rest: &[String]) -> ExitCode {
    let path = &positionals[0];
    let src = match read_source(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let mut engine = Engine::new();
    if let Some(list) = flag_value(rest, "--passes") {
        match engine.with_pass_spec(list) {
            Ok(e) => engine = e,
            Err(e) => return fail(e),
        }
    }
    let program = match engine.compile(&src, path) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    match program.ir_text(flag_value(rest, "--fn")) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// Parses `--arg X`, `--int N`, `--array "x,y,z"` flags in command-line
/// order into VM argument values.
fn parse_args(rest: &[String]) -> Result<Vec<ArgValue>, String> {
    let mut args: Vec<ArgValue> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--arg" => {
                let v = rest.get(i + 1).ok_or("--arg needs a value")?;
                let x = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --arg `{v}`: {e}"))?;
                args.push(ArgValue::Float(x));
                i += 2;
            }
            "--int" => {
                let v = rest.get(i + 1).ok_or("--int needs a value")?;
                let x = v
                    .parse::<i64>()
                    .map_err(|e| format!("bad --int `{v}`: {e}"))?;
                args.push(ArgValue::Int(x));
                i += 2;
            }
            "--array" => {
                let v = rest.get(i + 1).ok_or("--array needs a value")?;
                let xs: Vec<f64> = v
                    .split(',')
                    .map(|s| s.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --array `{v}`: {e}"))?;
                args.push(ArgValue::Array(xs));
                i += 2;
            }
            _ => i += 1,
        }
    }
    Ok(args)
}

fn cmd_run(positionals: &[String], rest: &[String]) -> ExitCode {
    let path = &positionals[0];
    let Some(func) = flag_value(rest, "--fn") else {
        return fail("--fn NAME is required");
    };
    let k: usize = match flag_value(rest, "--k").unwrap_or("16").parse() {
        Ok(k) => k,
        Err(e) => return fail(format!("bad --k: {e}")),
    };
    let mut config = match RunConfig::from_cli(flag_value(rest, "--config").unwrap_or("dspv"), k) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    if let Some(mode) = flag_value(rest, "--loop-mode") {
        match LoopMode::parse(mode) {
            Some(m) => config = config.with_loop_mode(m),
            None => {
                return fail(format!(
                    "bad --loop-mode `{mode}` (expected unroll, fixpoint, or auto)"
                ))
            }
        }
    }
    if let Some(budget) = flag_value(rest, "--unroll-budget") {
        match budget.parse::<u64>() {
            Ok(b) => config = config.with_unroll_budget(b),
            Err(e) => return fail(format!("bad --unroll-budget: {e}")),
        }
    }

    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };

    let engine = Engine::new();
    let program = if path.ends_with(".sga") {
        // Artifact input: strictly validate, select, execute — no
        // front-end or mid-end work at all.
        match engine.load_file(std::path::Path::new(path)) {
            Ok(p) => p,
            Err(e) => return fail(e),
        }
    } else {
        let src = match read_source(path) {
            Ok(s) => s,
            Err(e) => return fail(e),
        };
        match engine.compile(&src, path) {
            Ok(p) => p,
            Err(e) => return fail(e),
        }
    };
    if rest.iter().any(|a| a == "--dump-ir") {
        match program.ir_text(Some(func)) {
            Ok(text) => eprint!("{text}"),
            Err(e) => return fail(e),
        }
    }
    let result = match program.eval(&EvalRequest::new(func, config.clone()).with_args(args)) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let report = result.report();

    println!("configuration: {}", result.config_label);
    if let Some((lo, hi)) = report.ret {
        println!("return ∈ [{lo:.17e}, {hi:.17e}]");
    }
    for (name, ranges) in &report.arrays {
        for (i, (lo, hi)) in ranges.iter().enumerate() {
            println!("{name}[{i}] ∈ [{lo:.17e}, {hi:.17e}]");
        }
    }
    if report.acc_bits.is_nan() {
        println!("certified bits: n/a (no floating results)");
    } else {
        println!(
            "certified bits (worst result): {:.1}",
            report.acc_bits.max(f64::NEG_INFINITY)
        );
    }
    if report.stats.fixpoint_loops > 0 {
        println!(
            "fixpoint: {} loop(s) solved in {} iteration(s), {} widening(s), {} narrowing(s)",
            report.stats.fixpoint_loops,
            report.stats.fixpoint_iters,
            report.stats.widenings,
            report.stats.narrowings
        );
    }
    if report.stats.undecided_branches > 0 {
        println!(
            "note: {} branch decision(s) were not soundly determined",
            report.stats.undecided_branches
        );
    }
    ExitCode::SUCCESS
}

fn cmd_profile(positionals: &[String], rest: &[String]) -> ExitCode {
    let path = &positionals[0];
    let src = match read_source(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    // The function is the second positional argument (with --fn accepted
    // as an alias for symmetry with `run`).
    let Some(func) = positionals
        .get(1)
        .map(String::as_str)
        .or_else(|| flag_value(rest, "--fn"))
    else {
        return fail("usage: safegen profile <file.c> <func> [...]");
    };
    let k: usize = match flag_value(rest, "--k").unwrap_or("16").parse() {
        Ok(k) => k,
        Err(e) => return fail(format!("bad --k: {e}")),
    };
    let config = match flag_value(rest, "--config").unwrap_or("dspv") {
        "dda" => RunConfig::affine_dd(k),
        m => match RunConfig::mnemonic(k, m) {
            Ok(c) => c,
            Err(e) => return fail(format!("{e} (profiling needs an affine configuration)")),
        },
    };

    let program = match Engine::new().compile(&src, path) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let mut args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    if args.is_empty() {
        let named = match program.default_args(func, &config) {
            Ok(n) => n,
            Err(e) => return fail(e),
        };
        let shown: Vec<String> = named
            .iter()
            .map(|(name, a)| match a {
                ArgValue::Float(x) => format!("{name}={x}"),
                ArgValue::Int(n) => format!("{name}={n}"),
                ArgValue::Array(xs) => format!("{name}=[{} values]", xs.len()),
            })
            .collect();
        eprintln!(
            "safegen: no inputs given, using defaults: {}",
            shown.join(", ")
        );
        args = named.into_iter().map(|(_, a)| a).collect();
    }

    let report = match program.profile(func, &args, &config) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    print!("{}", report.render());
    if telemetry::enabled() {
        telemetry::record("profile", vec![("report", report.to_json())]);
    }
    ExitCode::SUCCESS
}

/// Parses a seed, accepting both decimal and `0x`-prefixed hex.
fn parse_seed(s: &str) -> Result<u64, String> {
    let (digits, radix) = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => (hex, 16),
        None => (s, 10),
    };
    u64::from_str_radix(digits, radix).map_err(|e| format!("bad --seed `{s}`: {e}"))
}

fn cmd_fuzz(rest: &[String]) -> ExitCode {
    let mut opts = FuzzOpts::default();
    if let Some(v) = flag_value(rest, "--iters") {
        match v.parse() {
            Ok(n) => opts.iters = n,
            Err(e) => return fail(format!("bad --iters `{v}`: {e}")),
        }
    }
    if let Some(v) = flag_value(rest, "--seed") {
        match parse_seed(v) {
            Ok(s) => opts.seed = s,
            Err(e) => return fail(e),
        }
    }
    if let Some(v) = flag_value(rest, "--k") {
        match v.parse() {
            Ok(k) => opts.k = k,
            Err(e) => return fail(format!("bad --k `{v}`: {e}")),
        }
    }
    if let Some(v) = flag_value(rest, "--out") {
        opts.out_dir = v.into();
    }
    if rest.iter().any(|a| a == "--loops") {
        opts.loop_weight = 4;
    }
    let summary = match safegen_api::run_fuzz(&opts) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    println!("{}", summary.render());
    if summary.counterexamples.is_empty() {
        ExitCode::SUCCESS
    } else {
        for cex in &summary.counterexamples {
            eprintln!(
                "safegen: counterexample (iter {}, fn {}, kind {}): {}",
                cex.iter,
                cex.func,
                cex.kind,
                cex.path.display()
            );
        }
        eprintln!(
            "safegen: replay with `safegen fuzz --seed {:#x} --iters {}`",
            opts.seed, opts.iters
        );
        ExitCode::FAILURE
    }
}
