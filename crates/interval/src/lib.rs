//! # safegen-interval
//!
//! Sound interval arithmetic (IA) — the substrate of the IGen baseline the
//! paper compares against (Sec. II-A, II-C, VII-B).
//!
//! An interval `[lo, hi]` represents every real number between its bounds;
//! every operation rounds the lower endpoint towards `−∞` and the upper
//! endpoint towards `+∞` (via [`safegen_fpcore::round`]), so the exact real
//! result of a computation is always contained in the result interval.
//!
//! Two precisions are provided, matching IGen's `f64` and double-double
//! output modes:
//!
//! * [`IntervalF64`] — endpoints are `f64` (IGen-f64).
//! * [`IntervalDd`] — endpoints are [`Dd`] double-doubles (IGen-dd).
//!
//! IA is cheap but suffers from the *dependency problem*: it cannot track
//! correlations, so `x - x` over `[0,1]` yields `[-1,1]`, not `0`. Affine
//! arithmetic (crate `safegen-affine`) exists to fix exactly this.
//!
//! ```
//! use safegen_interval::IntervalF64;
//!
//! let x = IntervalF64::new(0.0, 1.0);
//! let d = x - x; // the dependency problem: IA cannot see the correlation
//! assert_eq!(d.lo(), -1.0);
//! assert_eq!(d.hi(), 1.0);
//! ```

pub mod cols;
mod dd_interval;
mod f64_interval;

pub use dd_interval::IntervalDd;
pub use f64_interval::IntervalF64;

pub use safegen_fpcore::Dd;
