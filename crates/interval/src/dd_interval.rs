//! Double-double precision intervals (the `IGen-dd` baseline).

use safegen_fpcore::metrics::{acc_bits, DD_MANTISSA_BITS};
use safegen_fpcore::Dd;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A closed interval with double-double endpoints: ~106 bits of endpoint
/// precision, the `IGen-dd` configuration of the paper's IA baseline.
///
/// Endpoint operations use the widened directed double-double operations of
/// [`safegen_fpcore::dd`], so soundness holds under the published dd error
/// bounds.
///
/// ```
/// use safegen_interval::{Dd, IntervalDd};
/// let a = IntervalDd::point(Dd::from(0.1));
/// let b = IntervalDd::point(Dd::from(0.2));
/// let s = a + b;
/// assert!(s.width_f64() < 1e-30);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalDd {
    lo: Dd,
    hi: Dd,
}

impl IntervalDd {
    /// The point interval `[0, 0]`.
    pub const ZERO: IntervalDd = IntervalDd {
        lo: Dd::ZERO,
        hi: Dd::ZERO,
    };

    /// The full real line.
    pub fn entire() -> IntervalDd {
        IntervalDd {
            lo: Dd::from(f64::NEG_INFINITY),
            hi: Dd::from(f64::INFINITY),
        }
    }

    /// Creates an interval from its endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn new(lo: Dd, hi: Dd) -> IntervalDd {
        assert!(
            lo <= hi || lo.partial_cmp(&hi).is_none(),
            "invalid interval [{lo}, {hi}]"
        );
        IntervalDd { lo, hi }
    }

    /// A point interval.
    #[inline]
    pub fn point(x: Dd) -> IntervalDd {
        IntervalDd { lo: x, hi: x }
    }

    /// Sound enclosure of a decimal constant stored as `f64`, `x ± 1 ulp`.
    #[inline]
    pub fn constant(x: f64) -> IntervalDd {
        let u = safegen_fpcore::metrics::ulp(x);
        IntervalDd {
            lo: Dd::from(x).add_rd(Dd::from(-u)),
            hi: Dd::from(x).add_ru(Dd::from(u)),
        }
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(self) -> Dd {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(self) -> Dd {
        self.hi
    }

    /// Approximate width as `f64` (round-to-nearest dd subtraction; a
    /// display/comparison metric, not a sound bound).
    #[inline]
    pub fn width_f64(self) -> f64 {
        (self.hi - self.lo).hi()
    }

    /// True if the dd value lies inside the interval.
    #[inline]
    pub fn contains(self, x: Dd) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// True if either endpoint is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.lo.is_nan() || self.hi.is_nan()
    }

    /// Least upper bound (convex hull) — the dd counterpart of
    /// [`crate::IntervalF64::join`]. Endpoint selection is exact.
    #[inline]
    pub fn join(self, other: IntervalDd) -> IntervalDd {
        let lo = if other.lo < self.lo {
            other.lo
        } else {
            self.lo
        };
        let hi = if other.hi > self.hi {
            other.hi
        } else {
            self.hi
        };
        IntervalDd { lo, hi }
    }

    /// Intersection, or `None` when the intervals are disjoint. NaN
    /// operands yield `None`.
    #[inline]
    pub fn meet(self, other: IntervalDd) -> Option<IntervalDd> {
        let lo = if other.lo > self.lo {
            other.lo
        } else {
            self.lo
        };
        let hi = if other.hi < self.hi {
            other.hi
        } else {
            self.hi
        };
        (lo <= hi).then_some(IntervalDd { lo, hi })
    }

    /// Standard widening: any endpoint that grew from `self` to `next`
    /// jumps to ±∞, so ascending chains stabilize in at most two
    /// applications. The result encloses `self.join(next)`; NaN operands
    /// widen to [`IntervalDd::entire`].
    #[inline]
    pub fn widen(self, next: IntervalDd) -> IntervalDd {
        if self.is_nan() || next.is_nan() {
            return IntervalDd::entire();
        }
        IntervalDd {
            lo: if next.lo < self.lo {
                Dd::from(f64::NEG_INFINITY)
            } else {
                self.lo
            },
            hi: if next.hi > self.hi {
                Dd::from(f64::INFINITY)
            } else {
                self.hi
            },
        }
    }

    /// Standard narrowing: each infinite endpoint of `self` is replaced
    /// by the corresponding endpoint of the re-verified candidate
    /// `cand`; finite endpoints are kept.
    #[inline]
    pub fn narrow(self, cand: IntervalDd) -> IntervalDd {
        let lo = if self.lo.hi() == f64::NEG_INFINITY {
            cand.lo
        } else {
            self.lo
        };
        let hi = if self.hi.hi() == f64::INFINITY {
            cand.hi
        } else {
            self.hi
        };
        if lo <= hi || lo.partial_cmp(&hi).is_none() {
            IntervalDd { lo, hi }
        } else {
            self
        }
    }

    /// Sound square root (lower endpoint clamped at zero).
    pub fn sqrt(self) -> IntervalDd {
        if self.hi < Dd::ZERO {
            return IntervalDd {
                lo: Dd::from(f64::NAN),
                hi: Dd::from(f64::NAN),
            };
        }
        let lo = if self.lo <= Dd::ZERO {
            Dd::ZERO
        } else {
            self.lo.sqrt_rd()
        };
        IntervalDd {
            lo,
            hi: self.hi.sqrt_ru(),
        }
    }

    /// Absolute value.
    pub fn abs(self) -> IntervalDd {
        if self.lo >= Dd::ZERO {
            self
        } else if self.hi <= Dd::ZERO {
            -self
        } else {
            let m = if -self.lo > self.hi {
                -self.lo
            } else {
                self.hi
            };
            IntervalDd {
                lo: Dd::ZERO,
                hi: m,
            }
        }
    }

    /// Certified bits at dd precision (106 mantissa bits), measured on the
    /// `f64` projections of the endpoints with a dd width correction.
    ///
    /// The float-counting metric of the paper is defined on `f64`; for dd
    /// results we report `106 − log2(width / ulp_dd)` analogously, computed
    /// from the dd width relative to the magnitude.
    pub fn acc_bits(self) -> f64 {
        if self.is_nan() || !self.lo.is_finite() || !self.hi.is_finite() {
            return f64::NEG_INFINITY;
        }
        let w = (self.hi - self.lo).abs();
        if w == Dd::ZERO {
            return DD_MANTISSA_BITS as f64;
        }
        let mag = self
            .lo
            .abs()
            .hi()
            .max(self.hi.abs().hi())
            .max(f64::MIN_POSITIVE);
        // Number of dd-representable steps in the range ≈ w / (mag * 2^-106).
        let steps = w.hi() / (mag * 2f64.powi(-(DD_MANTISSA_BITS as i32)));
        DD_MANTISSA_BITS as f64 - steps.max(1.0).log2()
    }

    /// Certified bits at `f64` precision, for comparing against f64
    /// configurations on the same axis (as Fig. 9 does for IGen-dd).
    pub fn acc_bits_f64(self) -> f64 {
        // Round endpoints outward to f64 before counting.
        let lo = if Dd::from(self.lo.hi()) <= self.lo {
            self.lo.hi()
        } else {
            self.lo.hi().next_down()
        };
        let hi = if Dd::from(self.hi.hi()) >= self.hi {
            self.hi.hi()
        } else {
            self.hi.hi().next_up()
        };
        acc_bits(lo, hi, safegen_fpcore::F64_MANTISSA_BITS)
    }
}

impl From<f64> for IntervalDd {
    #[inline]
    fn from(x: f64) -> IntervalDd {
        IntervalDd::point(Dd::from(x))
    }
}

impl Default for IntervalDd {
    fn default() -> Self {
        IntervalDd::ZERO
    }
}

impl Neg for IntervalDd {
    type Output = IntervalDd;
    #[inline]
    fn neg(self) -> IntervalDd {
        IntervalDd {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl Add for IntervalDd {
    type Output = IntervalDd;
    #[inline]
    fn add(self, rhs: IntervalDd) -> IntervalDd {
        IntervalDd {
            lo: self.lo.add_rd(rhs.lo),
            hi: self.hi.add_ru(rhs.hi),
        }
    }
}

impl Sub for IntervalDd {
    type Output = IntervalDd;
    #[inline]
    fn sub(self, rhs: IntervalDd) -> IntervalDd {
        IntervalDd {
            lo: self.lo.add_rd(-rhs.hi),
            hi: self.hi.add_ru(-rhs.lo),
        }
    }
}

impl Mul for IntervalDd {
    type Output = IntervalDd;
    #[inline]
    fn mul(self, rhs: IntervalDd) -> IntervalDd {
        let (a, b, c, d) = (self.lo, self.hi, rhs.lo, rhs.hi);
        let cands_lo = [a.mul_rd(c), a.mul_rd(d), b.mul_rd(c), b.mul_rd(d)];
        let cands_hi = [a.mul_ru(c), a.mul_ru(d), b.mul_ru(c), b.mul_ru(d)];
        let mut lo = cands_lo[0];
        let mut hi = cands_hi[0];
        for i in 1..4 {
            if cands_lo[i] < lo {
                lo = cands_lo[i];
            }
            if cands_hi[i] > hi {
                hi = cands_hi[i];
            }
        }
        IntervalDd { lo, hi }
    }
}

impl Div for IntervalDd {
    type Output = IntervalDd;
    #[inline]
    fn div(self, rhs: IntervalDd) -> IntervalDd {
        if rhs.lo <= Dd::ZERO && rhs.hi >= Dd::ZERO {
            return IntervalDd::entire();
        }
        let (a, b, c, d) = (self.lo, self.hi, rhs.lo, rhs.hi);
        let cands_lo = [a.div_rd(c), a.div_rd(d), b.div_rd(c), b.div_rd(d)];
        let cands_hi = [a.div_ru(c), a.div_ru(d), b.div_ru(c), b.div_ru(d)];
        let mut lo = cands_lo[0];
        let mut hi = cands_hi[0];
        for i in 1..4 {
            if cands_lo[i] < lo {
                lo = cands_lo[i];
            }
            if cands_hi[i] > hi {
                hi = cands_hi[i];
            }
        }
        IntervalDd { lo, hi }
    }
}

impl fmt::Display for IntervalDd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_contains() {
        let x = IntervalDd::point(Dd::from(2.0));
        assert!(x.contains(Dd::from(2.0)));
        assert_eq!(x.width_f64(), 0.0);
    }

    #[test]
    fn add_is_much_tighter_than_f64() {
        let a = IntervalDd::point(Dd::from(0.1));
        let b = IntervalDd::point(Dd::from(0.2));
        let s = a + b;
        assert!(s.contains(Dd::from(0.1) + Dd::from(0.2)));
        assert!(s.width_f64() < 1e-30);
    }

    #[test]
    fn sub_soundness() {
        let a = IntervalDd::new(Dd::from(1.0), Dd::from(2.0));
        let d = a - a;
        assert!(d.contains(Dd::ZERO));
        // Dependency problem persists in IA even at dd precision.
        assert!(d.lo() <= Dd::from(-1.0) && d.hi() >= Dd::from(1.0));
    }

    #[test]
    fn mul_soundness() {
        let a = IntervalDd::constant(0.1);
        let p = a * a;
        let exact = Dd::from(0.1) * Dd::from(0.1);
        assert!(p.contains(exact));
    }

    #[test]
    fn mul_sign_cases() {
        let a = IntervalDd::new(Dd::from(-2.0), Dd::from(3.0));
        let b = IntervalDd::new(Dd::from(-5.0), Dd::from(4.0));
        let p = a * b;
        assert!(p.contains(Dd::from(-15.0)) && p.contains(Dd::from(12.0)));
    }

    #[test]
    fn div_soundness() {
        let a = IntervalDd::point(Dd::from(1.0));
        let b = IntervalDd::point(Dd::from(3.0));
        let q = a / b;
        assert!(q.contains(Dd::ONE / Dd::from(3.0)));
        assert!(q.width_f64() < 1e-30);
    }

    #[test]
    fn div_through_zero_is_entire() {
        let q = IntervalDd::point(Dd::ONE) / IntervalDd::new(Dd::from(-1.0), Dd::from(1.0));
        assert!(!q.lo().is_finite() && !q.hi().is_finite());
    }

    #[test]
    fn sqrt_soundness() {
        let r = IntervalDd::point(Dd::from(2.0)).sqrt();
        assert!(r.contains(Dd::from(2.0).sqrt()));
        assert!(r.width_f64() < 1e-30);
        assert!(r.width_f64() > 0.0);
    }

    #[test]
    fn constant_contains_true_decimal() {
        // The true real 0.1 differs from the f64 0.1; the ±1ulp enclosure
        // must contain it. Approximate the true value as dd.
        let true_tenth = Dd::ONE / Dd::from(10.0);
        assert!(IntervalDd::constant(0.1).contains(true_tenth));
    }

    #[test]
    fn accuracy_metric_sane() {
        let p = IntervalDd::point(Dd::from(1.5));
        assert_eq!(p.acc_bits(), 106.0);
        assert_eq!(p.acc_bits_f64(), 53.0);
        let wide = IntervalDd::new(Dd::from(1.0), Dd::from(2.0));
        assert!(wide.acc_bits() < 10.0);
        assert!(!IntervalDd::entire().acc_bits().is_finite());
    }

    #[test]
    fn abs_cases() {
        let a = IntervalDd::new(Dd::from(-3.0), Dd::from(2.0)).abs();
        assert_eq!(a.lo(), Dd::ZERO);
        assert_eq!(a.hi(), Dd::from(3.0));
    }

    #[test]
    fn widen_dominates_join_and_chains_stabilize() {
        // Soundness: the widened interval encloses the join, including
        // when the growth sits entirely in the dd tail (below one f64
        // ulp) — exactly the creep plain f64 widening cannot see.
        let a = IntervalDd::new(Dd::ZERO, Dd::ONE);
        let tail_grow = IntervalDd::new(Dd::ZERO, Dd::ONE + Dd::from(1e-40));
        let j = a.join(tail_grow);
        let w = a.widen(tail_grow);
        assert!(w.lo <= j.lo && j.hi <= w.hi);
        assert_eq!(w.hi.hi(), f64::INFINITY, "tail-only growth must widen");

        // Termination: each endpoint moves at most once, so any chain is
        // stable after two applications.
        let mut inv = IntervalDd::new(Dd::from(-1.0), Dd::ONE);
        let mut grow = Dd::ONE;
        for step in 0..8 {
            let next = IntervalDd::new(Dd::ZERO - grow, grow + grow);
            let widened = inv.widen(next);
            if step >= 2 {
                assert_eq!(
                    (widened.lo.hi(), widened.hi.hi()),
                    (inv.lo.hi(), inv.hi.hi()),
                    "dd widening chain did not stabilize"
                );
            }
            inv = widened;
            grow = grow * Dd::from(10.0);
        }
    }

    #[test]
    fn narrow_recovers_infinite_endpoints_only() {
        let widened = IntervalDd::entire();
        let cand = IntervalDd::new(Dd::from(-2.0), Dd::from(5.0));
        let n = widened.narrow(cand);
        assert_eq!((n.lo.hi(), n.hi.hi()), (-2.0, 5.0));
        // A finite endpoint is pinned even against a tighter candidate.
        let half = IntervalDd::new(Dd::from(-1.0), Dd::from(f64::INFINITY));
        let n = half.narrow(IntervalDd::new(Dd::ZERO, Dd::from(3.0)));
        assert_eq!((n.lo.hi(), n.hi.hi()), (-1.0, 3.0));
    }
}
