//! Double-precision intervals (the `IGen-f64` baseline).

use safegen_fpcore::metrics::{acc_bits, err_bits, ulp, F64_MANTISSA_BITS};
use safegen_fpcore::round::{
    add_rd, add_ru, div_rd, div_ru, mul_rd, mul_ru, sqrt_rd, sqrt_ru, sub_rd, sub_ru,
};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` of `f64` endpoints, guaranteed to contain
/// the exact real result of the computation that produced it.
///
/// Empty intervals are not representable; operations keep `lo <= hi` (or
/// produce NaN endpoints, which poison everything downstream — matching the
/// paper's NaN convention that the value "can be anything").
///
/// ```
/// use safegen_interval::IntervalF64;
/// let a = IntervalF64::from(0.1);
/// let b = IntervalF64::from(0.2);
/// let s = a + b;
/// assert!(s.lo() <= 0.30000000000000004 && 0.30000000000000004 <= s.hi());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalF64 {
    pub(crate) lo: f64,
    pub(crate) hi: f64,
}

impl IntervalF64 {
    /// The point interval `[0, 0]`.
    pub const ZERO: IntervalF64 = IntervalF64 { lo: 0.0, hi: 0.0 };
    /// The full real line, `[-∞, +∞]`.
    pub const ENTIRE: IntervalF64 = IntervalF64 {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates an interval from its endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (NaN endpoints are allowed and poison results).
    #[inline]
    pub fn new(lo: f64, hi: f64) -> IntervalF64 {
        assert!(
            lo <= hi || lo.partial_cmp(&hi).is_none(),
            "invalid interval [{lo}, {hi}]"
        );
        IntervalF64 { lo, hi }
    }

    /// A point interval `[x, x]`.
    #[inline]
    pub fn point(x: f64) -> IntervalF64 {
        IntervalF64 { lo: x, hi: x }
    }

    /// The interval for a program constant that may not be exactly
    /// representable: `x ± 1 ulp(x)`, as SafeGen converts constants
    /// (Sec. IV-B). Exact integers should use [`IntervalF64::point`].
    #[inline]
    pub fn constant(x: f64) -> IntervalF64 {
        let u = ulp(x);
        IntervalF64 {
            lo: sub_rd(x, u),
            hi: add_ru(x, u),
        }
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Midpoint (not necessarily contained exactly; for display).
    #[inline]
    pub fn mid(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Width `hi - lo`, rounded up.
    #[inline]
    pub fn width(self) -> f64 {
        sub_ru(self.hi, self.lo)
    }

    /// True if `x` lies inside the interval.
    #[inline]
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// True if `other` is entirely inside `self`.
    #[inline]
    pub fn encloses(self, other: IntervalF64) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// True if either endpoint is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.lo.is_nan() || self.hi.is_nan()
    }

    /// Convex hull of two intervals.
    #[inline]
    pub fn hull(self, other: IntervalF64) -> IntervalF64 {
        IntervalF64 {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Least upper bound in the interval lattice — an alias for
    /// [`IntervalF64::hull`], under the name the fixpoint engine uses.
    /// Endpoint selection is exact: no rounding is involved, so joining
    /// intervals with subnormal or near-overflow endpoints loses nothing.
    #[inline]
    pub fn join(self, other: IntervalF64) -> IntervalF64 {
        self.hull(other)
    }

    /// Intersection, or `None` when the intervals are disjoint (the
    /// empty interval is not representable). NaN operands yield `None`.
    #[inline]
    pub fn meet(self, other: IntervalF64) -> Option<IntervalF64> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(IntervalF64 { lo, hi })
    }

    /// Standard interval widening: `self` is the previous invariant
    /// candidate, `next` the newly observed states. Any endpoint that
    /// grew jumps straight to ±∞, so an ascending chain stabilizes after
    /// at most two applications (each endpoint widens at most once).
    /// The result always encloses `self.join(next)`. NaN endpoints
    /// widen to [`IntervalF64::ENTIRE`].
    #[inline]
    pub fn widen(self, next: IntervalF64) -> IntervalF64 {
        if self.is_nan() || next.is_nan() {
            return IntervalF64::ENTIRE;
        }
        IntervalF64 {
            lo: if next.lo < self.lo {
                f64::NEG_INFINITY
            } else {
                self.lo
            },
            hi: if next.hi > self.hi {
                f64::INFINITY
            } else {
                self.hi
            },
        }
    }

    /// Threshold widening: like [`IntervalF64::widen`] but a growing
    /// endpoint first snaps outward to the nearest rung of `thresholds`
    /// (an ascending ladder of positive magnitudes, applied symmetrically
    /// with sign), and only jumps to ±∞ beyond the last rung. The
    /// fixpoint engine uses a power-of-two ladder so slowly-creeping
    /// accumulators stabilize at a finite bound narrowing can recover
    /// from, instead of being widened into an unrecoverable infinity.
    pub fn widen_threshold(self, next: IntervalF64, thresholds: &[f64]) -> IntervalF64 {
        if self.is_nan() || next.is_nan() {
            return IntervalF64::ENTIRE;
        }
        let snap_up = |x: f64| {
            thresholds
                .iter()
                .copied()
                .find(|&t| t >= x)
                .unwrap_or(f64::INFINITY)
        };
        IntervalF64 {
            lo: if next.lo < self.lo {
                -snap_up(-next.lo)
            } else {
                self.lo
            },
            hi: if next.hi > self.hi {
                snap_up(next.hi)
            } else {
                self.hi
            },
        }
    }

    /// Standard interval narrowing: recovers precision after widening by
    /// replacing each infinite endpoint of `self` with the corresponding
    /// endpoint of the (re-verified) candidate `cand`. Finite endpoints
    /// are kept, so narrowing never oscillates.
    #[inline]
    pub fn narrow(self, cand: IntervalF64) -> IntervalF64 {
        let lo = if self.lo == f64::NEG_INFINITY {
            cand.lo
        } else {
            self.lo
        };
        let hi = if self.hi == f64::INFINITY {
            cand.hi
        } else {
            self.hi
        };
        if lo <= hi || lo.partial_cmp(&hi).is_none() {
            IntervalF64 { lo, hi }
        } else {
            self
        }
    }

    /// Sound square root: the lower endpoint is clamped at zero when the
    /// interval dips (by rounding) slightly below zero; a truly negative
    /// interval yields NaN endpoints.
    pub fn sqrt(self) -> IntervalF64 {
        if self.hi < 0.0 {
            return IntervalF64 {
                lo: f64::NAN,
                hi: f64::NAN,
            };
        }
        let lo = if self.lo <= 0.0 {
            0.0
        } else {
            sqrt_rd(self.lo)
        };
        IntervalF64 {
            lo,
            hi: sqrt_ru(self.hi),
        }
    }

    /// Absolute value.
    pub fn abs(self) -> IntervalF64 {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            -self
        } else {
            IntervalF64 {
                lo: 0.0,
                hi: self.hi.max(-self.lo),
            }
        }
    }

    /// Minimum of two intervals (element-wise over all pairs).
    #[inline]
    pub fn min(self, other: IntervalF64) -> IntervalF64 {
        IntervalF64 {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Maximum of two intervals (element-wise over all pairs).
    #[inline]
    pub fn max(self, other: IntervalF64) -> IntervalF64 {
        IntervalF64 {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// `err` metric of the paper (eq. 11) for this interval.
    #[inline]
    pub fn err_bits(self) -> f64 {
        err_bits(self.lo, self.hi)
    }

    /// Certified bits (paper eq. 12) at double precision.
    #[inline]
    pub fn acc_bits(self) -> f64 {
        acc_bits(self.lo, self.hi, F64_MANTISSA_BITS)
    }
}

impl From<f64> for IntervalF64 {
    /// A point interval: the `f64` value is assumed exact (it is the actual
    /// bit pattern the unsound program would hold).
    #[inline]
    fn from(x: f64) -> IntervalF64 {
        IntervalF64::point(x)
    }
}

impl Default for IntervalF64 {
    fn default() -> Self {
        IntervalF64::ZERO
    }
}

impl Neg for IntervalF64 {
    type Output = IntervalF64;
    #[inline]
    fn neg(self) -> IntervalF64 {
        IntervalF64 {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl Add for IntervalF64 {
    type Output = IntervalF64;
    #[inline]
    fn add(self, rhs: IntervalF64) -> IntervalF64 {
        IntervalF64 {
            lo: add_rd(self.lo, rhs.lo),
            hi: add_ru(self.hi, rhs.hi),
        }
    }
}

impl Sub for IntervalF64 {
    type Output = IntervalF64;
    #[inline]
    fn sub(self, rhs: IntervalF64) -> IntervalF64 {
        IntervalF64 {
            lo: sub_rd(self.lo, rhs.hi),
            hi: sub_ru(self.hi, rhs.lo),
        }
    }
}

impl Mul for IntervalF64 {
    type Output = IntervalF64;
    /// Nine-case interval multiplication collapsed to min/max over the four
    /// corner products, each computed with the appropriate rounding.
    #[inline]
    fn mul(self, rhs: IntervalF64) -> IntervalF64 {
        let (a, b, c, d) = (self.lo, self.hi, rhs.lo, rhs.hi);
        let lo = mul_rd(a, c)
            .min(mul_rd(a, d))
            .min(mul_rd(b, c))
            .min(mul_rd(b, d));
        let hi = mul_ru(a, c)
            .max(mul_ru(a, d))
            .max(mul_ru(b, c))
            .max(mul_ru(b, d));
        IntervalF64 { lo, hi }
    }
}

impl Div for IntervalF64 {
    type Output = IntervalF64;
    /// Interval division; a divisor interval containing zero yields the
    /// entire real line (sound, maximally pessimistic).
    #[inline]
    fn div(self, rhs: IntervalF64) -> IntervalF64 {
        if rhs.lo <= 0.0 && rhs.hi >= 0.0 {
            return if rhs.is_nan() || self.is_nan() {
                IntervalF64 {
                    lo: f64::NAN,
                    hi: f64::NAN,
                }
            } else {
                IntervalF64::ENTIRE
            };
        }
        let (a, b, c, d) = (self.lo, self.hi, rhs.lo, rhs.hi);
        let lo = div_rd(a, c)
            .min(div_rd(a, d))
            .min(div_rd(b, c))
            .min(div_rd(b, d));
        let hi = div_ru(a, c)
            .max(div_ru(a, d))
            .max(div_ru(b, c))
            .max(div_ru(b, d));
        IntervalF64 { lo, hi }
    }
}

impl fmt::Display for IntervalF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:e}, {:e}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_contains_value() {
        let x = IntervalF64::point(std::f64::consts::PI);
        assert!(x.contains(std::f64::consts::PI));
        assert_eq!(x.width(), 0.0);
    }

    #[test]
    fn constant_brackets_decimal() {
        // 0.1 in binary is inexact; [0.1 - ulp, 0.1 + ulp] must contain both
        // neighbours of the stored value.
        let c = IntervalF64::constant(0.1);
        assert!(c.lo < 0.1 && 0.1 < c.hi);
        assert!(c.contains(0.1f64.next_up()));
        assert!(c.contains(0.1f64.next_down()));
    }

    #[test]
    fn add_sub_soundness() {
        let a = IntervalF64::from(0.1);
        let b = IntervalF64::from(0.2);
        let s = a + b;
        // Exact sum of the two stored doubles lies inside.
        assert!(s.lo <= 0.1 + 0.2 && 0.1 + 0.2 <= s.hi);
        let d = s - b;
        assert!(d.contains(0.1));
    }

    #[test]
    fn dependency_problem_demonstrated() {
        let x = IntervalF64::new(0.0, 1.0);
        let d = x - x;
        assert_eq!(d, IntervalF64::new(-1.0, 1.0));
    }

    #[test]
    fn mul_sign_cases() {
        let pp = IntervalF64::new(2.0, 3.0) * IntervalF64::new(4.0, 5.0);
        assert_eq!(pp, IntervalF64::new(8.0, 15.0));
        let pn = IntervalF64::new(2.0, 3.0) * IntervalF64::new(-5.0, -4.0);
        assert_eq!(pn, IntervalF64::new(-15.0, -8.0));
        let mixed = IntervalF64::new(-2.0, 3.0) * IntervalF64::new(-5.0, 4.0);
        assert_eq!(mixed, IntervalF64::new(-15.0, 12.0));
        let nn = IntervalF64::new(-3.0, -2.0) * IntervalF64::new(-5.0, -4.0);
        assert_eq!(nn, IntervalF64::new(8.0, 15.0));
    }

    #[test]
    fn mul_with_zero() {
        let z = IntervalF64::ZERO * IntervalF64::new(-1e300, 1e300);
        assert_eq!(z, IntervalF64::ZERO);
    }

    #[test]
    fn div_basic() {
        let q = IntervalF64::new(1.0, 2.0) / IntervalF64::new(4.0, 8.0);
        assert!(q.contains(0.125) && q.contains(0.5));
        assert!(q.lo <= 0.125 && q.hi >= 0.5);
    }

    #[test]
    fn div_by_zero_spanning_interval() {
        let q = IntervalF64::new(1.0, 2.0) / IntervalF64::new(-1.0, 1.0);
        assert_eq!(q, IntervalF64::ENTIRE);
    }

    #[test]
    fn div_negative_divisor() {
        let q = IntervalF64::new(1.0, 2.0) / IntervalF64::new(-4.0, -2.0);
        assert!(q.contains(-1.0) && q.contains(-0.25));
    }

    #[test]
    fn sqrt_soundness() {
        let r = IntervalF64::new(2.0, 4.0).sqrt();
        assert!(r.contains(std::f64::consts::SQRT_2));
        assert!(r.contains(2.0));
        assert!(r.lo <= std::f64::consts::SQRT_2);
    }

    #[test]
    fn sqrt_clamps_slightly_negative_lo() {
        let r = IntervalF64::new(-1e-300, 4.0).sqrt();
        assert_eq!(r.lo, 0.0);
        assert_eq!(r.hi, 2.0);
    }

    #[test]
    fn sqrt_of_negative_is_nan() {
        assert!(IntervalF64::new(-2.0, -1.0).sqrt().is_nan());
    }

    #[test]
    fn abs_cases() {
        assert_eq!(IntervalF64::new(1.0, 2.0).abs(), IntervalF64::new(1.0, 2.0));
        assert_eq!(
            IntervalF64::new(-2.0, -1.0).abs(),
            IntervalF64::new(1.0, 2.0)
        );
        assert_eq!(
            IntervalF64::new(-3.0, 2.0).abs(),
            IntervalF64::new(0.0, 3.0)
        );
    }

    #[test]
    fn min_max() {
        let a = IntervalF64::new(0.0, 3.0);
        let b = IntervalF64::new(1.0, 2.0);
        assert_eq!(a.min(b), IntervalF64::new(0.0, 2.0));
        assert_eq!(a.max(b), IntervalF64::new(1.0, 3.0));
    }

    #[test]
    fn hull_and_encloses() {
        let a = IntervalF64::new(0.0, 1.0);
        let b = IntervalF64::new(2.0, 3.0);
        let h = a.hull(b);
        assert!(h.encloses(a) && h.encloses(b));
        assert_eq!(h, IntervalF64::new(0.0, 3.0));
    }

    #[test]
    fn accuracy_metrics() {
        assert_eq!(IntervalF64::point(1.0).acc_bits(), 53.0);
        assert_eq!(IntervalF64::ENTIRE.acc_bits(), f64::NEG_INFINITY);
        let one_ulp = IntervalF64::new(1.0, 1.0f64.next_up());
        assert_eq!(one_ulp.acc_bits(), 52.0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn inverted_interval_panics() {
        let _ = IntervalF64::new(2.0, 1.0);
    }

    #[test]
    fn growth_under_iteration() {
        // Intervals only grow: repeated x = x*1.0 + 0 keeps width, but the
        // henon-style recurrence inflates rapidly. Sanity-check monotone
        // width growth.
        let mut x = IntervalF64::constant(0.5);
        let mut last_width = x.width();
        for _ in 0..20 {
            x = x * IntervalF64::constant(1.05) + IntervalF64::constant(0.1);
            assert!(x.width() >= last_width);
            last_width = x.width();
        }
    }

    /// A grid of exactly-representable edge magnitudes: zero, the
    /// smallest subnormal, the subnormal/normal boundary, ordinary
    /// values, and the overflow frontier. Every value is a dyadic
    /// rational, so containment claims below are checked *exactly*
    /// through `safegen_rational` rather than in rounded `f64`.
    fn edge_grid() -> Vec<f64> {
        let mags = [
            0.0,
            f64::from_bits(1),             // min subnormal
            f64::MIN_POSITIVE.next_down(), // max subnormal
            f64::MIN_POSITIVE,
            1.0,
            1.0f64.next_up(),
            f64::MAX.next_down(),
            f64::MAX,
        ];
        let mut grid: Vec<f64> = mags.into_iter().flat_map(|m| [m, -m]).collect();
        grid.sort_by(|a, b| a.partial_cmp(b).unwrap());
        grid.dedup_by(|a, b| a.to_bits() == b.to_bits());
        grid
    }

    #[test]
    fn widen_dominates_join_across_the_edge_grid() {
        use safegen_rational::Rational;
        let grid = edge_grid();
        let ladder = [1.0, 2.0, 1e100, f64::MAX];
        for (i, &alo) in grid.iter().enumerate() {
            for &ahi in &grid[i..] {
                for (j, &blo) in grid.iter().enumerate() {
                    for &bhi in &grid[j..] {
                        let a = IntervalF64::new(alo, ahi);
                        let b = IntervalF64::new(blo, bhi);
                        let joined = a.join(b);
                        let widened = a.widen(b);
                        let threshed = a.widen_threshold(b, &ladder);
                        // widen ⊒ join, exactly: every grid rational in
                        // the join is in both widenings.
                        for &g in &grid {
                            let r = Rational::from_f64(g).unwrap();
                            if r.in_range(joined.lo, joined.hi) {
                                assert!(
                                    r.in_range(widened.lo, widened.hi),
                                    "widen lost {g:e} from [{alo:e},{ahi:e}] ∇ [{blo:e},{bhi:e}]"
                                );
                                assert!(
                                    r.in_range(threshed.lo, threshed.hi),
                                    "widen_threshold lost {g:e}"
                                );
                            }
                        }
                        // And the threshold result is never wider than
                        // the straight-to-infinity widening.
                        assert!(widened.lo <= threshed.lo && threshed.hi <= widened.hi);
                    }
                }
            }
        }
    }

    #[test]
    fn widening_chains_stabilize() {
        // Plain widening: each endpoint moves at most once, so any
        // ascending chain is stable after 2 applications.
        let mut inv = IntervalF64::new(0.0, 1.0);
        let mut grow = 1.0;
        for step in 0..10 {
            let next = IntervalF64::new(-grow, grow * 2.0);
            let w = inv.widen(next);
            if step >= 2 {
                assert_eq!(w, inv, "plain widening chain did not stabilize");
            }
            inv = w;
            grow *= 10.0;
        }
        assert_eq!(inv, IntervalF64::ENTIRE);

        // Threshold widening with a K-rung ladder: each endpoint climbs
        // the ladder monotonically, so the chain is stable within K+1
        // applications even against an adversarial creeping sequence.
        let ladder = [1.0, 2.0, 4.0, 8.0, 16.0];
        let k = ladder.len();
        let mut inv = IntervalF64::new(0.0, 0.5);
        let mut prev = inv;
        let mut stable_at = None;
        for step in 0..(k + 4) {
            let creep = IntervalF64::new(0.0, inv.hi * 1.5 + 0.1);
            inv = inv.widen_threshold(creep, &ladder);
            if inv == prev && stable_at.is_none() {
                stable_at = Some(step);
            }
            prev = inv;
        }
        assert!(
            stable_at.is_some_and(|s| s <= k + 1),
            "threshold chain not stable within K+1: {stable_at:?}"
        );
    }

    #[test]
    fn widen_threshold_snaps_outward_at_subnormal_and_overflow_edges() {
        use safegen_rational::Rational;
        // A rung below the value must be skipped; a growing endpoint at
        // the overflow frontier must land on the MAX rung or ∞, never on
        // a rung *below* the observed state (that would be unsound).
        let ladder = [f64::MIN_POSITIVE, 1.0, f64::MAX];
        let cases = [
            f64::from_bits(1),
            f64::MIN_POSITIVE.next_down(),
            f64::MIN_POSITIVE.next_up(),
            1.5,
            f64::MAX.next_down(),
            f64::MAX,
        ];
        for hi in cases {
            let w = IntervalF64::new(0.0, 0.0).widen_threshold(IntervalF64::new(0.0, hi), &ladder);
            let exact = Rational::from_f64(hi).unwrap();
            assert!(
                exact.in_range(w.lo, w.hi),
                "snapped below the observed state: {hi:e} not in [{}, {}]",
                w.lo,
                w.hi
            );
            let lo_case =
                IntervalF64::new(0.0, 0.0).widen_threshold(IntervalF64::new(-hi, 0.0), &ladder);
            assert!(
                exact.neg().in_range(lo_case.lo, lo_case.hi),
                "low endpoint snapped inward at {:e}",
                -hi
            );
        }
        // Beyond the last rung the only sound landing spot is infinity.
        let past = IntervalF64::new(0.0, 0.0)
            .widen_threshold(IntervalF64::new(0.0, f64::MAX), &[1.0, 2.0]);
        assert_eq!(past.hi, f64::INFINITY);
    }

    #[test]
    fn narrow_recovers_infinite_endpoints_only_and_never_inverts() {
        let widened = IntervalF64::new(f64::NEG_INFINITY, f64::INFINITY);
        let cand = IntervalF64::new(-3.0, 7.0);
        assert_eq!(widened.narrow(cand), cand);

        // Finite endpoints are pinned: narrowing cannot tighten them even
        // when the candidate is smaller (that is what keeps narrowing
        // from oscillating against a non-monotone transfer function).
        let half = IntervalF64::new(-1.0, f64::INFINITY);
        let narrowed = half.narrow(IntervalF64::new(0.0, 5.0));
        assert_eq!(narrowed, IntervalF64::new(-1.0, 5.0));

        // A candidate that would invert the interval is rejected whole.
        let weird = half.narrow(IntervalF64::new(-10.0, -5.0));
        assert_eq!(weird, half);
    }
}
