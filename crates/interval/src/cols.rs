//! Column kernels for the lane-major (SoA) virtual machine.
//!
//! Each function applies one interval operation element-wise over whole
//! register columns: `out[l] = a[l] op b[l]` for every lane `l`.
//!
//! The [`IntervalF64`] loop bodies are **branch-free**: they compose the
//! select-based directed-rounding primitives of [`safegen_fpcore::flat`]
//! and turn the few case splits of the interval ops themselves (divisor
//! straddling zero, negative radicand, `abs` sign cases) into selects as
//! well. Straight-line bodies are what LLVM needs to vectorize the lane
//! loop; on `x86_64` with FMA/AVX2 available at runtime the loop is
//! additionally compiled inside a `#[target_feature(enable =
//! "fma,avx2")]` region, so the error-free transformations underneath
//! the rounding steps lower to single `vfmadd` instructions (four lanes
//! per `vfmadd231pd`/`vblendvpd` sequence) instead of soft-fma
//! libcalls.
//!
//! IEEE 754 specifies `fma` exactly (one rounding of the infinitely
//! precise result) and [`safegen_fpcore::flat`] is pinned bit-identical
//! to the branchy [`safegen_fpcore::round`] ladder, so every kernel
//! returns **bit-identical** endpoints to the element-wise scalar API —
//! this is what lets the lane engine use these kernels while staying
//! bit-for-bit equal to the scalar interpreter (see
//! `tests/lanes_differential.rs` in the workspace root, and the
//! edge-case tests below). Every kernel falls back to a portable loop
//! (same body) when the CPU features are missing.
//!
//! The [`IntervalDd`] kernels keep the element-wise double-double op
//! bodies: dd arithmetic is already fma-bound, so the feature region
//! alone captures most of the win, and the branchy case splits in the
//! dd ladder are not worth flattening yet.

use crate::{IntervalDd, IntervalF64};
use safegen_fpcore::flat;

/// True when the FMA/AVX2 fast path may be taken (checked once, cached
/// by `is_x86_feature_detected`).
#[cfg(target_arch = "x86_64")]
#[inline]
fn fast_ok() -> bool {
    std::arch::is_x86_feature_detected!("fma") && std::arch::is_x86_feature_detected!("avx2")
}

/// Select written so LLVM if-converts it (`vblendvpd` in vectorized
/// loops). Both arms are always evaluated by the callers below.
#[inline(always)]
fn sel(c: bool, t: f64, f: f64) -> f64 {
    if c {
        t
    } else {
        f
    }
}

// ---------------------------------------------------------------------
// Branch-free IntervalF64 op bodies. Each is the select-form of the
// corresponding operator in `f64_interval.rs` and must stay bit-equal
// to it (pinned by the `edge_intervals` tests below).
// ---------------------------------------------------------------------

#[inline(always)]
fn add_iv(x: IntervalF64, y: IntervalF64) -> IntervalF64 {
    IntervalF64 {
        lo: flat::add_rd(x.lo, y.lo),
        hi: flat::add_ru(x.hi, y.hi),
    }
}

#[inline(always)]
fn sub_iv(x: IntervalF64, y: IntervalF64) -> IntervalF64 {
    IntervalF64 {
        lo: flat::sub_rd(x.lo, y.hi),
        hi: flat::sub_ru(x.hi, y.lo),
    }
}

#[inline(always)]
fn mul_iv(x: IntervalF64, y: IntervalF64) -> IntervalF64 {
    let (a, b, c, d) = (x.lo, x.hi, y.lo, y.hi);
    let lo = flat::mul_rd(a, c)
        .min(flat::mul_rd(a, d))
        .min(flat::mul_rd(b, c))
        .min(flat::mul_rd(b, d));
    let hi = flat::mul_ru(a, c)
        .max(flat::mul_ru(a, d))
        .max(flat::mul_ru(b, c))
        .max(flat::mul_ru(b, d));
    IntervalF64 { lo, hi }
}

#[inline(always)]
fn div_iv(x: IntervalF64, y: IntervalF64) -> IntervalF64 {
    let (a, b, c, d) = (x.lo, x.hi, y.lo, y.hi);
    let lo = flat::div_rd(a, c)
        .min(flat::div_rd(a, d))
        .min(flat::div_rd(b, c))
        .min(flat::div_rd(b, d));
    let hi = flat::div_ru(a, c)
        .max(flat::div_ru(a, d))
        .max(flat::div_ru(b, c))
        .max(flat::div_ru(b, d));
    // Divisor straddling zero yields ENTIRE (or NaN if either operand
    // is already NaN) — computed as a select over the normal path.
    let straddle = c <= 0.0 && d >= 0.0;
    let nan = x.is_nan() || y.is_nan();
    IntervalF64 {
        lo: sel(straddle, sel(nan, f64::NAN, f64::NEG_INFINITY), lo),
        hi: sel(straddle, sel(nan, f64::NAN, f64::INFINITY), hi),
    }
}

#[inline(always)]
fn min_iv(x: IntervalF64, y: IntervalF64) -> IntervalF64 {
    IntervalF64 {
        lo: x.lo.min(y.lo),
        hi: x.hi.min(y.hi),
    }
}

#[inline(always)]
fn max_iv(x: IntervalF64, y: IntervalF64) -> IntervalF64 {
    IntervalF64 {
        lo: x.lo.max(y.lo),
        hi: x.hi.max(y.hi),
    }
}

#[inline(always)]
fn sqrt_iv(x: IntervalF64) -> IntervalF64 {
    let lo = sel(x.lo <= 0.0, 0.0, flat::sqrt_rd(x.lo));
    let hi = flat::sqrt_ru(x.hi);
    let neg = x.hi < 0.0;
    IntervalF64 {
        lo: sel(neg, f64::NAN, lo),
        hi: sel(neg, f64::NAN, hi),
    }
}

#[inline(always)]
fn abs_iv(x: IntervalF64) -> IntervalF64 {
    IntervalF64 {
        lo: sel(x.lo >= 0.0, x.lo, sel(x.hi <= 0.0, -x.hi, 0.0)),
        hi: sel(x.lo >= 0.0, x.hi, sel(x.hi <= 0.0, -x.lo, x.hi.max(-x.lo))),
    }
}

#[inline(always)]
fn neg_iv(x: IntervalF64) -> IntervalF64 {
    IntervalF64 {
        lo: -x.hi,
        hi: -x.lo,
    }
}

macro_rules! bin_kernels {
    ($fast:ident: $($(#[$doc:meta])* $name:ident ($t:ty): |$x:ident, $y:ident| $body:expr;)*) => {
        $(
            $(#[$doc])*
            /// Writes `a[i] op b[i]` to `out[i]` for every index; the
            /// three slices must have equal lengths (`out` may be the
            /// caller's destination column directly).
            pub fn $name(a: &[$t], b: &[$t], out: &mut [$t]) {
                debug_assert_eq!(a.len(), b.len());
                debug_assert_eq!(a.len(), out.len());
                #[cfg(target_arch = "x86_64")]
                if fast_ok() {
                    // SAFETY: fma+avx2 presence was just checked.
                    unsafe { $fast::$name(a, b, out) };
                    return;
                }
                // Plain slice loops (not `Vec::extend`) keep the body
                // inlined so LLVM's loop vectorizer can run.
                for ((o, $x), $y) in out.iter_mut().zip(a).zip(b) {
                    *o = $body;
                }
            }
        )*
        #[cfg(target_arch = "x86_64")]
        mod $fast {
            use super::*;
            $(
                #[target_feature(enable = "fma,avx2")]
                pub unsafe fn $name(a: &[$t], b: &[$t], out: &mut [$t]) {
                    for ((o, $x), $y) in out.iter_mut().zip(a).zip(b) {
                        *o = $body;
                    }
                }
            )*
        }
    };
}

macro_rules! un_kernels {
    ($fast:ident: $($(#[$doc:meta])* $name:ident ($t:ty): |$x:ident| $body:expr;)*) => {
        $(
            $(#[$doc])*
            /// Writes `op a[i]` to `out[i]` for every index; the two
            /// slices must have equal lengths.
            pub fn $name(a: &[$t], out: &mut [$t]) {
                debug_assert_eq!(a.len(), out.len());
                #[cfg(target_arch = "x86_64")]
                if fast_ok() {
                    // SAFETY: fma+avx2 presence was just checked.
                    unsafe { $fast::$name(a, out) };
                    return;
                }
                for (o, $x) in out.iter_mut().zip(a) {
                    *o = $body;
                }
            }
        )*
        #[cfg(target_arch = "x86_64")]
        mod $fast {
            use super::*;
            $(
                #[target_feature(enable = "fma,avx2")]
                pub unsafe fn $name(a: &[$t], out: &mut [$t]) {
                    for (o, $x) in out.iter_mut().zip(a) {
                        *o = $body;
                    }
                }
            )*
        }
    };
}

bin_kernels! { fast_bin_f64:
    /// Column-wise [`IntervalF64`] addition.
    add_cols_f64 (IntervalF64): |x, y| add_iv(*x, *y);
    /// Column-wise [`IntervalF64`] subtraction.
    sub_cols_f64 (IntervalF64): |x, y| sub_iv(*x, *y);
    /// Column-wise [`IntervalF64`] multiplication.
    mul_cols_f64 (IntervalF64): |x, y| mul_iv(*x, *y);
    /// Column-wise [`IntervalF64`] division.
    div_cols_f64 (IntervalF64): |x, y| div_iv(*x, *y);
    /// Column-wise [`IntervalF64`] minimum.
    min_cols_f64 (IntervalF64): |x, y| min_iv(*x, *y);
    /// Column-wise [`IntervalF64`] maximum.
    max_cols_f64 (IntervalF64): |x, y| max_iv(*x, *y);
}

un_kernels! { fast_un_f64:
    /// Column-wise [`IntervalF64`] square root.
    sqrt_cols_f64 (IntervalF64): |x| sqrt_iv(*x);
    /// Column-wise [`IntervalF64`] absolute value.
    abs_cols_f64 (IntervalF64): |x| abs_iv(*x);
    /// Column-wise [`IntervalF64`] negation.
    neg_cols_f64 (IntervalF64): |x| neg_iv(*x);
}

bin_kernels! { fast_bin_dd:
    /// Column-wise [`IntervalDd`] addition.
    add_cols_dd (IntervalDd): |x, y| *x + *y;
    /// Column-wise [`IntervalDd`] subtraction.
    sub_cols_dd (IntervalDd): |x, y| *x - *y;
    /// Column-wise [`IntervalDd`] multiplication.
    mul_cols_dd (IntervalDd): |x, y| *x * *y;
    /// Column-wise [`IntervalDd`] division.
    div_cols_dd (IntervalDd): |x, y| *x / *y;
}

un_kernels! { fast_un_dd:
    /// Column-wise [`IntervalDd`] square root.
    sqrt_cols_dd (IntervalDd): |x| x.sqrt();
    /// Column-wise [`IntervalDd`] absolute value.
    abs_cols_dd (IntervalDd): |x| x.abs();
    /// Column-wise [`IntervalDd`] negation.
    neg_cols_dd (IntervalDd): |x| -*x;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_cols() -> (Vec<IntervalF64>, Vec<IntervalF64>) {
        let a: Vec<IntervalF64> = (0..37)
            .map(|i| IntervalF64::constant(0.1 + 0.07 * i as f64))
            .collect();
        let b: Vec<IntervalF64> = (0..37)
            .map(|i| IntervalF64::constant(-1.3 + 0.11 * i as f64))
            .collect();
        (a, b)
    }

    /// Interval columns covering every case split the flat bodies turn
    /// into selects: NaN endpoints, straddle-zero divisors, negative
    /// and sign-crossing intervals, zero-width points, infinities.
    fn edge_cols() -> (Vec<IntervalF64>, Vec<IntervalF64>) {
        let nan = IntervalF64 {
            lo: f64::NAN,
            hi: f64::NAN,
        };
        let specials = [
            IntervalF64::ZERO,
            IntervalF64::ENTIRE,
            nan,
            IntervalF64::point(1.0),
            IntervalF64::point(-1.0),
            IntervalF64::new(-2.0, -1.0),
            IntervalF64::new(-1.0, 1.0),
            IntervalF64::new(1.0, 2.0),
            IntervalF64::new(0.0, 3.0),
            IntervalF64::new(-3.0, 0.0),
            IntervalF64::new(-1e-300, 1e-300),
            IntervalF64::new(1e300, f64::INFINITY),
            IntervalF64::new(f64::NEG_INFINITY, -1e300),
            IntervalF64::constant(0.1),
            IntervalF64::constant(-0.1),
        ];
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &x in &specials {
            for &y in &specials {
                a.push(x);
                b.push(y);
            }
        }
        (a, b)
    }

    fn bits(v: IntervalF64) -> (u64, u64) {
        (v.lo().to_bits(), v.hi().to_bits())
    }

    /// The kernels must agree bit-for-bit with the element-wise ops —
    /// on this host that exercises the FMA path whenever present.
    #[test]
    fn f64_kernels_match_elementwise_bitwise() {
        let (a, b) = f64_cols();
        let mut out = vec![IntervalF64::ZERO; a.len()];
        mul_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x * *y), bits(*got));
        }
        div_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x / *y), bits(*got));
        }
        add_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x + *y), bits(*got));
        }
        sub_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x - *y), bits(*got));
        }
    }

    /// Every select in the flat interval bodies against the branchy
    /// element-wise operators, over all pairs of special intervals.
    #[test]
    fn f64_kernels_match_elementwise_on_edge_intervals() {
        let (a, b) = edge_cols();
        let mut out = vec![IntervalF64::ZERO; a.len()];
        add_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x + *y), bits(*got), "add {x} {y}");
        }
        sub_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x - *y), bits(*got), "sub {x} {y}");
        }
        mul_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x * *y), bits(*got), "mul {x} {y}");
        }
        div_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x / *y), bits(*got), "div {x} {y}");
        }
        min_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(x.min(*y)), bits(*got), "min {x} {y}");
        }
        max_cols_f64(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(x.max(*y)), bits(*got), "max {x} {y}");
        }
        sqrt_cols_f64(&a, &mut out);
        for (x, got) in a.iter().zip(&out) {
            assert_eq!(bits(x.sqrt()), bits(*got), "sqrt {x}");
        }
        abs_cols_f64(&a, &mut out);
        for (x, got) in a.iter().zip(&out) {
            assert_eq!(bits(x.abs()), bits(*got), "abs {x}");
        }
        neg_cols_f64(&a, &mut out);
        for (x, got) in a.iter().zip(&out) {
            assert_eq!(bits(-*x), bits(*got), "neg {x}");
        }
    }

    #[test]
    fn f64_unary_kernels_match_elementwise_bitwise() {
        let (a, _) = f64_cols();
        let mut out = vec![IntervalF64::ZERO; a.len()];
        abs_cols_f64(&a, &mut out);
        for (x, got) in a.iter().zip(&out) {
            assert_eq!(bits(x.abs()), bits(*got));
        }
        let pos: Vec<IntervalF64> = a.iter().map(|x| x.abs()).collect();
        sqrt_cols_f64(&pos, &mut out);
        for (x, got) in pos.iter().zip(&out) {
            assert_eq!(bits(x.sqrt()), bits(*got));
        }
    }

    #[test]
    fn dd_kernels_match_elementwise_bitwise() {
        let a: Vec<IntervalDd> = (0..19)
            .map(|i| IntervalDd::constant(0.3 + 0.05 * i as f64))
            .collect();
        let b: Vec<IntervalDd> = (0..19)
            .map(|i| IntervalDd::constant(1.7 - 0.09 * i as f64))
            .collect();
        let mut out = vec![IntervalDd::ZERO; a.len()];
        let bits = |v: IntervalDd| {
            (
                v.lo().hi().to_bits(),
                v.lo().lo().to_bits(),
                v.hi().hi().to_bits(),
                v.hi().lo().to_bits(),
            )
        };
        mul_cols_dd(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x * *y), bits(*got));
        }
        add_cols_dd(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x + *y), bits(*got));
        }
        div_cols_dd(&a, &b, &mut out);
        for ((x, y), got) in a.iter().zip(&b).zip(&out) {
            assert_eq!(bits(*x / *y), bits(*got));
        }
    }
}
