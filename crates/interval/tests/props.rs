//! Property tests: interval arithmetic soundness against double-double
//! reference computations, and structural invariants (inclusion isotonicity,
//! widths never negative).

use proptest::prelude::*;
use safegen_fpcore::Dd;
use safegen_interval::{IntervalDd, IntervalF64};

fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e6f64..1e6f64,
        -1.0f64..1.0f64,
        Just(0.0),
        Just(1.0),
        Just(-1.0)
    ]
}

/// An interval around a base point with a small width.
fn interval() -> impl Strategy<Value = IntervalF64> {
    (small_f64(), 0.0f64..1e-3).prop_map(|(c, w)| IntervalF64::new(c - w, c + w))
}

proptest! {
    #[test]
    fn add_contains_exact(a in interval(), b in interval(), ta in 0.0f64..1.0, tb in 0.0f64..1.0) {
        // Pick arbitrary representatives inside each operand.
        let x = a.lo() + ta * (a.hi() - a.lo());
        let y = b.lo() + tb * (b.hi() - b.lo());
        let exact = Dd::from_two_sum(x, y);
        let s = a + b;
        prop_assert!(Dd::from(s.lo()) <= exact && exact <= Dd::from(s.hi()));
    }

    #[test]
    fn mul_contains_exact(a in interval(), b in interval(), ta in 0.0f64..1.0, tb in 0.0f64..1.0) {
        let x = a.lo() + ta * (a.hi() - a.lo());
        let y = b.lo() + tb * (b.hi() - b.lo());
        let exact = Dd::from_two_prod(x, y);
        let p = a * b;
        prop_assert!(Dd::from(p.lo()) <= exact && exact <= Dd::from(p.hi()),
            "{x}*{y} = {exact} outside {p}");
    }

    #[test]
    fn div_contains_quotient(a in interval(), b in interval(), ta in 0.0f64..1.0) {
        prop_assume!(!b.contains(0.0));
        let x = a.lo() + ta * (a.hi() - a.lo());
        let q = a / b;
        // q must contain x / y for the endpoints y = b.lo and b.hi.
        for y in [b.lo(), b.hi()] {
            let approx = x / y;
            prop_assert!(q.lo() <= approx && approx <= q.hi());
        }
    }

    #[test]
    fn sub_self_contains_zero(a in interval()) {
        let d = a - a;
        prop_assert!(d.contains(0.0));
    }

    #[test]
    fn sqrt_contains_exact(c in 0.0f64..1e6, w in 0.0f64..1e-3) {
        let a = IntervalF64::new(c, c + w);
        let r = a.sqrt();
        let s = c.sqrt();
        prop_assert!(r.lo() <= s && s <= r.hi());
    }

    #[test]
    fn inclusion_isotonicity_add(a in interval(), b in interval(), shrink in 0.0f64..0.5) {
        // a' ⊆ a, b' ⊆ b  ⇒  a'+b' ⊆ a+b
        let a2 = IntervalF64::new(
            a.lo() + shrink * (a.hi() - a.lo()),
            a.hi() - shrink * (a.hi() - a.lo()),
        );
        let b2 = IntervalF64::new(
            b.lo() + shrink * (b.hi() - b.lo()),
            b.hi() - shrink * (b.hi() - b.lo()),
        );
        prop_assert!((a + b).encloses(a2 + b2));
    }

    #[test]
    fn inclusion_isotonicity_mul(a in interval(), b in interval(), shrink in 0.0f64..0.5) {
        let a2 = IntervalF64::new(
            a.lo() + shrink * (a.hi() - a.lo()),
            a.hi() - shrink * (a.hi() - a.lo()),
        );
        let b2 = IntervalF64::new(
            b.lo() + shrink * (b.hi() - b.lo()),
            b.hi() - shrink * (b.hi() - b.lo()),
        );
        prop_assert!((a * b).encloses(a2 * b2));
    }

    #[test]
    fn widths_nonnegative(a in interval(), b in interval()) {
        for r in [a + b, a - b, a * b] {
            prop_assert!(r.lo() <= r.hi());
            prop_assert!(r.width() >= 0.0);
        }
    }

    #[test]
    fn neg_involution(a in interval()) {
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn dd_interval_add_contains(x in small_f64(), y in small_f64()) {
        let a = IntervalDd::point(Dd::from(x));
        let b = IntervalDd::point(Dd::from(y));
        let s = a + b;
        let exact = Dd::from_two_sum(x, y);
        prop_assert!(s.lo() <= exact && exact <= s.hi());
    }

    #[test]
    fn dd_interval_mul_contains(x in -1e3f64..1e3, y in -1e3f64..1e3) {
        let a = IntervalDd::point(Dd::from(x));
        let b = IntervalDd::point(Dd::from(y));
        let p = a * b;
        let exact = Dd::from_two_prod(x, y);
        prop_assert!(p.lo() <= exact && exact <= p.hi());
    }

    #[test]
    fn dd_tighter_than_f64(x in 0.001f64..1e3, y in 0.001f64..1e3) {
        // Long chains: dd interval grows slower than f64 interval.
        let mut a64 = IntervalF64::constant(x);
        let mut add = IntervalDd::constant(x);
        let b64 = IntervalF64::constant(y);
        let bdd = IntervalDd::constant(y);
        for _ in 0..8 {
            a64 = a64 * b64 + b64;
            add = add * bdd + bdd;
        }
        prop_assume!(a64.width().is_finite());
        prop_assert!(add.width_f64() <= a64.width() * 1.0000001);
    }
}
