//! Benchmarks of the static-analysis pipeline: the paper reports that
//! "the generation of each implementation took less than a second for all
//! considered benchmarks" — these benches pin where that time goes
//! (parsing + TAC, reuse enumeration, ILP vs greedy max-reuse solving).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safegen_bench::{Workload, WorkloadKind};
use std::hint::black_box;

fn bench_compile_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    for w in [
        Workload::new(WorkloadKind::Henon { iters: 100 }),
        Workload::new(WorkloadKind::Sor { n: 10, iters: 30 }),
        Workload::new(WorkloadKind::Luf { n: 20 }),
        Workload::new(WorkloadKind::Fgm { n: 8, iters: 40 }),
    ] {
        group.bench_with_input(BenchmarkId::new("compile", w.name), &w, |b, w| {
            b.iter(|| {
                black_box(
                    safegen_api::diag::Compiler::new()
                        .compile(black_box(&w.source))
                        .unwrap(),
                )
            })
        });
        let compiled = safegen_api::diag::Compiler::new()
            .compile(&w.source)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("prioritize_k16", w.name), &w, |b, w| {
            b.iter(|| black_box(compiled.prioritized_program(w.func, 16)))
        });
    }
    group.finish();
}

fn bench_maxreuse_solvers(c: &mut Criterion) {
    // A reuse-dense synthetic kernel: chained reconvergences.
    let mut src = String::from("double f(double x, double z) {\n    double acc = 0.0;\n");
    for i in 0..12 {
        src.push_str(&format!(
            "    double a{i} = x * z;\n    double b{i} = acc * z;\n    acc = acc + a{i} - b{i};\n"
        ));
    }
    src.push_str("    return acc;\n}\n");

    let unit = safegen_cfront::parse(&src).unwrap();
    let sema = safegen_cfront::analyze(&unit).unwrap();
    let tac = safegen_ir::to_tac(&unit, &sema);
    let sema = safegen_cfront::analyze(&tac).unwrap();
    let dag = safegen_ir::build_dag(&tac.functions[0], &sema);

    let mut group = c.benchmark_group("maxreuse");
    group.bench_function("find_reuses", |b| {
        b.iter(|| black_box(safegen_analysis::find_reuses(black_box(&dag))))
    });
    let reuses = safegen_analysis::find_reuses(&dag);
    eprintln!("maxreuse bench instance: {} reuses", reuses.len());
    group.bench_function("solve_greedy", |b| {
        b.iter(|| {
            black_box(safegen_analysis::solve_max_reuse(
                black_box(&reuses),
                8,
                safegen_analysis::SolveMode::Greedy,
            ))
        })
    });
    group.bench_function("solve_ilp", |b| {
        b.iter(|| {
            black_box(safegen_analysis::solve_max_reuse(
                black_box(&reuses),
                8,
                safegen_analysis::SolveMode::Ilp,
            ))
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_compile_pipeline, bench_maxreuse_solvers
}
criterion_main!(benches);
