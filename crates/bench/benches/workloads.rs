//! End-to-end workload benchmarks: each paper benchmark under the
//! unsound VM, IGen-f64 intervals, and `f64a-dspv` affine configurations —
//! the runtime axis of Fig. 8/9 in criterion form (small instances so
//! `cargo bench` stays quick; the figure binaries run the full sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safegen_api::diag::Compiler;
use safegen_api::RunConfig;
use safegen_bench::{Workload, WorkloadKind};
use std::hint::black_box;

fn bench_workloads(c: &mut Criterion) {
    let workloads = [
        Workload::new(WorkloadKind::Henon { iters: 25 }),
        Workload::new(WorkloadKind::Sor { n: 6, iters: 4 }),
        Workload::new(WorkloadKind::Luf { n: 8 }),
        Workload::new(WorkloadKind::Fgm { n: 4, iters: 10 }),
    ];
    let mut group = c.benchmark_group("workloads");
    for w in &workloads {
        let compiled = Compiler::new().compile(&w.source).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let args = w.args(&mut rng);

        group.bench_with_input(BenchmarkId::new("native", w.name), &w, |b, w| {
            b.iter(|| black_box(w.native(black_box(&args))))
        });
        for (tag, cfg) in [
            ("unsound_vm", RunConfig::unsound()),
            ("igen_f64", RunConfig::interval_f64()),
            ("f64a_dspv_k8", RunConfig::affine_f64(8)),
            ("f64a_dspv_k32", RunConfig::affine_f64(32)),
        ] {
            // Warm the prioritized-program cache outside the timer.
            let _ = compiled.run(w.func, &args, &cfg);
            group.bench_with_input(BenchmarkId::new(tag, w.name), &w, |b, w| {
                b.iter(|| black_box(compiled.run(w.func, black_box(&args), &cfg).unwrap()))
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_workloads
}
criterion_main!(benches);
