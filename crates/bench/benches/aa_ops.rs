//! Microbenchmarks of the affine operations (paper Sec. V,
//! "Arithmetic cost"): addition and multiplication under each placement
//! policy, across the symbol-budget sweep, plus the vectorized kernels
//! and the library baselines.
//!
//! The paper's claims checked here (relative, not absolute):
//! * direct-mapped ops are much cheaper than sorted ops at equal k;
//! * vectorized direct ops beat scalar direct ops (1.2–3×);
//! * the per-op cost grows linearly in k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safegen_affine::baselines::{BaselineCtx, CeresAffine, YalaaAff0};
use safegen_affine::{AaConfig, AaContext, AffineF64, Placement, Protect};
use std::hint::black_box;

/// Two affine operands with all k symbol slots populated and shared —
/// the steady state inside a benchmark loop.
fn operands(ctx: &AaContext) -> (AffineF64, AffineF64) {
    let mut a = AffineF64::from_input(0.7, ctx);
    let mut b = AffineF64::from_input(1.3, ctx);
    // Mix until both carry k symbols with shared history.
    for _ in 0..(2 * ctx.k() + 4) {
        let t = a.mul(&b, ctx, Protect::None);
        b = b.add(&a, ctx, Protect::None);
        a = t;
    }
    // Normalize magnitudes to avoid overflow in the timing loop.
    let scale = AffineF64::exact(1e-3, ctx);
    (
        a.mul(&scale, ctx, Protect::None),
        b.mul(&scale, ctx, Protect::None),
    )
}

fn bench_add_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("aa_ops");
    for &k in &[8usize, 16, 32, 48] {
        for (tag, cfg) in [
            (
                "ss",
                AaConfig::new(k)
                    .with_placement(Placement::Sorted)
                    .with_vectorized(false),
            ),
            ("ds", AaConfig::new(k).with_vectorized(false)),
            ("dsv", AaConfig::new(k).with_vectorized(true)),
        ] {
            let ctx = AaContext::new(cfg);
            let (a, b) = operands(&ctx);
            group.bench_with_input(BenchmarkId::new(format!("add_{tag}"), k), &k, |bch, _| {
                bch.iter(|| black_box(a.add(black_box(&b), &ctx, Protect::None)))
            });
            group.bench_with_input(BenchmarkId::new(format!("mul_{tag}"), k), &k, |bch, _| {
                bch.iter(|| black_box(a.mul(black_box(&b), &ctx, Protect::None)))
            });
        }
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_ops");
    // Ceres at k=16 vs our ds at k=16: the library-overhead gap of Fig. 9.
    let k = 16;
    let cctx = BaselineCtx::new();
    let mut ca = CeresAffine::from_input(0.7, k, &cctx);
    let mut cb = CeresAffine::from_input(1.3, k, &cctx);
    for _ in 0..(2 * k) {
        let t = ca.mul(&cb, &cctx);
        cb = cb.add(&ca, &cctx);
        ca = t;
    }
    group.bench_function("ceres_mul_k16", |bch| {
        bch.iter(|| black_box(ca.mul(black_box(&cb), &cctx)))
    });

    // yalaa-aff0 with ~64 live symbols.
    let yctx = BaselineCtx::new();
    let mut ya = YalaaAff0::from_input(0.7, &yctx);
    let yb = YalaaAff0::from_input(1.3, &yctx);
    for _ in 0..60 {
        ya = ya.mul(&yb, &yctx);
    }
    group.bench_function("yalaa_aff0_mul_64syms", |bch| {
        bch.iter(|| black_box(ya.mul(black_box(&yb), &yctx)))
    });

    let ctx = AaContext::new(AaConfig::new(16));
    let (a, b) = operands(&ctx);
    group.bench_function("safegen_dsv_mul_k16", |bch| {
        bch.iter(|| black_box(a.mul(black_box(&b), &ctx, Protect::None)))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_add_mul, bench_baselines
}
criterion_main!(benches);
