//! Dispatch-throughput benchmark: the lane-major (SoA) batch engine vs
//! the scalar interpreter on the paper suite (DESIGN.md §10).
//!
//! For each workload × configuration the binary times a single-threaded
//! sweep over the same batch of input points twice — once through
//! [`run_on`] one point at a time, once through
//! [`run_lanes_on`] at lane widths {4, 8, 16, 32} — and reports
//! points-per-second plus the speedup of each width over the scalar
//! path. A bitwise spot check (first lane group vs scalar, per config)
//! guards against measuring a divergent engine; the exhaustive check is
//! `tests/lanes_differential.rs`.
//!
//! The fixed-width encoding stats (instruction count, superinstruction
//! fusions, hottest opcode pairs from [`pair_histogram`]) land
//! next to the timings in `results/BENCH_dispatch.json`. Usage:
//! `cargo run --release -p safegen-bench --bin dispatch`
//! (`SAFEGEN_QUICK=1` shrinks the sweep, `SAFEGEN_REPS` the repetitions).

use rand::rngs::StdRng;
use rand::SeedableRng;
use safegen_api::diag::{
    encode, pair_histogram, run_lanes_on, run_on, BytecodeProgram, Compiler, FixedProgram,
};
use safegen_api::{ArgValue, RunConfig, RunReport};
use safegen_bench::harness::{self, BASE_SEED};
use safegen_bench::Workload;
use safegen_telemetry::json::Json;
use std::hint::black_box;
use std::time::Instant;

/// Lane widths swept by the benchmark (the batch engine's auto widths,
/// 16 and 4, are both in range; 64 is `MAX_LANES`).
const WIDTHS: [usize; 5] = [4, 8, 16, 32, 64];

/// One workload × configuration row.
struct Row {
    bench: String,
    config: String,
    items: usize,
    /// Median scalar throughput, points per second.
    scalar_per_s: f64,
    /// Per lane width: median throughput and speedup over scalar.
    widths: Vec<(usize, f64, f64)>,
}

impl Row {
    fn best(&self) -> (usize, f64) {
        self.widths
            .iter()
            .map(|&(w, _, s)| (w, s))
            .fold((0, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc })
    }

    fn to_json(&self) -> Json {
        let (bw, bs) = self.best();
        Json::obj(vec![
            ("bench", Json::from(self.bench.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("items", Json::from(self.items)),
            ("scalar_items_per_s", Json::from(self.scalar_per_s)),
            (
                "lanes",
                Json::Arr(
                    self.widths
                        .iter()
                        .map(|&(w, per_s, speedup)| {
                            Json::obj(vec![
                                ("width", Json::from(w)),
                                ("items_per_s", Json::from(per_s)),
                                ("speedup", Json::from(speedup)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("best_width", Json::from(bw)),
            ("best_speedup", Json::from(bs)),
        ])
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The batch of input points timed below; item `i` draws from
/// `BASE_SEED ^ i` like the measurement harness does.
fn batch_inputs(w: &Workload, items: usize) -> Vec<Vec<ArgValue>> {
    (0..items)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(BASE_SEED ^ i as u64);
            w.args(&mut rng)
        })
        .collect()
}

/// Bitwise agreement of one lane group against per-point scalar runs —
/// a cheap guard that the timed engine computes the same results.
fn spot_check(
    prog: &BytecodeProgram,
    fixed: &FixedProgram,
    inputs: &[Vec<ArgValue>],
    config: &RunConfig,
    what: &str,
) {
    let bits = |r: &Result<RunReport, String>| match r {
        Ok(rep) => Ok((
            rep.ret.map(|(lo, hi)| (lo.to_bits(), hi.to_bits())),
            rep.acc_bits.to_bits(),
            rep.stats,
        )),
        Err(e) => Err(e.clone()),
    };
    for (l, laned) in run_lanes_on(prog, fixed, inputs, config).iter().enumerate() {
        let scalar = run_on(prog, &inputs[l], config);
        assert_eq!(
            bits(&scalar),
            bits(laned),
            "{what}: lane {l} diverged from the scalar interpreter"
        );
    }
}

fn main() {
    harness::announce("dispatch");
    let reps = if harness::quick() {
        3
    } else {
        harness::reps().min(10)
    };
    let items = if harness::quick() { 64 } else { 128 };
    let suite = Workload::paper_suite();
    let configs = [
        RunConfig::unsound(),
        RunConfig::interval_f64(),
        RunConfig::interval_dd(),
        RunConfig::affine_f64(8),
    ];

    let mut rows: Vec<Row> = Vec::new();
    let mut encodings: Vec<Json> = Vec::new();
    for w in &suite {
        let compiled = Compiler::new()
            .compile(&w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for config in &configs {
            let prog = compiled.program_for(w.func, config);
            let fixed = encode(&prog).expect("paper workloads fit the fixed-width encoding");
            if config.label() == configs[0].label() {
                let pairs = pair_histogram(&prog);
                encodings.push(Json::obj(vec![
                    ("bench", Json::from(w.name)),
                    ("instrs", Json::from(prog.code.len())),
                    ("fixed_instrs", Json::from(fixed.ops.len())),
                    ("fused", Json::from(fixed.fused)),
                    (
                        "top_pairs",
                        Json::Arr(
                            pairs
                                .iter()
                                .take(6)
                                .map(|&((a, b), n)| {
                                    Json::obj(vec![
                                        ("pair", Json::from(format!("{a}+{b}").as_str())),
                                        ("count", Json::from(n)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]));
            }
            let inputs = batch_inputs(w, items);
            spot_check(
                &prog,
                &fixed,
                &inputs[..8],
                config,
                &format!("{} {}", w.name, config.label()),
            );

            // Warm caches outside every timed region.
            let _ = black_box(run_on(&prog, &inputs[0], config));
            let mut scalar_t = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t0 = Instant::now();
                for args in &inputs {
                    let _ = black_box(run_on(&prog, args, config));
                }
                scalar_t.push(items as f64 / t0.elapsed().as_secs_f64());
            }
            let scalar_per_s = median(&mut scalar_t);

            let mut widths = Vec::new();
            for lanes in WIDTHS {
                let _ = black_box(run_lanes_on(&prog, &fixed, &inputs[..lanes], config));
                let mut t = Vec::with_capacity(reps);
                for _ in 0..reps {
                    let t0 = Instant::now();
                    for chunk in inputs.chunks(lanes) {
                        black_box(run_lanes_on(&prog, &fixed, chunk, config));
                    }
                    t.push(items as f64 / t0.elapsed().as_secs_f64());
                }
                let per_s = median(&mut t);
                widths.push((lanes, per_s, per_s / scalar_per_s));
            }
            rows.push(Row {
                bench: w.name.to_string(),
                config: config.label(),
                items,
                scalar_per_s,
                widths,
            });
            eprintln!("dispatch: {} {} done", w.name, config.label());
        }
    }

    println!(
        "\n== lane dispatch throughput (points/s, {} points x {} reps) ==",
        items, reps
    );
    println!(
        "{:<8} {:<16} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "config", "scalar", "x4", "x8", "x16", "x32", "x64"
    );
    for r in &rows {
        print!("{:<8} {:<16} {:>12.0}", r.bench, r.config, r.scalar_per_s);
        for &(_, _, s) in &r.widths {
            print!(" {:>7.2}x", s);
        }
        println!();
    }
    for r in &rows {
        let (bw, bs) = r.best();
        let gated = r.config == "unsound" || r.config.starts_with("IGen");
        if gated && bs < 5.0 {
            eprintln!(
                "dispatch: WARNING {} {} best speedup {:.2}x (width {bw}) is below the 5x target",
                r.bench, r.config, bs
            );
        }
    }

    let doc = Json::obj(vec![
        ("binary", Json::from("dispatch")),
        ("reps", Json::from(reps)),
        ("items", Json::from(items)),
        ("base_seed", Json::from(BASE_SEED)),
        ("encodings", Json::Arr(encodings)),
        (
            "measurements",
            Json::Arr(rows.iter().map(Row::to_json).collect()),
        ),
    ]);
    let dir = std::path::PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("dispatch: could not create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("BENCH_dispatch.json");
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => eprintln!("dispatch: wrote {}", path.display()),
        Err(e) => eprintln!("dispatch: could not write results: {e}"),
    }
    match safegen_telemetry::flush() {
        Ok(Some(summary)) => eprintln!("dispatch: metrics written ({})", summary.display()),
        Ok(None) => {}
        Err(e) => eprintln!("dispatch: failed to write metrics: {e}"),
    }
}
