//! Measures the mid-end pass pipeline (CSE, copy propagation, DCE,
//! register allocation) on the paper suite: executed instructions,
//! floating-point operation counts and runtime of each workload compiled
//! through the optimizing pipeline vs with passes disabled
//! (`SAFEGEN_PASSES=none`), under both the unsound original and the
//! flagship `f64a-dspv` configuration.
//!
//! The per-repetition `instrs`/`fp_ops` ranges of both variants land in
//! `results/BENCH_passes.json` (the unoptimized rows carry a ` [no-opt]`
//! config suffix). Usage:
//! `cargo run --release -p safegen-bench --bin passes`

use safegen_api::RunConfig;
use safegen_bench::{harness, Measurement, Workload};

fn main() {
    harness::announce("passes");
    let suite = Workload::paper_suite();
    let k = 8;
    let mut rows: Vec<Measurement> = Vec::new();
    let mut pairs: Vec<(Measurement, Measurement)> = Vec::new();

    for w in &suite {
        for cfg in [RunConfig::unsound(), RunConfig::affine_f64(k)] {
            let (opt, unopt) = harness::measure_pass_impact(w, &cfg);
            pairs.push((opt.clone(), unopt.clone()));
            rows.push(opt);
            rows.push(unopt);
        }
        eprintln!("passes: {} done", w.name);
    }

    harness::print_csv(&rows);

    println!("\n== pass pipeline impact (optimizing vs none) ==");
    println!(
        "{:<8} {:<24} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "bench", "config", "instrs", "instrs[no]", "saved", "fp_ops", "fp[no]"
    );
    for (opt, unopt) in &pairs {
        let saved = if unopt.instrs.median > 0.0 {
            100.0 * (1.0 - opt.instrs.median / unopt.instrs.median)
        } else {
            0.0
        };
        println!(
            "{:<8} {:<24} {:>12.0} {:>12.0} {:>8.1}% {:>9.0} {:>9.0}",
            opt.bench,
            opt.config,
            opt.instrs.median,
            unopt.instrs.median,
            saved,
            opt.fp_ops.median,
            unopt.fp_ops.median
        );
        assert!(
            opt.instrs.median <= unopt.instrs.median,
            "{} under {}: the pipeline must never add executed instructions",
            opt.bench,
            opt.config
        );
    }

    harness::export("passes", &rows);
}
