//! Regenerates Fig. 8 of the paper: certified accuracy vs slowdown for
//! the SafeGen configurations on each benchmark, sweeping the symbol
//! budget k = 8, 12, …, 48.
//!
//! Configurations plotted (paper notation):
//! `f64a-srnn`, `f64a-ssnn`, `f64a-smpn`, `f64a-dsnn`, `f64a-dsnv`,
//! `f64a-dspv`, `dda-dspn`.
//!
//! Output: CSV series (one row per point) plus a textual Pareto summary
//! per benchmark. Usage:
//! `cargo run --release -p safegen-bench --bin fig8`

use safegen_api::{DomainKind, Engine, RunConfig};
use safegen_bench::{harness, Measurement, Workload};

fn configs(k: usize) -> Vec<RunConfig> {
    let mut v = vec![
        RunConfig::mnemonic(k, "srnn").unwrap(),
        RunConfig::mnemonic(k, "ssnn").unwrap(),
        RunConfig::mnemonic(k, "smpn").unwrap(),
        RunConfig::mnemonic(k, "dsnn").unwrap(),
        RunConfig::mnemonic(k, "dsnv").unwrap(),
        RunConfig::mnemonic(k, "dspv").unwrap(),
    ];
    // dda-dspn: double-double centers, prioritized, scalar.
    let mut dd = RunConfig::affine_dd(k);
    dd.kind = DomainKind::AffineDd;
    v.push(dd);
    v
}

fn main() {
    harness::announce("fig8");
    let ks: Vec<usize> = if harness::quick() {
        vec![8, 16, 32]
    } else {
        (8..=48).step_by(4).collect()
    };
    let suite = Workload::paper_suite();
    let mut rows: Vec<Measurement> = Vec::new();

    for w in &suite {
        let program = Engine::new()
            .compile(&w.source, w.name)
            .expect("workload compiles");
        for &k in &ks {
            for cfg in configs(k) {
                rows.push(harness::measure(w, &program, &cfg));
            }
        }
        eprintln!("fig8: {} done", w.name);
    }

    harness::print_csv(&rows);

    // Pareto front per benchmark (maximal accuracy for minimal slowdown).
    for w in &suite {
        let mut pts: Vec<&Measurement> = rows.iter().filter(|r| r.bench == w.name).collect();
        pts.sort_by(|a, b| a.slowdown.partial_cmp(&b.slowdown).unwrap());
        println!(
            "\n== Fig. 8 {}: Pareto front (slowdown ↑, accuracy must ↑) ==",
            w.name
        );
        let mut best = f64::NEG_INFINITY;
        for p in pts {
            if p.acc_bits > best {
                best = p.acc_bits;
                println!(
                    "{:<24} acc {:>6.1} bits   slowdown {:>8.1}x",
                    p.config, p.acc_bits, p.slowdown
                );
            }
        }
    }

    // The paper's headline: f64a-dspv k=8 slowdown vs the unsound code.
    println!("\n== f64a-dspv (k=8) slowdown vs unsound original ==");
    for w in &suite {
        if let Some(m) = rows
            .iter()
            .find(|r| r.bench == w.name && r.config == "f64a-dspv (k=8)")
        {
            println!("{:<8} {:>8.1}x (paper: 48x-185x)", w.name, m.slowdown);
        }
    }

    harness::export("fig8", &rows);
}
