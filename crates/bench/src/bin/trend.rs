//! Bench-result trend checker: validates every `results/BENCH_*.json`.
//!
//! The bench binaries each export a one-line JSON document; downstream
//! tooling (dashboards, regression diffing across commits) trusts those
//! files to be well-formed. A truncated write — disk full, an
//! interrupted bench run — would otherwise sit silently in `results/`
//! until something chokes on it much later. This checker fails fast:
//!
//! * every `BENCH_*.json` must parse under the repo's strict JSON
//!   parser (the same one the serve protocol uses — duplicate keys are
//!   an error, not a shrug);
//! * the document must be a non-empty object;
//! * it must self-identify via a `"binary"` string field, and that name
//!   must match the `BENCH_<name>.json` filename;
//! * every export must carry `"base_seed"` (the knob that makes bench
//!   runs reproducible) and `"reps"` where the harness applies.
//!
//! Exits nonzero on any violation, listing every bad file (not just the
//! first). An empty or missing `results/` directory is also an error
//! when `--require N` is given (the CI gate passes the number of
//! exports it expects); without it, zero files is a no-op success so
//! the checker can run on fresh clones.
//!
//! ```text
//! cargo run --release -p safegen-bench --bin trend [-- --require N] [--dir DIR]
//! ```

use safegen_telemetry::json::{parse, Json};
use std::path::PathBuf;
use std::process::ExitCode;

/// One validated export: file name and the parsed document.
struct Export {
    name: String,
    doc: Json,
}

/// Validates a single `BENCH_*.json` file's contents, returning a
/// human-readable complaint on failure.
fn check_file(stem: &str, text: &str) -> Result<Json, String> {
    if text.trim().is_empty() {
        return Err("file is empty".into());
    }
    let doc = parse(text.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(fields) = &doc else {
        return Err("top level is not an object".into());
    };
    if fields.is_empty() {
        return Err("top-level object is empty".into());
    }
    let Some(binary) = doc.get("binary").and_then(|v| v.as_str()) else {
        return Err("missing string field `binary`".into());
    };
    if binary != stem {
        return Err(format!(
            "field `binary` is \"{binary}\" but the file is BENCH_{stem}.json"
        ));
    }
    if doc.get("base_seed").and_then(|v| v.as_f64()).is_none() {
        return Err("missing numeric field `base_seed`".into());
    }
    Ok(doc)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let dir = PathBuf::from(flag("--dir").unwrap_or("results"));
    let require: usize = match flag("--require").map(str::parse).transpose() {
        Ok(n) => n.unwrap_or(0),
        Err(e) => {
            eprintln!("trend: bad --require: {e}");
            return ExitCode::from(2);
        }
    };

    let mut names: Vec<(String, PathBuf)> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let file = path.file_name()?.to_str()?;
                let stem = file.strip_prefix("BENCH_")?.strip_suffix(".json")?;
                Some((stem.to_string(), path.clone()))
            })
            .collect(),
        Err(e) if require == 0 => {
            eprintln!(
                "trend: {} not readable ({e}); nothing to check",
                dir.display()
            );
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("trend: {} not readable: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    names.sort();

    let mut ok: Vec<Export> = Vec::new();
    let mut bad: Vec<(String, String)> = Vec::new();
    for (stem, path) in &names {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                bad.push((stem.clone(), format!("unreadable: {e}")));
                continue;
            }
        };
        match check_file(stem, &text) {
            Ok(doc) => ok.push(Export {
                name: stem.clone(),
                doc,
            }),
            Err(why) => bad.push((stem.clone(), why)),
        }
    }

    for e in &ok {
        let reps = e
            .doc
            .get("reps")
            .and_then(|v| v.as_f64())
            .map(|r| format!(", reps {r}"))
            .unwrap_or_default();
        println!("trend: BENCH_{}.json ok ({} fields{reps})", e.name, {
            let Json::Obj(fields) = &e.doc else {
                unreachable!("check_file only passes objects")
            };
            fields.len()
        });
    }
    for (name, why) in &bad {
        eprintln!("trend: BENCH_{name}.json FAILED: {why}");
    }
    if !bad.is_empty() {
        eprintln!("trend: {} of {} export(s) invalid", bad.len(), names.len());
        return ExitCode::FAILURE;
    }
    if ok.len() < require {
        eprintln!(
            "trend: found {} valid export(s) in {}, --require {require}",
            ok.len(),
            dir.display()
        );
        return ExitCode::FAILURE;
    }
    println!("trend: {} export(s) valid", ok.len());
    ExitCode::SUCCESS
}
