//! Fixpoint-engine benchmark: iterate-and-widen vs. full unrolling.
//!
//! The fixpoint engine's value proposition is asymptotic: unrolling a
//! loop costs time linear in the trip count, while the widened solve is
//! O(iterations-to-stabilize) regardless of `n`. This binary measures
//! both sides of that trade on the golden loop kernels
//! (`tests/fixpoint_golden.rs`):
//!
//! * **unroll** — concrete unrolled evaluation at a ladder of trip
//!   counts (256, 4096, 65536), showing the linear cost;
//! * **fixpoint** — the widened solve at `n = 2^40`, a trip count no
//!   unroller could touch, with the solver's iteration/widening/
//!   narrowing counts and the final enclosure width;
//! * **amortization** — unroll time at the largest measured `n`
//!   divided by the fixpoint solve time (the ratio only grows with
//!   `n`, so this is a floor).
//!
//! Writes `results/BENCH_fixpoint.json`. `SAFEGEN_QUICK=1` shrinks the
//! unroll ladder; `SAFEGEN_REPS` sets the repetitions per timing.

use safegen_api::{ArgValue, Engine, EvalRequest, LoopMode, Program, RunConfig};
use safegen_bench::harness;
use safegen_telemetry::json::Json;
use std::time::Instant;

/// One loop kernel under test: a name, its source, and the float
/// arguments (the trailing `int n` trip count is supplied per mode).
struct Kernel {
    name: &'static str,
    src: &'static str,
    float_args: &'static [f64],
}

const KERNELS: &[Kernel] = &[
    Kernel {
        name: "decay",
        src: "double f(double x, int n) {
            double acc = x;
            int t = 0;
            while (t < n) { acc = 0.9 * acc + 1.0; t = t + 1; }
            return acc; }",
        float_args: &[1.0],
    },
    Kernel {
        name: "jacobi2",
        src: "double f(double a, double b, int n) {
            double u = a;
            double v = b;
            int t = 0;
            while (t < n) {
                u = 0.5 * (v + 1.0);
                v = 0.5 * (u + 1.0);
                t = t + 1;
            }
            return u + v; }",
        float_args: &[0.0, 0.0],
    },
    Kernel {
        name: "divergent",
        src: "double f(double x, int n) {
            double acc = x;
            int t = 0;
            while (t < n) { acc = acc * 2.0 + 1.0; t = t + 1; }
            return acc; }",
        float_args: &[1.0],
    },
];

fn args_with_trip(kernel: &Kernel, n: i64) -> Vec<ArgValue> {
    let mut args: Vec<ArgValue> = kernel
        .float_args
        .iter()
        .map(|&x| ArgValue::Float(x))
        .collect();
    args.push(ArgValue::Int(n));
    args
}

/// Median wall time in nanoseconds of `reps` runs of `f`.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Measures one kernel under one analysis config, returning its JSON row.
fn measure(kernel: &Kernel, program: &Program, config: &RunConfig, reps: usize) -> Json {
    let unroll_ns: Vec<Json> = unroll_ladder()
        .iter()
        .map(|&n| {
            let args = args_with_trip(kernel, n);
            let cfg = config.clone().with_loop_mode(LoopMode::Unroll);
            let ns = time_ns(reps, || {
                program
                    .eval(&EvalRequest::new("f", cfg.clone()).with_args(args.clone()))
                    .unwrap();
            });
            Json::obj(vec![
                ("n", Json::Num(n as f64)),
                ("median_ns", Json::Num(ns)),
            ])
        })
        .collect();
    let largest_unroll_ns = unroll_ns
        .last()
        .and_then(|j| j.get("median_ns"))
        .and_then(|v| v.as_f64())
        .unwrap_or(f64::NAN);

    let fix_args = args_with_trip(kernel, 1 << 40);
    let fix_cfg = config
        .clone()
        .with_loop_mode(LoopMode::Fixpoint)
        .with_unroll_budget(4);
    let fix_req = EvalRequest::new("f", fix_cfg).with_args(fix_args);
    let fix_ns = time_ns(reps, || {
        program.eval(&fix_req).unwrap();
    });
    let result = program.eval(&fix_req).unwrap();
    let report = result.report();
    let (lo, hi) = report.ret.expect("kernel returns a value");

    Json::obj(vec![
        ("bench", Json::from(kernel.name)),
        ("config", Json::from(config.label())),
        ("unroll", Json::Arr(unroll_ns)),
        (
            "fixpoint",
            Json::obj(vec![
                ("n", Json::Num((1u64 << 40) as f64)),
                ("median_ns", Json::Num(fix_ns)),
                ("lo", Json::Num(lo)),
                ("hi", Json::Num(hi)),
                ("loops", Json::from(report.stats.fixpoint_loops)),
                ("iters", Json::from(report.stats.fixpoint_iters)),
                ("widenings", Json::from(report.stats.widenings)),
                ("narrowings", Json::from(report.stats.narrowings)),
            ]),
        ),
        ("amortization_floor", Json::Num(largest_unroll_ns / fix_ns)),
    ])
}

fn unroll_ladder() -> &'static [i64] {
    if harness::quick() {
        &[256, 4096]
    } else {
        &[256, 4096, 65536]
    }
}

fn main() {
    harness::announce("fixpoint");
    let reps = harness::reps();
    let mut rows = Vec::new();
    for kernel in KERNELS {
        let program = Engine::new()
            .compile(kernel.src, kernel.name)
            .expect("golden kernel compiles");
        for config in [RunConfig::interval_f64(), RunConfig::affine_f64(8)] {
            let row = measure(kernel, &program, &config, reps);
            if let (Some(ns), Some(ratio)) = (
                row.get("fixpoint")
                    .and_then(|f| f.get("median_ns"))
                    .and_then(|v| v.as_f64()),
                row.get("amortization_floor").and_then(|v| v.as_f64()),
            ) {
                println!(
                    "{:<10} {:<18} fixpoint {:>10.0} ns  amortization ≥ {:>8.1}x",
                    kernel.name,
                    config.label(),
                    ns,
                    ratio
                );
            }
            rows.push(row);
        }
    }

    let doc = Json::obj(vec![
        ("binary", Json::from("fixpoint")),
        ("reps", Json::from(reps)),
        ("base_seed", Json::from(harness::BASE_SEED)),
        ("measurements", Json::Arr(rows)),
    ]);
    let path = std::path::Path::new("results").join("BENCH_fixpoint.json");
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("fixpoint: could not create results/: {e}");
        std::process::exit(1);
    }
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => eprintln!("fixpoint: wrote {}", path.display()),
        Err(e) => {
            eprintln!("fixpoint: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = safegen_telemetry::flush() {
        eprintln!("fixpoint: failed to write metrics: {e}");
    }
}
