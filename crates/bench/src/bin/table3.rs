//! Regenerates Table III of the paper: certified accuracy (top) and
//! speedup over `ss` (bottom) of the placement × fusion combinations
//! `ss`, `sm`, `so`, `ds` at k = 40, without prioritization.
//!
//! Usage: `cargo run --release -p safegen-bench --bin table3`

use safegen_api::{Engine, RunConfig};
use safegen_bench::{harness, Workload};

fn main() {
    harness::announce("table3");
    let k = 40;
    let combos = ["ssnn", "smnn", "sonn", "dsnn"];
    let suite = Workload::paper_suite();

    let mut rows = Vec::new();
    for w in &suite {
        let program = Engine::new()
            .compile(&w.source, w.name)
            .expect("workload compiles");
        for m in combos {
            let cfg = RunConfig::mnemonic(k, m).unwrap();
            rows.push(harness::measure(w, &program, &cfg));
        }
    }

    harness::print_csv(&rows);

    // Table III layout: accuracy block, then speedup-over-ss block.
    println!("\n== Table III (top): certified accuracy in bits, k = {k} ==");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "ss", "sm", "so", "ds"
    );
    for w in &suite {
        let acc: Vec<f64> = combos
            .iter()
            .map(|m| {
                rows.iter()
                    .find(|r| r.bench == w.name && r.config.contains(&format!("-{m}")))
                    .unwrap()
                    .acc_bits
            })
            .collect();
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            w.name, acc[0], acc[1], acc[2], acc[3]
        );
    }

    println!("\n== Table III (bottom): speedup over ss, k = {k} ==");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "ss", "sm", "so", "ds"
    );
    for w in &suite {
        let times: Vec<f64> = combos
            .iter()
            .map(|m| {
                rows.iter()
                    .find(|r| r.bench == w.name && r.config.contains(&format!("-{m}")))
                    .unwrap()
                    .runtime
            })
            .collect();
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            w.name,
            1.0,
            times[0] / times[1],
            times[0] / times[2],
            times[0] / times[3]
        );
    }

    harness::export("table3", &rows);
}
