//! Ablation sweeps: how certified accuracy responds to iteration count,
//! symbol budget, and prioritization — the tuning tool behind the
//! DESIGN.md design-choice ablations.
//!
//! Usage:
//! `cargo run --release -p safegen-bench --bin sweep [henon|fgm|prio]`

use safegen_api::{Engine, Placement, Program, RunConfig};
use safegen_bench::{harness, Measurement, Workload, WorkloadKind};

/// Measures and tags the configuration label with the sweep variable so
/// each point stays identifiable in the exported JSON.
fn point(w: &Workload, c: &Program, cfg: &RunConfig, tag: &str) -> Measurement {
    let mut m = harness::measure(w, c, cfg);
    m.config = format!("{} {tag}", m.config);
    m
}

fn henon_sweep(rows: &mut Vec<Measurement>) {
    println!("henon: accuracy vs iteration count (IA should die, AA survive)");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "iters", "IGen-f64", "IGen-dd", "k=8", "k=16", "k=48"
    );
    for iters in [40usize, 60, 80, 100, 120] {
        let w = Workload::new(WorkloadKind::Henon { iters });
        let c = Engine::new().compile(&w.source, w.name).unwrap();
        let tag = format!("(iters={iters})");
        let mut acc = |cfg: &RunConfig| {
            let m = point(&w, &c, cfg, &tag);
            let a = m.acc_bits;
            rows.push(m);
            a
        };
        println!(
            "{:<6} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            iters,
            acc(&RunConfig::interval_f64()),
            acc(&RunConfig::interval_dd()),
            acc(&RunConfig::affine_f64(8)),
            acc(&RunConfig::affine_f64(16)),
            acc(&RunConfig::affine_f64(48)),
        );
    }
}

fn fgm_sweep(rows: &mut Vec<Measurement>) {
    println!("fgm: accuracy vs iteration count");
    println!(
        "{:<6} {:>9} {:>9} {:>9}",
        "iters", "IGen-f64", "k=8", "k=32"
    );
    for iters in [20usize, 40, 60, 80] {
        let w = Workload::new(WorkloadKind::Fgm { n: 8, iters });
        let c = Engine::new().compile(&w.source, w.name).unwrap();
        let tag = format!("(iters={iters})");
        let mut acc = |cfg: &RunConfig| {
            let m = point(&w, &c, cfg, &tag);
            let a = m.acc_bits;
            rows.push(m);
            a
        };
        println!(
            "{:<6} {:>9.1} {:>9.1} {:>9.1}",
            iters,
            acc(&RunConfig::interval_f64()),
            acc(&RunConfig::affine_f64(8)),
            acc(&RunConfig::affine_f64(32)),
        );
    }
}

fn prio_sweep(rows: &mut Vec<Measurement>) {
    println!("prioritization ablation: dspv (with) vs dsnv (without), per k");
    for w in Workload::paper_suite() {
        let c = Engine::new().compile(&w.source, w.name).unwrap();
        print!("{:<8}", w.name);
        for k in [8usize, 16, 32] {
            let with = point(&w, &c, &RunConfig::affine_f64(k), "(prio)");
            let without = point(
                &w,
                &c,
                &RunConfig::mnemonic(k, "dsnv").unwrap(),
                "(no-prio)",
            );
            print!(
                "  k={k}: {:>5.1} vs {:>5.1} ({:+.1})",
                with.acc_bits,
                without.acc_bits,
                with.acc_bits - without.acc_bits
            );
            rows.push(with);
            rows.push(without);
        }
        println!();
    }
}

fn capacity_sweep(rows: &mut Vec<Measurement>) {
    println!("variable-capacity extension (paper Sec. VIII future work):");
    println!("sorted placement, k = 24; reuse-free ops throttled to k_low");
    println!(
        "{:<10} {:>10} {:>12} {:>12}",
        "k_low", "acc(bits)", "runtime", "vs uniform"
    );
    for w in Workload::paper_suite() {
        let c = Engine::new().compile(&w.source, w.name).unwrap();
        let mut uniform = RunConfig::mnemonic(24, "sspn").unwrap();
        uniform.aa.placement = Placement::Sorted;
        let base = point(&w, &c, &uniform, "(uniform)");
        println!(
            "{}: uniform acc {:.1} bits, runtime {:.3e}s",
            w.name, base.acc_bits, base.runtime
        );
        let base_runtime = base.runtime;
        rows.push(base);
        for k_low in [2usize, 4, 8] {
            let mut cfg = uniform.clone();
            cfg.capacity_low = Some(k_low);
            let m = point(&w, &c, &cfg, &format!("(k_low={k_low})"));
            println!(
                "{:<10} {:>10.1} {:>11.3e}s {:>11.2}x",
                k_low,
                m.acc_bits,
                m.runtime,
                base_runtime / m.runtime
            );
            rows.push(m);
        }
    }
}

fn main() {
    harness::announce("sweep");
    let which = std::env::args().nth(1).unwrap_or_else(|| "henon".into());
    let mut rows: Vec<Measurement> = Vec::new();
    match which.as_str() {
        "henon" => henon_sweep(&mut rows),
        "fgm" => fgm_sweep(&mut rows),
        "prio" => prio_sweep(&mut rows),
        "capacity" => capacity_sweep(&mut rows),
        other => {
            eprintln!("unknown sweep `{other}`; expected henon|fgm|prio|capacity");
            std::process::exit(1);
        }
    }
    harness::export(&format!("sweep_{which}"), &rows);
}
