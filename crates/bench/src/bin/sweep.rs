//! Ablation sweeps: how certified accuracy responds to iteration count,
//! symbol budget, and prioritization — the tuning tool behind the
//! DESIGN.md design-choice ablations.
//!
//! Usage:
//! `cargo run --release -p safegen-bench --bin sweep [henon|fgm|prio]`

use safegen::{Compiler, RunConfig};
use safegen_bench::{harness, Workload, WorkloadKind};

fn henon_sweep() {
    println!("henon: accuracy vs iteration count (IA should die, AA survive)");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "iters", "IGen-f64", "IGen-dd", "k=8", "k=16", "k=48"
    );
    for iters in [40usize, 60, 80, 100, 120] {
        let w = Workload::new(WorkloadKind::Henon { iters });
        let c = Compiler::new().compile(&w.source).unwrap();
        let acc = |cfg: &RunConfig| harness::measure(&w, &c, cfg).acc_bits;
        println!(
            "{:<6} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            iters,
            acc(&RunConfig::interval_f64()),
            acc(&RunConfig::interval_dd()),
            acc(&RunConfig::affine_f64(8)),
            acc(&RunConfig::affine_f64(16)),
            acc(&RunConfig::affine_f64(48)),
        );
    }
}

fn fgm_sweep() {
    println!("fgm: accuracy vs iteration count");
    println!(
        "{:<6} {:>9} {:>9} {:>9}",
        "iters", "IGen-f64", "k=8", "k=32"
    );
    for iters in [20usize, 40, 60, 80] {
        let w = Workload::new(WorkloadKind::Fgm { n: 8, iters });
        let c = Compiler::new().compile(&w.source).unwrap();
        let acc = |cfg: &RunConfig| harness::measure(&w, &c, cfg).acc_bits;
        println!(
            "{:<6} {:>9.1} {:>9.1} {:>9.1}",
            iters,
            acc(&RunConfig::interval_f64()),
            acc(&RunConfig::affine_f64(8)),
            acc(&RunConfig::affine_f64(32)),
        );
    }
}

fn prio_sweep() {
    println!("prioritization ablation: dspv (with) vs dsnv (without), per k");
    for w in Workload::paper_suite() {
        let c = Compiler::new().compile(&w.source).unwrap();
        print!("{:<8}", w.name);
        for k in [8usize, 16, 32] {
            let with = harness::measure(&w, &c, &RunConfig::affine_f64(k)).acc_bits;
            let without =
                harness::measure(&w, &c, &RunConfig::mnemonic(k, "dsnv").unwrap()).acc_bits;
            print!(
                "  k={k}: {with:>5.1} vs {without:>5.1} ({:+.1})",
                with - without
            );
        }
        println!();
    }
}

fn capacity_sweep() {
    println!("variable-capacity extension (paper Sec. VIII future work):");
    println!("sorted placement, k = 24; reuse-free ops throttled to k_low");
    println!(
        "{:<10} {:>10} {:>12} {:>12}",
        "k_low", "acc(bits)", "runtime", "vs uniform"
    );
    for w in Workload::paper_suite() {
        let c = Compiler::new().compile(&w.source).unwrap();
        let mut uniform = RunConfig::mnemonic(24, "sspn").unwrap();
        uniform.aa.placement = safegen::Placement::Sorted;
        let base = harness::measure(&w, &c, &uniform);
        println!(
            "{}: uniform acc {:.1} bits, runtime {:.3e}s",
            w.name, base.acc_bits, base.runtime
        );
        for k_low in [2usize, 4, 8] {
            let mut cfg = uniform.clone();
            cfg.capacity_low = Some(k_low);
            let m = harness::measure(&w, &c, &cfg);
            println!(
                "{:<10} {:>10.1} {:>11.3e}s {:>11.2}x",
                k_low,
                m.acc_bits,
                m.runtime,
                base.runtime / m.runtime
            );
        }
    }
}

fn main() {
    harness::announce("sweep");
    let which = std::env::args().nth(1).unwrap_or_else(|| "henon".into());
    match which.as_str() {
        "henon" => henon_sweep(),
        "fgm" => fgm_sweep(),
        "prio" => prio_sweep(),
        "capacity" => capacity_sweep(),
        other => {
            eprintln!("unknown sweep `{other}`; expected henon|fgm|prio|capacity");
            std::process::exit(1);
        }
    }
}
