//! Regenerates Fig. 9 of the paper: SafeGen (`f64a-dspv`, k = 8…48)
//! against the prior-work baselines —
//!
//! * `yalaa-aff0`  (full AA, C++ library style),
//! * `yalaa-aff1`  (input symbols + dedicated noise),
//! * `ceres-affine` (bounded AA with compact-on-overflow, k = 8…48),
//! * `IGen-f64` / `IGen-dd` (interval arithmetic),
//! * `f64a-dspv-k̄` (large k: full AA through SafeGen's runtime).
//!
//! Also prints the paper's two headline ratios: SafeGen vs Ceres runtime
//! at equal k (paper: 30–70×) and SafeGen-full-k vs yalaa-aff0 (paper:
//! 3–6×). Usage: `cargo run --release -p safegen-bench --bin fig9`

use safegen_api::{Engine, Placement, RunConfig};
use safegen_bench::{harness, Measurement, Workload, WorkloadKind};

/// The paper's "large enough that no fusion occurs" budgets.
fn full_k(kind: WorkloadKind) -> usize {
    match kind {
        WorkloadKind::Henon { .. } => 800,
        WorkloadKind::Sor { .. } => 13_000,
        WorkloadKind::Fgm { .. } => 6_000,
        // ~2n³/3 eliminations plus pivoting for n = 20.
        WorkloadKind::Luf { .. } => 8_000,
    }
}

fn main() {
    harness::announce("fig9");
    let ks: Vec<usize> = if harness::quick() {
        vec![8, 16, 32]
    } else {
        (8..=48).step_by(4).collect()
    };
    let suite = Workload::paper_suite();
    let mut rows: Vec<Measurement> = Vec::new();

    for w in &suite {
        let program = Engine::new()
            .compile(&w.source, w.name)
            .expect("workload compiles");
        for &k in &ks {
            rows.push(harness::measure(w, &program, &RunConfig::affine_f64(k)));
            rows.push(harness::measure(w, &program, &RunConfig::ceres(k)));
        }
        rows.push(harness::measure(w, &program, &RunConfig::yalaa_aff0()));
        rows.push(harness::measure(w, &program, &RunConfig::yalaa_aff1()));
        rows.push(harness::measure(w, &program, &RunConfig::interval_f64()));
        rows.push(harness::measure(w, &program, &RunConfig::interval_dd()));
        // Full-AA SafeGen (f64a-dspv-k̄): sorted placement, huge k.
        let mut full = RunConfig::affine_f64(full_k(w.kind));
        full.aa.placement = Placement::Sorted;
        full.aa.vectorized = false;
        rows.push(harness::measure(w, &program, &full));
        eprintln!("fig9: {} done", w.name);
    }

    harness::print_csv(&rows);

    println!("\n== SafeGen vs Ceres at equal k (runtime ratio; paper: 30-70x) ==");
    for w in &suite {
        for &k in &ks {
            let sg = rows
                .iter()
                .find(|r| r.bench == w.name && r.config == format!("f64a-dspv (k={k})"));
            let ce = rows
                .iter()
                .find(|r| r.bench == w.name && r.config == format!("ceres-affine (k={k})"));
            if let (Some(sg), Some(ce)) = (sg, ce) {
                println!(
                    "{:<8} k={:<3} ceres/safegen = {:>6.1}x   acc: safegen {:>5.1} vs ceres {:>5.1}",
                    w.name,
                    k,
                    ce.runtime / sg.runtime,
                    sg.acc_bits,
                    ce.acc_bits
                );
            }
        }
    }

    println!("\n== Full AA: yalaa-aff0 vs SafeGen f64a-dspv-k̄ (paper: 3-6x) ==");
    for w in &suite {
        let ya = rows
            .iter()
            .find(|r| r.bench == w.name && r.config == "yalaa-aff0");
        let fk = rows.iter().find(|r| {
            r.bench == w.name && r.config.starts_with("f64a-") && {
                let k: usize = r
                    .config
                    .split("k=")
                    .nth(1)
                    .and_then(|s| s.trim_end_matches(')').parse().ok())
                    .unwrap_or(0);
                k >= 100
            }
        });
        if let (Some(ya), Some(fk)) = (ya, fk) {
            println!(
                "{:<8} yalaa/safegen-full = {:>6.1}x   acc: safegen {:>5.1} vs yalaa {:>5.1}",
                w.name,
                ya.runtime / fk.runtime,
                fk.acc_bits,
                ya.acc_bits
            );
        }
    }

    println!("\n== IA comparison (paper: IA loses all bits on henon; fgm 7 bits) ==");
    for w in &suite {
        let ia = rows
            .iter()
            .find(|r| r.bench == w.name && r.config == "IGen-f64");
        let iadd = rows
            .iter()
            .find(|r| r.bench == w.name && r.config == "IGen-dd");
        let sg8 = rows
            .iter()
            .find(|r| r.bench == w.name && r.config == "f64a-dspv (k=8)");
        if let (Some(ia), Some(iadd), Some(sg8)) = (ia, iadd, sg8) {
            println!(
                "{:<8} IGen-f64: {:>5.1} bits  IGen-dd: {:>5.1} bits  f64a-dspv(k=8): {:>5.1} bits \
                 (slowdown {:.0}x vs IGen-f64 {:.0}x)",
                w.name, ia.acc_bits, iadd.acc_bits, sg8.acc_bits, sg8.slowdown, ia.slowdown
            );
        }
    }

    harness::export("fig9", &rows);
}
