//! Regenerates Fig. 10 of the paper: certified accuracy of `f64a-dspv`
//! on `sor` and `luf` as the input matrix size `n` grows.
//!
//! The paper's observation: `sor` (computation depth O(1) per cell)
//! keeps roughly constant accuracy for n > 30, while `luf` (depth O(n))
//! decays to zero certified bits by n ≈ 60.
//!
//! Usage: `cargo run --release -p safegen-bench --bin fig10`

use safegen_api::{Engine, RunConfig};
use safegen_bench::{harness, Measurement, Workload, WorkloadKind};

fn main() {
    harness::announce("fig10");
    let sizes: Vec<usize> = if harness::quick() {
        vec![10, 20, 40]
    } else {
        vec![10, 20, 30, 40, 50, 60]
    };
    let k = 16;
    let mut rows: Vec<Measurement> = Vec::new();

    for &n in &sizes {
        for w in [
            Workload::new(WorkloadKind::Sor { n, iters: 10 }),
            Workload::new(WorkloadKind::Luf { n }),
        ] {
            let program = Engine::new()
                .compile(&w.source, w.name)
                .expect("workload compiles");
            let mut m = harness::measure(&w, &program, &RunConfig::affine_f64(k));
            m.config = format!("{} (n={n})", m.config);
            rows.push(m);
            eprintln!("fig10: {} n={} done", w.name, n);
        }
    }

    harness::print_csv(&rows);

    println!("\n== Fig. 10: certified bits of f64a-dspv (k={k}) vs n ==");
    println!("{:<6} {:>10} {:>10}", "n", "sor", "luf");
    for &n in &sizes {
        let get = |bench: &str| {
            rows.iter()
                .find(|r| r.bench == bench && r.config.contains(&format!("(n={n})")))
                .map(|r| r.acc_bits)
                .unwrap_or(f64::NAN)
        };
        println!("{:<6} {:>10.1} {:>10.1}", n, get("sor"), get("luf"));
    }
    println!("\npaper shape: sor ~flat for n>30; luf decays to 0 bits by n~60");

    harness::export("fig10", &rows);
}
