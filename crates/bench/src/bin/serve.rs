//! Serving benchmark: compile-once/serve-many amortization.
//!
//! Measures what the artifact + daemon layer buys over the
//! compile-every-time path (EXPERIMENTS.md, "Serve benchmark"):
//!
//! * **cold (CLI)** — one full `safegen run file.c` subprocess per
//!   request: process start, parse, analysis, pass pipeline, variant
//!   compilation, evaluation. This is the per-request cost without the
//!   daemon and the baseline the amortization ratio is against;
//! * **cold (in-process)** — the library-level `compile → evaluate`
//!   path with no process spawn, reported alongside for transparency;
//! * **artifact load** — strict validation of the `.sga` bytes
//!   (`Engine::load_file`), paid once per daemon start;
//! * **warm** — request latency against a running daemon (each request
//!   is a fresh Unix-socket connection: connect → JSON line → eval →
//!   response), reported as p50/p99 and requests/sec;
//! * **concurrent** — the same with `SAFEGEN_THREADS` client threads
//!   hammering the daemon at once (thread-per-connection on both ends).
//!
//! Writes `results/BENCH_serve.json`. The headline number is
//! `amortization` = cold CLI p50 / warm p50; the acceptance bar for
//! this repo is ≥ 10× (the daemon answers from precompiled immutable
//! programs, so a warm request pays VM execution and socket overhead
//! only — no process start, parsing, analysis, or pass pipeline).

use rand::rngs::StdRng;
use rand::SeedableRng;
use safegen_api::serve::{request, serve, wait_ready, ServeOptions};
use safegen_api::{ArgValue, BuildOptions, Engine, EvalRequest, RunConfig};
use safegen_bench::harness;
use safegen_bench::workloads::{Workload, WorkloadKind};
use safegen_telemetry::json::Json;
use std::path::PathBuf;
use std::time::Instant;

fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
    v[idx]
}

/// Encodes VM argument values as serve-protocol JSON.
fn args_json(args: &[ArgValue]) -> Json {
    Json::Arr(
        args.iter()
            .map(|a| match a {
                ArgValue::Float(x) => Json::obj(vec![("float", Json::Num(*x))]),
                ArgValue::Int(n) => Json::obj(vec![("int", Json::Num(*n as f64))]),
                ArgValue::Array(xs) => Json::obj(vec![(
                    "array",
                    Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect()),
                )]),
            })
            .collect(),
    )
}

fn eval_request(func: &str, k: usize, args: &[ArgValue]) -> Json {
    Json::obj(vec![
        ("op", Json::from("eval")),
        ("func", Json::from(func)),
        ("config", Json::from("dspv")),
        ("k", Json::from(k)),
        ("args", args_json(args)),
    ])
}

fn main() {
    harness::announce("serve");
    let quick = harness::quick();
    let k = 8usize;
    let w = Workload::new(WorkloadKind::Henon {
        iters: if quick { 10 } else { 50 },
    });
    let reps = harness::reps().max(3);
    let warm_requests = if quick { 40 } else { 200 };

    let input = |i: u64| {
        let mut rng = StdRng::seed_from_u64(harness::BASE_SEED ^ i);
        w.args(&mut rng)
    };
    let config = RunConfig::affine_f64(k);

    // --- Cold path (CLI): one `safegen run` subprocess per request. ---
    // This is what evaluating without the daemon actually costs: process
    // start + parse + analysis + pass pipeline + variant compile + run.
    let safegen_bin = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .join("safegen");
    let dir = std::env::temp_dir();
    let src_path = dir.join(format!("bench-serve-{}.c", std::process::id()));
    std::fs::write(&src_path, &w.source).expect("source writes");
    let mut cold = Vec::with_capacity(reps);
    for i in 0..reps {
        let mut cmd = std::process::Command::new(&safegen_bin);
        cmd.arg("run").arg(&src_path).args([
            "--fn",
            w.func,
            "--config",
            "dspv",
            "--k",
            &k.to_string(),
        ]);
        for a in input(i as u64) {
            match a {
                ArgValue::Float(x) => {
                    cmd.args(["--arg", &x.to_string()]);
                }
                ArgValue::Int(n) => {
                    cmd.args(["--int", &n.to_string()]);
                }
                ArgValue::Array(xs) => {
                    let list: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                    cmd.args(["--array", &list.join(",")]);
                }
            }
        }
        let t0 = Instant::now();
        let out = cmd.output().expect("safegen run executes");
        cold.push(t0.elapsed().as_secs_f64());
        assert!(
            out.status.success(),
            "cold CLI run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let _ = std::fs::remove_file(&src_path);

    // --- Cold path (in-process): library compile + evaluate, no spawn. ---
    let mut cold_lib = Vec::with_capacity(reps);
    let engine = Engine::new();
    for i in 0..reps {
        let args = input(i as u64);
        let t0 = Instant::now();
        let program = engine.compile(&w.source, w.name).expect("compiles");
        let result = program
            .eval(&EvalRequest::new(w.func, config.clone()).with_args(args))
            .expect("runs");
        std::hint::black_box(result.report().acc_bits);
        cold_lib.push(t0.elapsed().as_secs_f64());
    }

    // --- Build the artifact once (outside any timed region except load). ---
    let mut opts = BuildOptions::new("bench-serve");
    opts.ks = vec![k];
    opts.use_cache = false;
    let (built, _) = engine
        .compile_artifact(&w.source, &opts)
        .expect("artifact builds");
    let sga = dir.join(format!("bench-serve-{}.sga", std::process::id()));
    built.write_file(&sga).expect("artifact writes");

    let t0 = Instant::now();
    let loaded = engine.load_file(&sga).expect("artifact loads");
    let load_s = t0.elapsed().as_secs_f64();

    // --- Daemon up. ---
    let socket = dir.join(format!("bench-serve-{}.sock", std::process::id()));
    let serve_opts = ServeOptions::new(socket.clone());
    let daemon = std::thread::spawn(move || serve(loaded, &serve_opts));
    wait_ready(&socket, 10_000).expect("daemon ready");

    // --- Warm path: sequential request latency. ---
    let mut warm = Vec::with_capacity(warm_requests);
    for i in 0..warm_requests {
        let req = eval_request(w.func, k, &input(i as u64));
        let t0 = Instant::now();
        let resp = request(&socket, &req).expect("request succeeds");
        warm.push(t0.elapsed().as_secs_f64());
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(true)),
            "daemon rejected request: {resp}"
        );
    }

    // --- Concurrent throughput. ---
    let client_threads = match harness::threads() {
        0 => 4,
        t => t,
    };
    let per_thread = warm_requests / client_threads.max(1);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..client_threads {
            let socket = &socket;
            let w = &w;
            s.spawn(move || {
                for i in 0..per_thread {
                    let req = eval_request(w.func, k, &input((t * per_thread + i) as u64));
                    let resp = request(socket, &req).expect("request succeeds");
                    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
                }
            });
        }
    });
    let concurrent_s = t0.elapsed().as_secs_f64();
    let concurrent_total = client_threads * per_thread;

    // --- Daemon-side percentiles: the daemon's own metrics snapshot.
    // Client-side timings above include connect + serialization on the
    // client; the daemon's latency histogram isolates the server side
    // (read → dispatch → respond), so the gap between the two is the
    // socket/client overhead.
    let resp = request(&socket, &Json::obj(vec![("op", Json::from("stats"))]))
        .expect("stats request succeeds");
    let snapshot = resp.get("stats").expect("response carries stats").clone();
    assert_eq!(
        snapshot.get("version").and_then(|v| v.as_str()),
        Some(safegen_telemetry::metrics::SNAPSHOT_VERSION),
        "daemon snapshot version mismatch"
    );
    let daemon_num = |path: &[&str]| -> f64 {
        let mut node = &snapshot;
        for key in path {
            node = node.get(key).expect("snapshot field present");
        }
        node.as_f64().expect("snapshot field numeric")
    };
    let daemon_p50 = daemon_num(&["serve", "latency_ns", "p50"]);
    let daemon_p99 = daemon_num(&["serve", "latency_ns", "p99"]);
    let daemon_evals = daemon_num(&["serve", "requests", "eval"]);
    println!(
        "daemon-side eval latency (from stats verb): p50 {:.3e} s   p99 {:.3e} s over {} request(s)",
        daemon_p50 / 1e9,
        daemon_p99 / 1e9,
        daemon_evals
    );

    // --- Shutdown. ---
    let resp =
        request(&socket, &Json::obj(vec![("op", Json::from("shutdown"))])).expect("shutdown");
    assert_eq!(resp.get("bye"), Some(&Json::Bool(true)));
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
    let _ = std::fs::remove_file(&sga);

    let cold_p50 = percentile(&cold, 0.5);
    let cold_lib_p50 = percentile(&cold_lib, 0.5);
    let warm_p50 = percentile(&warm, 0.5);
    let warm_p99 = percentile(&warm, 0.99);
    let amortization = cold_p50 / warm_p50;

    println!("\n== serve: compile-once/serve-many ==");
    println!(
        "cold CLI run      p50: {:>10.3e} s   (spawn+compile+run)",
        cold_p50
    );
    println!(
        "cold in-process   p50: {:>10.3e} s   (compile+run, no spawn)",
        cold_lib_p50
    );
    println!("artifact load (once): {:>10.3e} s", load_s);
    println!(
        "warm request      p50: {:>10.3e} s   p99: {:.3e} s   ({:.0} req/s)",
        warm_p50,
        warm_p99,
        1.0 / warm_p50
    );
    println!(
        "concurrent ({client_threads} clients): {:.0} req/s over {concurrent_total} requests",
        concurrent_total as f64 / concurrent_s
    );
    println!("amortization (cold p50 / warm p50): {amortization:.1}x");

    let doc = Json::obj(vec![
        ("binary", Json::from("serve")),
        ("reps", Json::from(reps)),
        ("base_seed", Json::from(harness::BASE_SEED)),
        ("bench", Json::from(w.name)),
        ("config", Json::from(config.label())),
        ("warm_requests", Json::from(warm_requests)),
        (
            "cold_cli",
            Json::obj(vec![
                ("p50_ns", Json::from(cold_p50 * 1e9)),
                ("p99_ns", Json::from(percentile(&cold, 0.99) * 1e9)),
            ]),
        ),
        (
            "cold_in_process",
            Json::obj(vec![
                ("p50_ns", Json::from(cold_lib_p50 * 1e9)),
                ("p99_ns", Json::from(percentile(&cold_lib, 0.99) * 1e9)),
            ]),
        ),
        ("artifact_load_ns", Json::from(load_s * 1e9)),
        (
            "warm",
            Json::obj(vec![
                ("p50_ns", Json::from(warm_p50 * 1e9)),
                ("p99_ns", Json::from(warm_p99 * 1e9)),
                ("requests_per_sec", Json::from(1.0 / warm_p50)),
            ]),
        ),
        (
            "concurrent",
            Json::obj(vec![
                ("clients", Json::from(client_threads)),
                ("requests", Json::from(concurrent_total)),
                (
                    "requests_per_sec",
                    Json::from(concurrent_total as f64 / concurrent_s),
                ),
            ]),
        ),
        (
            "daemon",
            Json::obj(vec![
                ("latency_p50_ns", Json::from(daemon_p50)),
                ("latency_p99_ns", Json::from(daemon_p99)),
                ("eval_requests", Json::from(daemon_evals)),
            ]),
        ),
        ("amortization", Json::from(amortization)),
    ]);
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("serve: could not create results/: {e}");
        return;
    }
    let path = dir.join("BENCH_serve.json");
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => eprintln!("serve: wrote {}", path.display()),
        Err(e) => eprintln!("serve: could not write results: {e}"),
    }
    match safegen_telemetry::flush() {
        Ok(Some(summary)) => eprintln!("serve: metrics written ({})", summary.display()),
        Ok(None) => {}
        Err(e) => eprintln!("serve: failed to write metrics: {e}"),
    }
}
