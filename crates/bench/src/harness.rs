//! Measurement harness (paper Sec. VII, experimental setup).
//!
//! Every measurement repeats `SAFEGEN_REPS` times (default 30, as in the
//! paper) on random inputs drawn uniformly from `[0, 1)` — the inputs are
//! affine forms with a random central value and one symbol of `1 ulp` —
//! and reports the **median runtime** and the **average worst-case
//! certified accuracy** across runs.
//!
//! Repetitions are independent, so they run through the facade's
//! parallel batch path ([`Program::eval_batch_seeded`]):
//! `SAFEGEN_THREADS` picks the worker count (default: all available
//! cores; `1` forces the serial path). Each repetition's inputs come
//! from its own RNG seeded by `BASE_SEED ^ rep`, which makes every
//! reported number except wall time **bit-identical for any thread
//! count** — see `safegen::batch` and `tests/batch_parallel.rs`.

use crate::workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use safegen_api::{
    BatchOptions, Engine, EvalRequest, PassManager, Program, RunConfig, RunStats, WorkerStats,
};
use safegen_telemetry as telemetry;
use safegen_telemetry::json::Json;
use std::path::PathBuf;
use std::sync::Once;
use std::time::Instant;

/// Minimum, median and maximum of a per-repetition statistic.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatRange {
    /// Smallest per-repetition value.
    pub min: f64,
    /// Median (upper) per-repetition value.
    pub median: f64,
    /// Largest per-repetition value.
    pub max: f64,
}

impl StatRange {
    /// Aggregates a non-empty sample; all-NaN/empty input yields zeros.
    pub fn of(xs: &[f64]) -> StatRange {
        if xs.is_empty() {
            return StatRange::default();
        }
        StatRange {
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            median: median(xs),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("min", Json::from(self.min)),
            ("median", Json::from(self.median)),
            ("max", Json::from(self.max)),
        ])
    }
}

/// One measured configuration on one workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name.
    pub bench: String,
    /// Configuration label (paper notation).
    pub config: String,
    /// Median runtime of a sound run, seconds.
    pub runtime: f64,
    /// Median runtime of the native unsound baseline, seconds.
    pub native_runtime: f64,
    /// Slowdown vs the native baseline.
    pub slowdown: f64,
    /// Mean worst-case certified bits (clamped at 0 for display).
    pub acc_bits: f64,
    /// Mean undecided branches per run.
    pub undecided: f64,
    /// Per-repetition instruction counts.
    pub instrs: StatRange,
    /// Per-repetition floating-point operation counts.
    pub fp_ops: StatRange,
    /// Per-repetition undecided branch counts.
    pub undecided_range: StatRange,
    /// Mean fusion events per run (0 for non-affine configurations).
    pub fusions: f64,
    /// Mean condensations per run (0 for non-affine configurations).
    pub condensations: f64,
    /// Per-worker utilization of the batch run (one entry on the serial
    /// path).
    pub workers: Vec<WorkerStats>,
}

/// Seed of every measurement series; repetition `i` draws its inputs
/// from `StdRng::seed_from_u64(BASE_SEED ^ i)`.
pub const BASE_SEED: u64 = 0xC60_2022;

fn env_usize(name: &'static str, default: usize, warn: &'static Once) -> usize {
    match std::env::var(name) {
        Ok(s) => match s.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                warn.call_once(|| {
                    eprintln!("warning: {name}={s:?} is not a number; using default {default}");
                });
                default
            }
        },
        Err(_) => default,
    }
}

/// Number of measurement repetitions (`SAFEGEN_REPS`, default 30).
/// An unparsable value falls back to the default with a warning (once).
pub fn reps() -> usize {
    static WARN: Once = Once::new();
    env_usize("SAFEGEN_REPS", 30, &WARN)
}

/// Worker threads for batch evaluation (`SAFEGEN_THREADS`; `0` or unset
/// = all available cores, `1` = serial). An unparsable value falls back
/// to the default with a warning (once).
pub fn threads() -> usize {
    static WARN: Once = Once::new();
    env_usize("SAFEGEN_THREADS", 0, &WARN)
}

/// True when `SAFEGEN_QUICK=1`: binaries shrink their sweeps.
pub fn quick() -> bool {
    std::env::var("SAFEGEN_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Prints the harness configuration banner (worker count, repetitions)
/// to stderr and installs the telemetry recorder from the environment
/// (`SAFEGEN_TRACE` / `SAFEGEN_METRICS_OUT`); figure binaries call this
/// once at startup so a saved log records how its numbers were produced.
pub fn announce(binary: &str) {
    telemetry::init_from_env(binary);
    let t = threads();
    let shown = BatchOptions::with_threads(t).resolve(usize::MAX);
    eprintln!(
        "{binary}: SAFEGEN_REPS={} SAFEGEN_THREADS={} ({} worker{}){}",
        reps(),
        t,
        shown,
        if shown == 1 { "" } else { "s" },
        if quick() { " [SAFEGEN_QUICK]" } else { "" },
    );
}

/// Median of a slice (not in-place).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Measures `config` on `workload` (already compiled): median runtime and
/// mean worst-case accuracy over [`reps`] random inputs, evaluated on
/// [`threads`] workers.
///
/// # Panics
///
/// Panics if the program fails to execute (the workloads are known-good).
pub fn measure(workload: &Workload, program: &Program, config: &RunConfig) -> Measurement {
    let n = reps();
    let make_input = |seed: u64, _i: usize| {
        let mut rng = StdRng::seed_from_u64(seed);
        workload.args(&mut rng)
    };
    // Warm the instruction/allocator caches outside the timed region (the
    // paper reports generation takes < 1 s and is not part of runtime).
    let _ = program
        .eval(&EvalRequest::new(workload.func, config.clone()).with_args(make_input(BASE_SEED, 0)));
    let batch = program
        .eval_batch_seeded(
            workload.func,
            config,
            n,
            BASE_SEED,
            make_input,
            &BatchOptions::with_threads(threads()),
        )
        .unwrap_or_else(|e| panic!("{} under {}: {e}", workload.name, config.label()))
        .batch;

    let times: Vec<f64> = batch.items.iter().map(|it| it.elapsed_s).collect();
    let accs: Vec<f64> = batch
        .items
        .iter()
        .map(|it| {
            let a = it.report.acc_bits;
            if a.is_finite() { a } else { 0.0 }.max(0.0)
        })
        .collect();
    // Aggregate the per-repetition execution statistics — every
    // repetition's RunStats, not just the batch total.
    let per_rep = |f: fn(&RunStats) -> u64| -> Vec<f64> {
        batch
            .items
            .iter()
            .map(|it| f(&it.report.stats) as f64)
            .collect()
    };
    let undecided_per_rep = per_rep(|s| s.undecided_branches);
    let native_runtime = measure_native(workload);
    let runtime = median(&times);
    let m = Measurement {
        bench: workload.name.to_string(),
        config: config.label(),
        runtime,
        native_runtime,
        slowdown: runtime / native_runtime,
        acc_bits: accs.iter().sum::<f64>() / accs.len() as f64,
        undecided: batch.stats.undecided_branches as f64 / n as f64,
        instrs: StatRange::of(&per_rep(|s| s.instrs)),
        fp_ops: StatRange::of(&per_rep(|s| s.fp_ops)),
        undecided_range: StatRange::of(&undecided_per_rep),
        fusions: batch.stats.fusions as f64 / n as f64,
        condensations: batch.stats.condensations as f64 / n as f64,
        workers: batch.workers.clone(),
    };
    if telemetry::enabled() {
        telemetry::record("measurement", vec![("measurement", m.to_json())]);
    }
    m
}

/// Measures the mid-end pass pipeline's impact: the same workload and
/// configuration measured twice, once compiled through the optimizing
/// pipeline and once with passes disabled. The unoptimized row's config
/// label carries a ` [no-opt]` suffix so both rows coexist in one
/// `BENCH_*.json` document (compare their `instrs`/`fp_ops` ranges).
///
/// # Panics
///
/// Panics if the workload fails to compile or execute.
pub fn measure_pass_impact(workload: &Workload, config: &RunConfig) -> (Measurement, Measurement) {
    let optimized = Engine::new()
        .with_passes(PassManager::optimizing())
        .compile(&workload.source, workload.name)
        .expect("workload compiles");
    let unoptimized = Engine::new()
        .with_passes(PassManager::none())
        .compile(&workload.source, workload.name)
        .expect("workload compiles");
    let opt = measure(workload, &optimized, config);
    let mut unopt = measure(workload, &unoptimized, config);
    unopt.config.push_str(" [no-opt]");
    (opt, unopt)
}

/// Median native (plain `f64`, compiled Rust) runtime of the workload —
/// the unsound baseline of every slowdown figure. Runs serially (the
/// native kernels are too fast for per-item parallel timing to help)
/// on the same per-repetition seeds as [`measure`].
pub fn measure_native(workload: &Workload) -> f64 {
    let n = reps();
    let mut times = Vec::with_capacity(n);
    // Batch enough inner iterations that the clock resolution is
    // irrelevant for the small kernels.
    let inner = 16;
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(BASE_SEED ^ i as u64);
        let args = workload.args(&mut rng);
        let t0 = Instant::now();
        let mut sink = 0.0f64;
        for _ in 0..inner {
            let out = workload.native(&args);
            sink += out.iter().sum::<f64>();
        }
        std::hint::black_box(sink);
        times.push(t0.elapsed().as_secs_f64() / inner as f64);
    }
    median(&times)
}

/// Prints measurements as CSV (one header + one line each).
pub fn print_csv(rows: &[Measurement]) {
    println!("bench,config,acc_bits,slowdown,runtime_s,native_s,undecided_branches");
    for m in rows {
        println!(
            "{},{},{:.2},{:.2},{:.3e},{:.3e},{:.1}",
            m.bench, m.config, m.acc_bits, m.slowdown, m.runtime, m.native_runtime, m.undecided
        );
    }
}

impl Measurement {
    /// The measurement as a JSON object (`results/BENCH_*.json` rows).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", Json::from(self.bench.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("median_ns", Json::from(self.runtime * 1e9)),
            ("native_ns", Json::from(self.native_runtime * 1e9)),
            ("slowdown", Json::from(self.slowdown)),
            ("speedup_vs_native", Json::from(1.0 / self.slowdown)),
            ("acc_bits", Json::from(self.acc_bits)),
            ("undecided_mean", Json::from(self.undecided)),
            ("instrs", self.instrs.to_json()),
            ("fp_ops", self.fp_ops.to_json()),
            ("undecided", self.undecided_range.to_json()),
            ("fusions_mean", Json::from(self.fusions)),
            ("condensations_mean", Json::from(self.condensations)),
            (
                "workers",
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("worker", Json::from(w.worker)),
                                ("items", Json::from(w.items)),
                                ("busy_s", Json::from(w.busy_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The whole result set as one JSON document.
pub fn rows_to_json(binary: &str, rows: &[Measurement]) -> Json {
    Json::obj(vec![
        ("binary", Json::from(binary)),
        ("reps", Json::from(reps())),
        ("base_seed", Json::from(BASE_SEED)),
        (
            "measurements",
            Json::Arr(rows.iter().map(Measurement::to_json).collect()),
        ),
    ])
}

/// Prints the measurements as one JSON document on stdout.
pub fn print_json(binary: &str, rows: &[Measurement]) {
    println!("{}", rows_to_json(binary, rows));
}

/// Writes the measurements to `results/BENCH_<binary>.json` (creating
/// `results/` when needed) and returns the path.
///
/// # Errors
///
/// Returns the I/O error message on failure.
pub fn write_json(binary: &str, rows: &[Measurement]) -> Result<PathBuf, String> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(format!("BENCH_{binary}.json"));
    std::fs::write(&path, format!("{}\n", rows_to_json(binary, rows)))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// The standard ending of every figure binary: writes
/// `results/BENCH_<binary>.json` and flushes the telemetry sink (the
/// JSONL event log, when `SAFEGEN_METRICS_OUT` is set). Failures are
/// reported on stderr, never fatal — the tables already went to stdout.
pub fn export(binary: &str, rows: &[Measurement]) {
    match write_json(binary, rows) {
        Ok(path) => eprintln!("{binary}: wrote {}", path.display()),
        Err(e) => eprintln!("{binary}: could not write results: {e}"),
    }
    match telemetry::flush() {
        Ok(Some(summary)) => eprintln!("{binary}: metrics written ({})", summary.display()),
        Ok(None) => {}
        Err(e) => eprintln!("{binary}: failed to write metrics: {e}"),
    }
}

/// Prints measurements as an aligned ASCII table.
pub fn print_table(title: &str, rows: &[Measurement]) {
    println!("\n== {title} ==");
    println!(
        "{:<8} {:<24} {:>10} {:>12} {:>12}",
        "bench", "config", "acc(bits)", "slowdown", "runtime"
    );
    for m in rows {
        println!(
            "{:<8} {:<24} {:>10.2} {:>11.1}x {:>11.3e}s",
            m.bench, m.config, m.acc_bits, m.slowdown, m.runtime
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadKind;

    /// The env-mutating tests below share process-global state; serialize
    /// them so the parallel test runner cannot interleave their settings.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn compile(w: &Workload) -> Program {
        Engine::new().compile(&w.source, w.name).unwrap()
    }

    #[test]
    fn measurement_produces_sane_numbers() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SAFEGEN_REPS", "3");
        let w = Workload::new(WorkloadKind::Henon { iters: 10 });
        let m = measure(&w, &compile(&w), &RunConfig::affine_f64(8));
        assert!(m.runtime > 0.0);
        assert!(m.native_runtime > 0.0);
        assert!(m.slowdown > 1.0, "sound must cost more than native");
        assert!(m.acc_bits >= 0.0 && m.acc_bits <= 53.0);
        std::env::remove_var("SAFEGEN_REPS");
    }

    #[test]
    fn accuracy_is_thread_count_invariant() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SAFEGEN_REPS", "6");
        let w = Workload::new(WorkloadKind::Henon { iters: 10 });
        let program = compile(&w);
        std::env::set_var("SAFEGEN_THREADS", "1");
        let serial = measure(&w, &program, &RunConfig::affine_f64(8));
        std::env::set_var("SAFEGEN_THREADS", "3");
        let parallel = measure(&w, &program, &RunConfig::affine_f64(8));
        std::env::remove_var("SAFEGEN_THREADS");
        std::env::remove_var("SAFEGEN_REPS");
        assert_eq!(serial.acc_bits, parallel.acc_bits);
        assert_eq!(serial.undecided, parallel.undecided);
    }

    #[test]
    fn env_parsing_defaults_on_garbage() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SAFEGEN_REPS", "thirty");
        assert_eq!(reps(), 30);
        std::env::remove_var("SAFEGEN_REPS");
        std::env::set_var("SAFEGEN_THREADS", "many");
        assert_eq!(threads(), 0);
        std::env::remove_var("SAFEGEN_THREADS");
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 3.0); // upper median
    }

    #[test]
    fn stat_range_of_samples() {
        let r = StatRange::of(&[3.0, 1.0, 2.0]);
        assert_eq!((r.min, r.median, r.max), (1.0, 2.0, 3.0));
        assert_eq!(StatRange::of(&[]), StatRange::default());
    }

    #[test]
    fn measurement_aggregates_per_rep_stats() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SAFEGEN_REPS", "4");
        let w = Workload::new(WorkloadKind::Henon { iters: 10 });
        let m = measure(&w, &compile(&w), &RunConfig::affine_f64(8));
        std::env::remove_var("SAFEGEN_REPS");
        // Same program, same iteration count: every repetition executes
        // the same instruction stream.
        assert!(m.instrs.min > 0.0);
        assert_eq!(m.instrs.min, m.instrs.max);
        assert_eq!(m.fp_ops.min, m.fp_ops.median);
        assert!(!m.workers.is_empty());
        assert_eq!(m.workers.iter().map(|w| w.items).sum::<usize>(), 4);
    }

    #[test]
    fn json_export_is_valid() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SAFEGEN_REPS", "2");
        let w = Workload::new(WorkloadKind::Henon { iters: 5 });
        let m = measure(&w, &compile(&w), &RunConfig::affine_f64(8));
        std::env::remove_var("SAFEGEN_REPS");
        let doc = rows_to_json("test", &[m]).to_string();
        let parsed = safegen_telemetry::json::parse(&doc).expect("valid JSON");
        let rows = parsed.get("measurements").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("bench").unwrap().as_str().unwrap(), "henon");
        assert!(rows[0].get("median_ns").unwrap().as_f64().unwrap() > 0.0);
    }
}
