//! Measurement harness (paper Sec. VII, experimental setup).
//!
//! Every measurement repeats `SAFEGEN_REPS` times (default 30, as in the
//! paper) on random inputs drawn uniformly from `[0, 1)` — the inputs are
//! affine forms with a random central value and one symbol of `1 ulp` —
//! and reports the **median runtime** and the **average worst-case
//! certified accuracy** across runs.
//!
//! Repetitions are independent, so they run through the parallel
//! [`safegen::batch`] engine: `SAFEGEN_THREADS` picks the worker count
//! (default: all available cores; `1` forces the serial path). Each
//! repetition's inputs come from its own RNG seeded by `BASE_SEED ^ rep`,
//! which makes every reported number except wall time **bit-identical
//! for any thread count** — see `safegen::batch` and
//! `tests/batch_parallel.rs`.

use crate::workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use safegen::batch::{run_batch_with, BatchOptions};
use safegen::{Compiled, RunConfig};
use std::sync::Once;
use std::time::Instant;

/// One measured configuration on one workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name.
    pub bench: String,
    /// Configuration label (paper notation).
    pub config: String,
    /// Median runtime of a sound run, seconds.
    pub runtime: f64,
    /// Median runtime of the native unsound baseline, seconds.
    pub native_runtime: f64,
    /// Slowdown vs the native baseline.
    pub slowdown: f64,
    /// Mean worst-case certified bits (clamped at 0 for display).
    pub acc_bits: f64,
    /// Mean undecided branches per run.
    pub undecided: f64,
}

/// Seed of every measurement series; repetition `i` draws its inputs
/// from `StdRng::seed_from_u64(BASE_SEED ^ i)`.
pub const BASE_SEED: u64 = 0xC60_2022;

fn env_usize(name: &'static str, default: usize, warn: &'static Once) -> usize {
    match std::env::var(name) {
        Ok(s) => match s.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                warn.call_once(|| {
                    eprintln!("warning: {name}={s:?} is not a number; using default {default}");
                });
                default
            }
        },
        Err(_) => default,
    }
}

/// Number of measurement repetitions (`SAFEGEN_REPS`, default 30).
/// An unparsable value falls back to the default with a warning (once).
pub fn reps() -> usize {
    static WARN: Once = Once::new();
    env_usize("SAFEGEN_REPS", 30, &WARN)
}

/// Worker threads for batch evaluation (`SAFEGEN_THREADS`; `0` or unset
/// = all available cores, `1` = serial). An unparsable value falls back
/// to the default with a warning (once).
pub fn threads() -> usize {
    static WARN: Once = Once::new();
    env_usize("SAFEGEN_THREADS", 0, &WARN)
}

/// True when `SAFEGEN_QUICK=1`: binaries shrink their sweeps.
pub fn quick() -> bool {
    std::env::var("SAFEGEN_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Prints the harness configuration banner (worker count, repetitions)
/// to stderr; figure binaries call this once at startup so a saved log
/// records how its numbers were produced.
pub fn announce(binary: &str) {
    let t = threads();
    let shown = BatchOptions::with_threads(t).resolve(usize::MAX);
    eprintln!(
        "{binary}: SAFEGEN_REPS={} SAFEGEN_THREADS={} ({} worker{}){}",
        reps(),
        t,
        shown,
        if shown == 1 { "" } else { "s" },
        if quick() { " [SAFEGEN_QUICK]" } else { "" },
    );
}

/// Median of a slice (not in-place).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Measures `config` on `workload` (already compiled): median runtime and
/// mean worst-case accuracy over [`reps`] random inputs, evaluated on
/// [`threads`] workers.
///
/// # Panics
///
/// Panics if the program fails to execute (the workloads are known-good).
pub fn measure(workload: &Workload, compiled: &Compiled, config: &RunConfig) -> Measurement {
    let n = reps();
    let prog = compiled.program_for(workload.func, config);
    let make_input = |seed: u64, _i: usize| {
        let mut rng = StdRng::seed_from_u64(seed);
        workload.args(&mut rng)
    };
    // Warm the instruction/allocator caches outside the timed region (the
    // paper reports generation takes < 1 s and is not part of runtime).
    let _ = safegen::run_on(&prog, &make_input(BASE_SEED, 0), config);
    let batch = run_batch_with(
        &prog,
        n,
        BASE_SEED,
        make_input,
        config,
        &BatchOptions::with_threads(threads()),
    )
    .unwrap_or_else(|e| panic!("{} under {}: {e}", workload.name, config.label()));

    let times: Vec<f64> = batch.items.iter().map(|it| it.elapsed_s).collect();
    let accs: Vec<f64> = batch
        .items
        .iter()
        .map(|it| {
            let a = it.report.acc_bits;
            if a.is_finite() { a } else { 0.0 }.max(0.0)
        })
        .collect();
    let native_runtime = measure_native(workload);
    let runtime = median(&times);
    Measurement {
        bench: workload.name.to_string(),
        config: config.label(),
        runtime,
        native_runtime,
        slowdown: runtime / native_runtime,
        acc_bits: accs.iter().sum::<f64>() / accs.len() as f64,
        undecided: batch.stats.undecided_branches as f64 / n as f64,
    }
}

/// Median native (plain `f64`, compiled Rust) runtime of the workload —
/// the unsound baseline of every slowdown figure. Runs serially (the
/// native kernels are too fast for per-item parallel timing to help)
/// on the same per-repetition seeds as [`measure`].
pub fn measure_native(workload: &Workload) -> f64 {
    let n = reps();
    let mut times = Vec::with_capacity(n);
    // Batch enough inner iterations that the clock resolution is
    // irrelevant for the small kernels.
    let inner = 16;
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(BASE_SEED ^ i as u64);
        let args = workload.args(&mut rng);
        let t0 = Instant::now();
        let mut sink = 0.0f64;
        for _ in 0..inner {
            let out = workload.native(&args);
            sink += out.iter().sum::<f64>();
        }
        std::hint::black_box(sink);
        times.push(t0.elapsed().as_secs_f64() / inner as f64);
    }
    median(&times)
}

/// Prints measurements as CSV (one header + one line each).
pub fn print_csv(rows: &[Measurement]) {
    println!("bench,config,acc_bits,slowdown,runtime_s,native_s,undecided_branches");
    for m in rows {
        println!(
            "{},{},{:.2},{:.2},{:.3e},{:.3e},{:.1}",
            m.bench, m.config, m.acc_bits, m.slowdown, m.runtime, m.native_runtime, m.undecided
        );
    }
}

/// Prints measurements as an aligned ASCII table.
pub fn print_table(title: &str, rows: &[Measurement]) {
    println!("\n== {title} ==");
    println!(
        "{:<8} {:<24} {:>10} {:>12} {:>12}",
        "bench", "config", "acc(bits)", "slowdown", "runtime"
    );
    for m in rows {
        println!(
            "{:<8} {:<24} {:>10.2} {:>11.1}x {:>11.3e}s",
            m.bench, m.config, m.acc_bits, m.slowdown, m.runtime
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadKind;
    use safegen::Compiler;

    /// The env-mutating tests below share process-global state; serialize
    /// them so the parallel test runner cannot interleave their settings.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn measurement_produces_sane_numbers() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SAFEGEN_REPS", "3");
        let w = Workload::new(WorkloadKind::Henon { iters: 10 });
        let compiled = Compiler::new().compile(&w.source).unwrap();
        let m = measure(&w, &compiled, &RunConfig::affine_f64(8));
        assert!(m.runtime > 0.0);
        assert!(m.native_runtime > 0.0);
        assert!(m.slowdown > 1.0, "sound must cost more than native");
        assert!(m.acc_bits >= 0.0 && m.acc_bits <= 53.0);
        std::env::remove_var("SAFEGEN_REPS");
    }

    #[test]
    fn accuracy_is_thread_count_invariant() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SAFEGEN_REPS", "6");
        let w = Workload::new(WorkloadKind::Henon { iters: 10 });
        let compiled = Compiler::new().compile(&w.source).unwrap();
        std::env::set_var("SAFEGEN_THREADS", "1");
        let serial = measure(&w, &compiled, &RunConfig::affine_f64(8));
        std::env::set_var("SAFEGEN_THREADS", "3");
        let parallel = measure(&w, &compiled, &RunConfig::affine_f64(8));
        std::env::remove_var("SAFEGEN_THREADS");
        std::env::remove_var("SAFEGEN_REPS");
        assert_eq!(serial.acc_bits, parallel.acc_bits);
        assert_eq!(serial.undecided, parallel.undecided);
    }

    #[test]
    fn env_parsing_defaults_on_garbage() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SAFEGEN_REPS", "thirty");
        assert_eq!(reps(), 30);
        std::env::remove_var("SAFEGEN_REPS");
        std::env::set_var("SAFEGEN_THREADS", "many");
        assert_eq!(threads(), 0);
        std::env::remove_var("SAFEGEN_THREADS");
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 3.0); // upper median
    }
}
