//! Measurement harness (paper Sec. VII, experimental setup).
//!
//! Every measurement repeats `SAFEGEN_REPS` times (default 30, as in the
//! paper) on random inputs drawn uniformly from `[0, 1)` — the inputs are
//! affine forms with a random central value and one symbol of `1 ulp` —
//! and reports the **median runtime** and the **average worst-case
//! certified accuracy** across runs.

use crate::workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use safegen::{Compiled, RunConfig};
use std::time::Instant;

/// One measured configuration on one workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name.
    pub bench: String,
    /// Configuration label (paper notation).
    pub config: String,
    /// Median runtime of a sound run, seconds.
    pub runtime: f64,
    /// Median runtime of the native unsound baseline, seconds.
    pub native_runtime: f64,
    /// Slowdown vs the native baseline.
    pub slowdown: f64,
    /// Mean worst-case certified bits (clamped at 0 for display).
    pub acc_bits: f64,
    /// Mean undecided branches per run.
    pub undecided: f64,
}

/// Number of measurement repetitions (`SAFEGEN_REPS`, default 30).
pub fn reps() -> usize {
    std::env::var("SAFEGEN_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30)
}

/// True when `SAFEGEN_QUICK=1`: binaries shrink their sweeps.
pub fn quick() -> bool {
    std::env::var("SAFEGEN_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Median of a slice (not in-place).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Measures `config` on `workload` (already compiled): median runtime and
/// mean worst-case accuracy over [`reps`] random inputs.
///
/// # Panics
///
/// Panics if the program fails to execute (the workloads are known-good).
pub fn measure(workload: &Workload, compiled: &Compiled, config: &RunConfig) -> Measurement {
    let n = reps();
    let mut rng = StdRng::seed_from_u64(0xC60_2022);
    let mut times = Vec::with_capacity(n);
    let mut accs = Vec::with_capacity(n);
    let mut undecided = 0u64;
    // Warm the prioritized-program cache outside the timed region (the
    // paper reports generation takes < 1 s and is not part of runtime).
    let _ = compiled.run(workload.func, &workload.args(&mut rng), config);
    for _ in 0..n {
        let args = workload.args(&mut rng);
        let t0 = Instant::now();
        let rep = compiled
            .run(workload.func, &args, config)
            .unwrap_or_else(|e| panic!("{} under {}: {e}", workload.name, config.label()));
        times.push(t0.elapsed().as_secs_f64());
        accs.push(if rep.acc_bits.is_finite() { rep.acc_bits } else { 0.0 }.max(0.0));
        undecided += rep.stats.undecided_branches;
    }
    let native_runtime = measure_native(workload);
    let runtime = median(&times);
    Measurement {
        bench: workload.name.to_string(),
        config: config.label(),
        runtime,
        native_runtime,
        slowdown: runtime / native_runtime,
        acc_bits: accs.iter().sum::<f64>() / accs.len() as f64,
        undecided: undecided as f64 / n as f64,
    }
}

/// Median native (plain `f64`, compiled Rust) runtime of the workload —
/// the unsound baseline of every slowdown figure.
pub fn measure_native(workload: &Workload) -> f64 {
    let n = reps();
    let mut rng = StdRng::seed_from_u64(0xC60_2022);
    let mut times = Vec::with_capacity(n);
    // Batch enough inner iterations that the clock resolution is
    // irrelevant for the small kernels.
    let inner = 16;
    for _ in 0..n {
        let args = workload.args(&mut rng);
        let t0 = Instant::now();
        let mut sink = 0.0f64;
        for _ in 0..inner {
            let out = workload.native(&args);
            sink += out.iter().sum::<f64>();
        }
        std::hint::black_box(sink);
        times.push(t0.elapsed().as_secs_f64() / inner as f64);
    }
    median(&times)
}

/// Prints measurements as CSV (one header + one line each).
pub fn print_csv(rows: &[Measurement]) {
    println!("bench,config,acc_bits,slowdown,runtime_s,native_s,undecided_branches");
    for m in rows {
        println!(
            "{},{},{:.2},{:.2},{:.3e},{:.3e},{:.1}",
            m.bench, m.config, m.acc_bits, m.slowdown, m.runtime, m.native_runtime, m.undecided
        );
    }
}

/// Prints measurements as an aligned ASCII table.
pub fn print_table(title: &str, rows: &[Measurement]) {
    println!("\n== {title} ==");
    println!(
        "{:<8} {:<24} {:>10} {:>12} {:>12}",
        "bench", "config", "acc(bits)", "slowdown", "runtime"
    );
    for m in rows {
        println!(
            "{:<8} {:<24} {:>10.2} {:>11.1}x {:>11.3e}s",
            m.bench, m.config, m.acc_bits, m.slowdown, m.runtime
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadKind;
    use safegen::Compiler;

    #[test]
    fn measurement_produces_sane_numbers() {
        std::env::set_var("SAFEGEN_REPS", "3");
        let w = Workload::new(WorkloadKind::Henon { iters: 10 });
        let compiled = Compiler::new().compile(&w.source).unwrap();
        let m = measure(&w, &compiled, &RunConfig::affine_f64(8));
        assert!(m.runtime > 0.0);
        assert!(m.native_runtime > 0.0);
        assert!(m.slowdown > 1.0, "sound must cost more than native");
        assert!(m.acc_bits >= 0.0 && m.acc_bits <= 53.0);
        std::env::remove_var("SAFEGEN_REPS");
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 3.0); // upper median
    }
}
