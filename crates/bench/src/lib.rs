//! # safegen-bench
//!
//! The evaluation harness of SafeGen-rs: the four benchmarks of the
//! paper's Table II (`henon`, `sor`, `luf`, `fgm`), native unsound
//! baselines, timing/accuracy measurement, and the binaries that
//! regenerate every table and figure of Sec. VII:
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `cargo run --release -p safegen-bench --bin table3` | Table III (accuracy & speedup of ss/sm/so/ds at k = 40) |
//! | `cargo run --release -p safegen-bench --bin fig8`   | Fig. 8 (accuracy-vs-slowdown Pareto per benchmark) |
//! | `cargo run --release -p safegen-bench --bin fig9`   | Fig. 9 (comparison with Yalaa, Ceres, IGen) |
//! | `cargo run --release -p safegen-bench --bin fig10`  | Fig. 10 (accuracy vs matrix size for sor/luf) |
//! | `cargo bench -p safegen-bench` | Sec. V arithmetic-cost microbenchmarks + workload benches |
//!
//! Set `SAFEGEN_REPS` (default 30, the paper's repetition count) and
//! `SAFEGEN_QUICK=1` (smaller sweeps) to trade fidelity for time.
//!
//! Every binary also writes its full result set to
//! `results/BENCH_<binary>.json`, and honors `SAFEGEN_TRACE=1` /
//! `SAFEGEN_METRICS_OUT=<prefix>` (see `safegen-telemetry`) for
//! per-phase timing and structured event logs.

pub mod harness;
pub mod workloads;

pub use harness::{
    export, measure, measure_native, print_csv, print_json, print_table, write_json, Measurement,
    StatRange,
};
pub use workloads::{Workload, WorkloadKind};
