//! The benchmark programs of the paper's Table II, as C sources compiled
//! by SafeGen-rs, plus native (unsound, plain-`f64`) Rust implementations
//! serving as the slowdown baseline.
//!
//! * `henon` — the Hénon map `x' = 1 − a·x² + y`, `y' = b·x` with
//!   `a = 1.05`, `b = 0.3` (as in the paper), iterated.
//! * `sor`   — SciMark's Jacobi successive over-relaxation on an `n × n`
//!   grid, `ω = 1.25`.
//! * `luf`   — SciMark's LU factorization with partial pivoting.
//! * `fgm`   — a FiOrdOs-style fast gradient method for a box-constrained
//!   QP (the Model Predictive Control kernel).

use rand::rngs::StdRng;
use rand::Rng;
use safegen_api::ArgValue;
use std::fmt::Write;

/// Which benchmark, with its size parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Hénon map with the given iteration count.
    Henon {
        /// Number of map iterations.
        iters: usize,
    },
    /// Jacobi SOR on an `n × n` grid.
    Sor {
        /// Grid side length.
        n: usize,
        /// Relaxation sweeps.
        iters: usize,
    },
    /// LU factorization of an `n × n` matrix.
    Luf {
        /// Matrix side length.
        n: usize,
    },
    /// Fast gradient method on an `n`-variable box QP.
    Fgm {
        /// Number of decision variables.
        n: usize,
        /// Gradient iterations.
        iters: usize,
    },
}

/// A ready-to-run benchmark: C source, entry point, inputs, native
/// baseline.
#[derive(Debug)]
pub struct Workload {
    /// Which benchmark this is.
    pub kind: WorkloadKind,
    /// Display name (`henon`, `sor`, `luf`, `fgm`).
    pub name: &'static str,
    /// The C source fed to the compiler.
    pub source: String,
    /// Entry function name.
    pub func: &'static str,
}

impl Workload {
    /// The paper's default instances: `henon`, `sor` 10×10, `luf` 20×20,
    /// `fgm`.
    pub fn paper_suite() -> Vec<Workload> {
        vec![
            Workload::new(WorkloadKind::Henon { iters: 100 }),
            Workload::new(WorkloadKind::Sor { n: 10, iters: 30 }),
            Workload::new(WorkloadKind::Luf { n: 20 }),
            Workload::new(WorkloadKind::Fgm { n: 8, iters: 40 }),
        ]
    }

    /// Builds a workload of the given kind.
    pub fn new(kind: WorkloadKind) -> Workload {
        match kind {
            WorkloadKind::Henon { iters } => Workload {
                kind,
                name: "henon",
                source: henon_source(iters),
                func: "henon",
            },
            WorkloadKind::Sor { n, iters } => Workload {
                kind,
                name: "sor",
                source: sor_source(n, iters),
                func: "sor",
            },
            WorkloadKind::Luf { n } => Workload {
                kind,
                name: "luf",
                source: luf_source(n),
                func: "luf",
            },
            WorkloadKind::Fgm { n, iters } => Workload {
                kind,
                name: "fgm",
                source: fgm_source(n, iters),
                func: "fgm",
            },
        }
    }

    /// Fresh random inputs (uniform in `[0, 1)`, per the paper's setup).
    pub fn args(&self, rng: &mut StdRng) -> Vec<ArgValue> {
        match self.kind {
            WorkloadKind::Henon { .. } => vec![
                ArgValue::Float(rng.gen::<f64>()),
                ArgValue::Float(rng.gen::<f64>()),
                ArgValue::Array(vec![0.0, 0.0]),
            ],
            WorkloadKind::Sor { n, .. } => {
                vec![ArgValue::Array(
                    (0..n * n).map(|_| rng.gen::<f64>()).collect(),
                )]
            }
            WorkloadKind::Luf { n } => {
                // Uniform random matrix in [0, 1) with a mild diagonal
                // boost: partial pivoting keeps the factorization stable
                // (as in SciMark/the paper's setup) while the eliminations
                // still cancel aggressively.
                let mut a = vec![0.0f64; n * n];
                for (idx, v) in a.iter_mut().enumerate() {
                    let (i, j) = (idx / n, idx % n);
                    *v = rng.gen::<f64>() + if i == j { 1.0 } else { 0.0 };
                }
                vec![ArgValue::Array(a)]
            }
            WorkloadKind::Fgm { n, .. } => {
                // H = A'A/n + 0.05·I: strongly convex but ill-conditioned
                // (κ ≈ 25), the regime where the fast gradient method needs
                // its momentum — and where round-off accumulates, as in the
                // paper's MPC problem.
                let mut m = vec![0.0f64; n * n];
                for v in m.iter_mut() {
                    *v = rng.gen::<f64>();
                }
                let mut h = vec![0.0f64; n * n];
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for l in 0..n {
                            acc += m[l * n + i] * m[l * n + j];
                        }
                        h[i * n + j] = acc / n as f64 + if i == j { 0.05 } else { 0.0 };
                    }
                }
                // Put the unconstrained optimum at a random interior point
                // x̄ ∈ [0.2, 0.8]ⁿ (g = −H·x̄): the box constraints stay
                // inactive along the trajectory, so the clipping never
                // collapses the affine forms to exact constants and
                // round-off genuinely accumulates across iterations.
                let xbar: Vec<f64> = (0..n).map(|_| 0.3 + 0.4 * rng.gen::<f64>()).collect();
                let g: Vec<f64> = (0..n)
                    .map(|i| -(0..n).map(|j| h[i * n + j] * xbar[j]).sum::<f64>())
                    .collect();
                // Start near the optimum so the momentum iterates never
                // touch the box: saturation would reset the affine forms to
                // exact constants and erase the error history the benchmark
                // is supposed to accumulate.
                let x0: Vec<f64> = (0..n)
                    .map(|i| xbar[i] + 0.1 * (rng.gen::<f64>() - 0.5))
                    .collect();
                vec![
                    ArgValue::Array(h),
                    ArgValue::Array(g),
                    ArgValue::Array(x0),
                    ArgValue::Array(vec![0.0; n]),
                ]
            }
        }
    }

    /// Runs the benchmark natively (plain `f64`, no VM) on the given
    /// inputs; returns the result values — the paper's unsound baseline.
    pub fn native(&self, args: &[ArgValue]) -> Vec<f64> {
        match self.kind {
            WorkloadKind::Henon { iters } => {
                let (mut x, mut y) = (as_f(&args[0]), as_f(&args[1]));
                for _ in 0..iters {
                    let xn = 1.0 - 1.05 * x * x + y;
                    y = 0.3 * x;
                    x = xn;
                }
                vec![x, y]
            }
            WorkloadKind::Sor { n, iters } => {
                let mut g = as_arr(&args[0]);
                let om = 1.0 - 1.25;
                let oq = 1.25 * 0.25;
                for _ in 0..iters {
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            g[i * n + j] = oq
                                * (g[(i - 1) * n + j]
                                    + g[(i + 1) * n + j]
                                    + g[i * n + j - 1]
                                    + g[i * n + j + 1])
                                + om * g[i * n + j];
                        }
                    }
                }
                g
            }
            WorkloadKind::Luf { n } => {
                let mut a = as_arr(&args[0]);
                for k in 0..n - 1 {
                    // partial pivot
                    let mut p = k;
                    let mut maxv = a[k * n + k].abs();
                    for i in k + 1..n {
                        let v = a[i * n + k].abs();
                        if v > maxv {
                            maxv = v;
                            p = i;
                        }
                    }
                    for j in 0..n {
                        a.swap(k * n + j, p * n + j);
                    }
                    for i in k + 1..n {
                        a[i * n + k] /= a[k * n + k];
                        for j in k + 1..n {
                            a[i * n + j] -= a[i * n + k] * a[k * n + j];
                        }
                    }
                }
                a
            }
            WorkloadKind::Fgm { n, iters } => {
                let h = as_arr(&args[0]);
                let g = as_arr(&args[1]);
                let x0 = as_arr(&args[2]);
                let step = FGM_STEP;
                let beta = FGM_BETA;
                let mut x = x0.clone();
                let mut y = x0;
                let mut t = vec![0.0f64; n];
                for _ in 0..iters {
                    for i in 0..n {
                        let mut acc = 0.0;
                        for j in 0..n {
                            acc += h[i * n + j] * y[j];
                        }
                        let ti = y[i] - step * (acc + g[i]);
                        // Mirrors the C source's fmin(fmax(..)) exactly,
                        // including NaN behaviour (clamp would differ).
                        #[allow(clippy::manual_clamp)]
                        {
                            t[i] = ti.max(0.0).min(1.0);
                        }
                    }
                    for i in 0..n {
                        y[i] = t[i] + beta * (t[i] - x[i]);
                        x[i] = t[i];
                    }
                }
                x
            }
        }
    }

    /// Number of floating-point operations one native run performs
    /// (for reporting).
    pub fn native_flops(&self) -> usize {
        match self.kind {
            WorkloadKind::Henon { iters } => iters * 4,
            WorkloadKind::Sor { n, iters } => iters * (n - 2) * (n - 2) * 6,
            WorkloadKind::Luf { n } => (2 * n * n * n) / 3,
            WorkloadKind::Fgm { n, iters } => iters * (n * (2 * n + 6)),
        }
    }
}

/// FGM step size `1/L` used by both source and native versions
/// (`L ≈ 1.3` for the generated Hessians).
pub const FGM_STEP: f64 = 0.7;
/// FGM momentum `β = (√L − √μ)/(√L + √μ)` for `L ≈ 1.3`, `µ = 0.05`.
pub const FGM_BETA: f64 = 0.67;

fn as_f(a: &ArgValue) -> f64 {
    match a {
        ArgValue::Float(x) => *x,
        _ => panic!("expected float argument"),
    }
}

fn as_arr(a: &ArgValue) -> Vec<f64> {
    match a {
        ArgValue::Array(x) => x.clone(),
        _ => panic!("expected array argument"),
    }
}

fn henon_source(iters: usize) -> String {
    format!(
        "void henon(double x, double y, double out[2]) {{
    for (int i = 0; i < {iters}; i++) {{
        double xn = 1.0 - 1.05 * x * x + y;
        y = 0.3 * x;
        x = xn;
    }}
    out[0] = x;
    out[1] = y;
}}\n"
    )
}

fn sor_source(n: usize, iters: usize) -> String {
    format!(
        "void sor(double G[{n}][{n}]) {{
    double om = 1.0 - 1.25;
    double oq = 1.25 * 0.25;
    for (int it = 0; it < {iters}; it++) {{
        for (int i = 1; i < {top}; i++) {{
            for (int j = 1; j < {top}; j++) {{
                G[i][j] = oq * (G[i - 1][j] + G[i + 1][j] + G[i][j - 1] + G[i][j + 1]) + om * G[i][j];
            }}
        }}
    }}
}}\n",
        top = n - 1
    )
}

fn luf_source(n: usize) -> String {
    format!(
        "void luf(double A[{n}][{n}]) {{
    for (int k = 0; k < {kmax}; k++) {{
        int p = k;
        double maxv = fabs(A[k][k]);
        for (int i = k + 1; i < {n}; i++) {{
            double v = fabs(A[i][k]);
            if (v > maxv) {{
                maxv = v;
                p = i;
            }}
        }}
        for (int j = 0; j < {n}; j++) {{
            double tmp = A[k][j];
            A[k][j] = A[p][j];
            A[p][j] = tmp;
        }}
        for (int i = k + 1; i < {n}; i++) {{
            A[i][k] = A[i][k] / A[k][k];
            for (int j = k + 1; j < {n}; j++) {{
                A[i][j] = A[i][j] - A[i][k] * A[k][j];
            }}
        }}
    }}
}}\n",
        kmax = n - 1
    )
}

fn fgm_source(n: usize, iters: usize) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "void fgm(double H[{n}][{n}], double g[{n}], double x0[{n}], double out[{n}]) {{
    double x[{n}];
    double y[{n}];
    double t[{n}];
    for (int i = 0; i < {n}; i++) {{
        x[i] = x0[i];
        y[i] = x0[i];
    }}
    for (int it = 0; it < {iters}; it++) {{
        for (int i = 0; i < {n}; i++) {{
            double acc = 0.0;
            for (int j = 0; j < {n}; j++) {{
                acc = acc + H[i][j] * y[j];
            }}
            double ti = y[i] - {FGM_STEP} * (acc + g[i]);
            t[i] = fmin(fmax(ti, 0.0), 1.0);
        }}
        for (int i = 0; i < {n}; i++) {{
            y[i] = t[i] + {FGM_BETA} * (t[i] - x[i]);
            x[i] = t[i];
        }}
    }}
    for (int i = 0; i < {n}; i++) {{
        out[i] = x[i];
    }}
}}\n"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use safegen_api::diag::{exec, Compiler, RunResult, UnsoundF64};
    use safegen_api::{DomainKind, RunConfig};

    fn check_vm_matches_native(w: &Workload, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let args = w.args(&mut rng);
        let native = w.native(&args);
        let compiled = Compiler::new().compile(&w.source).unwrap();
        let prog = compiled.program(w.func);
        let r: RunResult<UnsoundF64> = exec(prog, &args, &()).unwrap();
        let vm_vals: Vec<f64> = if let Some(v) = &r.ret {
            vec![v.0]
        } else {
            r.arrays.last().unwrap().1.iter().map(|v| v.0).collect()
        };
        // The VM must reproduce the native f64 results bit-for-bit for
        // henon/sor/fgm; luf's output is its full matrix.
        match w.kind {
            WorkloadKind::Luf { .. } | WorkloadKind::Sor { .. } => {
                assert_eq!(vm_vals, native, "{} mismatch", w.name);
            }
            WorkloadKind::Henon { .. } => {
                assert_eq!(vm_vals, native, "henon mismatch");
            }
            WorkloadKind::Fgm { .. } => {
                assert_eq!(vm_vals, native, "fgm mismatch");
            }
        }
    }

    #[test]
    fn henon_vm_bit_identical_to_native() {
        let w = Workload::new(WorkloadKind::Henon { iters: 25 });
        for seed in 0..3 {
            check_vm_matches_native(&w, seed);
        }
    }

    #[test]
    fn sor_vm_bit_identical_to_native() {
        let w = Workload::new(WorkloadKind::Sor { n: 6, iters: 4 });
        for seed in 0..3 {
            check_vm_matches_native(&w, seed);
        }
    }

    #[test]
    fn luf_vm_bit_identical_to_native() {
        let w = Workload::new(WorkloadKind::Luf { n: 6 });
        for seed in 0..3 {
            check_vm_matches_native(&w, seed);
        }
    }

    #[test]
    fn fgm_vm_bit_identical_to_native() {
        let w = Workload::new(WorkloadKind::Fgm { n: 4, iters: 10 });
        for seed in 0..3 {
            check_vm_matches_native(&w, seed);
        }
    }

    #[test]
    fn sound_runs_enclose_native_results() {
        for w in [
            Workload::new(WorkloadKind::Henon { iters: 15 }),
            Workload::new(WorkloadKind::Sor { n: 5, iters: 3 }),
            Workload::new(WorkloadKind::Fgm { n: 3, iters: 5 }),
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let args = w.args(&mut rng);
            let native = w.native(&args);
            let compiled = Compiler::new().compile(&w.source).unwrap();
            for cfg in [
                RunConfig::interval_f64(),
                RunConfig::affine_f64(8),
                RunConfig::affine_f64(16),
            ] {
                let rep = compiled.run(w.func, &args, &cfg).unwrap();
                let ranges: Vec<(f64, f64)> = rep.arrays.last().unwrap().1.clone();
                for (r, x) in ranges.iter().zip(&native) {
                    assert!(
                        r.0 <= *x && *x <= r.1,
                        "{} {:?}: {x} outside [{}, {}]",
                        w.name,
                        cfg.kind,
                        r.0,
                        r.1
                    );
                }
                let _ = DomainKind::Unsound;
            }
        }
    }

    #[test]
    fn luf_sound_run_encloses_native() {
        let w = Workload::new(WorkloadKind::Luf { n: 5 });
        let mut rng = StdRng::seed_from_u64(11);
        let args = w.args(&mut rng);
        let native = w.native(&args);
        let compiled = Compiler::new().compile(&w.source).unwrap();
        let rep = compiled
            .run(w.func, &args, &RunConfig::affine_f64(12))
            .unwrap();
        // Pivoting order may differ only if comparisons were undecided;
        // with well-separated magnitudes they are decided, so the outputs
        // must enclose the native factorization.
        let ranges = &rep.arrays.last().unwrap().1;
        for (r, x) in ranges.iter().zip(&native) {
            assert!(r.0 <= *x && *x <= r.1, "{x} outside [{}, {}]", r.0, r.1);
        }
    }

    #[test]
    fn paper_suite_compiles() {
        for w in Workload::paper_suite() {
            Compiler::new()
                .compile(&w.source)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}\n{}", w.name, w.source));
        }
    }

    #[test]
    fn flop_counts_positive() {
        for w in Workload::paper_suite() {
            assert!(w.native_flops() > 0);
        }
    }
}
