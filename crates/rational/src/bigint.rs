//! Arbitrary-precision integers: the minimum the exact-rational oracle
//! needs, and nothing more.
//!
//! [`BigUint`] stores little-endian 64-bit limbs with no trailing zero
//! limbs (so the empty vector is zero and representations are unique).
//! The operation set is deliberately division-free — rational comparison
//! is done by cross-multiplication, and common powers of two are stripped
//! with shifts — which keeps every operation simple, allocation-bounded,
//! and easy to audit. Schoolbook multiplication is ample at oracle sizes
//! (a few thousand bits; callers cap growth, see
//! [`crate::Rational::bits`]).

use std::cmp::Ordering;
use std::fmt;

/// An unsigned arbitrary-precision integer.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BigUint {
    /// Little-endian limbs, most significant limb nonzero (empty = 0).
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub const fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> BigUint {
        BigUint { limbs: vec![1] }
    }

    /// From a single limb.
    pub fn from_u64(x: u64) -> BigUint {
        if x == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![x] }
        }
    }

    fn from_limbs(mut limbs: Vec<u64>) -> BigUint {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Number of trailing zero bits (0 for zero, by convention).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return 64 * i + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Magnitude comparison.
    pub fn cmp_mag(&self, other: &BigUint) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self − other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (the oracle always subtracts the smaller
    /// magnitude; signs are handled one level up).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_mag(other) != Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// `self × other` (schoolbook with 128-bit accumulation).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self << n`.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() || n == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self >> n` (truncating).
    pub fn shr(&self, n: usize) -> BigUint {
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut l = self.limbs[i] >> bit_shift;
            if bit_shift != 0 {
                if let Some(&next) = self.limbs.get(i + 1) {
                    l |= next << (64 - bit_shift);
                }
            }
            out.push(l);
        }
        BigUint::from_limbs(out)
    }

    /// The leading (up to 64) significant bits as a limb plus the power
    /// of two they sit at: `self ≈ mantissa × 2^exp`, exact when
    /// `bits() ≤ 64` and truncated otherwise. Zero returns `(0, 0)`.
    pub fn leading_u64(&self) -> (u64, i64) {
        let bits = self.bits();
        if bits <= 64 {
            (self.limbs.first().copied().unwrap_or(0), 0)
        } else {
            let shift = bits - 64;
            (self.shr(shift).limbs[0], shift as i64)
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hex rendering: exact, cheap, and division-free.
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x{:x}", self.limbs.last().unwrap())?;
        for l in self.limbs.iter().rev().skip(1) {
            write!(f, "{l:016x}")?;
        }
        Ok(())
    }
}

/// A signed arbitrary-precision integer (sign–magnitude; zero is never
/// negative).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BigInt {
    /// True iff the value is strictly negative.
    neg: bool,
    /// Magnitude.
    mag: BigUint,
}

impl BigInt {
    /// Zero.
    pub const fn zero() -> BigInt {
        BigInt {
            neg: false,
            mag: BigUint::zero(),
        }
    }

    /// From sign and magnitude (normalizes `-0`).
    pub fn new(neg: bool, mag: BigUint) -> BigInt {
        BigInt {
            neg: neg && !mag.is_zero(),
            mag,
        }
    }

    /// From a machine integer.
    pub fn from_i64(x: i64) -> BigInt {
        BigInt::new(x < 0, BigUint::from_u64(x.unsigned_abs()))
    }

    /// Magnitude.
    pub fn mag(&self) -> &BigUint {
        &self.mag
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        BigInt::new(!self.neg, self.mag.clone())
    }

    /// `self + other`.
    pub fn add(&self, other: &BigInt) -> BigInt {
        if self.neg == other.neg {
            return BigInt::new(self.neg, self.mag.add(&other.mag));
        }
        match self.mag.cmp_mag(&other.mag) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::new(self.neg, self.mag.sub(&other.mag)),
            Ordering::Less => BigInt::new(other.neg, other.mag.sub(&self.mag)),
        }
    }

    /// `self − other`.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// `self × other`.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        BigInt::new(self.neg != other.neg, self.mag.mul(&other.mag))
    }

    /// `self × other` for an unsigned right factor.
    pub fn mul_mag(&self, other: &BigUint) -> BigInt {
        BigInt::new(self.neg, self.mag.mul(other))
    }

    /// Signed comparison.
    pub fn cmp_signed(&self, other: &BigInt) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.mag.cmp_mag(&other.mag),
            (true, true) => other.mag.cmp_mag(&self.mag),
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.neg {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(x: u64) -> BigUint {
        BigUint::from_u64(x)
    }

    #[test]
    fn add_sub_carry_chains() {
        let a = big(u64::MAX);
        let two = a.add(&big(1)); // 2^64
        assert_eq!(two.bits(), 65);
        assert_eq!(two.sub(&big(1)), a);
        assert_eq!(a.sub(&a), BigUint::zero());
    }

    #[test]
    fn mul_cross_limb() {
        let a = big(u64::MAX);
        let sq = a.mul(&a); // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expect = BigUint::one()
            .shl(128)
            .sub(&BigUint::one().shl(65))
            .add(&BigUint::one());
        assert_eq!(sq, expect);
        assert_eq!(sq.bits(), 128);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big(0xDEAD_BEEF_0123_4567);
        for n in [0, 1, 13, 64, 65, 130] {
            assert_eq!(a.shl(n).shr(n), a, "shift {n}");
        }
        assert_eq!(a.shl(7).trailing_zeros(), a.trailing_zeros() + 7);
    }

    #[test]
    fn comparison_orders_by_magnitude() {
        assert_eq!(big(5).cmp_mag(&big(5)), Ordering::Equal);
        assert_eq!(big(4).cmp_mag(&big(5)), Ordering::Less);
        assert_eq!(big(1).shl(64).cmp_mag(&big(u64::MAX)), Ordering::Greater);
    }

    #[test]
    fn signed_arithmetic() {
        let a = BigInt::from_i64(-7);
        let b = BigInt::from_i64(3);
        assert_eq!(a.add(&b), BigInt::from_i64(-4));
        assert_eq!(a.sub(&b), BigInt::from_i64(-10));
        assert_eq!(a.mul(&b), BigInt::from_i64(-21));
        assert_eq!(a.mul(&a), BigInt::from_i64(49));
        assert_eq!(a.cmp_signed(&b), Ordering::Less);
        assert_eq!(
            BigInt::from_i64(i64::MIN).neg().cmp_signed(&BigInt::zero()),
            Ordering::Greater
        );
    }

    #[test]
    fn negative_zero_is_normalized() {
        let z = BigInt::new(true, BigUint::zero());
        assert!(!z.is_negative());
        assert_eq!(z, BigInt::zero());
    }

    #[test]
    fn leading_u64_small_and_large() {
        let (m, e) = big(1).leading_u64();
        assert_eq!((m, e), (1, 0));
        let big_val = big(0b1011).shl(100);
        let (m, e) = big_val.leading_u64();
        // Value = 0b1011 × 2^100; mantissa must reproduce it at exponent e.
        assert_eq!(BigUint::from_u64(m).shl(e as usize), big_val);
    }

    #[test]
    fn display_hex() {
        assert_eq!(format!("{}", BigUint::zero()), "0x0");
        assert_eq!(format!("{}", big(255)), "0xff");
        assert_eq!(format!("{}", BigUint::one().shl(64)), "0x10000000000000000");
    }
}
