//! # safegen-rational
//!
//! Exact rational arithmetic over arbitrary-precision integers — the
//! ground-truth **oracle** behind SafeGen-rs differential soundness
//! testing (`safegen fuzz`, `tests/soundness_props.rs`, and the fpcore
//! primitive property tests).
//!
//! Every finite `f64` is a dyadic rational, so any program built from
//! `+ − × ÷`, negation, `fabs`, `fmin`/`fmax`, comparisons, and exact
//! integer control flow has an *exactly representable* real-arithmetic
//! result. [`Rational`] computes it with no rounding whatsoever; the
//! sound enclosures the compiler emits can then be checked against the
//! true value instead of against another floating-point approximation.
//!
//! Design constraints, in order:
//!
//! 1. **Exactness** — there is no operation in this crate that rounds.
//! 2. **Auditability** — the integer kernel ([`bigint`]) is
//!    division-free: comparisons cross-multiply and normalization only
//!    strips common powers of two, so every code path is shifts, adds,
//!    and schoolbook multiplication.
//! 3. **Bounded growth** — representations are *not* reduced to lowest
//!    terms (that would need gcd/division); callers watch [`Rational::bits`]
//!    and abandon a computation that grows past their budget, which is the
//!    honest behaviour for an oracle: report "too expensive to decide
//!    exactly" rather than approximate.
//!
//! ```
//! use safegen_rational::Rational;
//! let tenth = Rational::from_f64(0.1).unwrap(); // the *rounded* 0.1
//! let sum = tenth.add(&tenth).add(&tenth);
//! // 0.1 + 0.1 + 0.1 in f64 is famously not 0.3 — the oracle agrees:
//! assert!(sum != Rational::from_f64(0.3).unwrap());
//! // but the exact sum is enclosed by one ulp around the f64 result:
//! let approx: f64 = 0.1 + 0.1 + 0.1;
//! assert!(sum.in_range(approx.next_down(), approx.next_up()));
//! ```

pub mod bigint;

pub use bigint::{BigInt, BigUint};

use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `num / den` with `den > 0`.
///
/// Not necessarily in lowest terms (see the crate docs); equality and
/// ordering are value-based (cross-multiplied), so representation never
/// leaks.
#[derive(Clone, Debug)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Rational {
    /// Zero.
    pub fn zero() -> Rational {
        Rational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// One.
    pub fn one() -> Rational {
        Rational::from_i64(1)
    }

    /// From a machine integer (exact).
    pub fn from_i64(x: i64) -> Rational {
        Rational {
            num: BigInt::from_i64(x),
            den: BigUint::one(),
        }
    }

    /// The exact value of a finite `f64`; `None` for NaN and ±∞.
    ///
    /// Decodes the IEEE-754 representation directly: every finite double
    /// is `±m × 2^p` with integers `m < 2^53` and `−1074 ≤ p ≤ 971`.
    pub fn from_f64(x: f64) -> Option<Rational> {
        if !x.is_finite() {
            return None;
        }
        if x == 0.0 {
            return Some(Rational::zero());
        }
        let bits = x.to_bits();
        let neg = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, pow2) = if biased == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), biased - 1075)
        };
        let m = BigUint::from_u64(mantissa);
        let r = if pow2 >= 0 {
            Rational {
                num: BigInt::new(neg, m.shl(pow2 as usize)),
                den: BigUint::one(),
            }
        } else {
            Rational {
                num: BigInt::new(neg, m),
                den: BigUint::one().shl((-pow2) as usize),
            }
        };
        Some(r.normalized())
    }

    /// Strips the common power of two from numerator and denominator
    /// (full gcd reduction would need division; powers of two cover the
    /// dyadic chains that dominate oracle workloads).
    fn normalized(self) -> Rational {
        if self.num.is_zero() {
            return Rational::zero();
        }
        let t = self
            .num
            .mag()
            .trailing_zeros()
            .min(self.den.trailing_zeros());
        if t == 0 {
            return self;
        }
        Rational {
            num: BigInt::new(self.num.is_negative(), self.num.mag().shr(t)),
            den: self.den.shr(t),
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Representation size: max significant bits of numerator and
    /// denominator. The growth guard for oracle callers.
    pub fn bits(&self) -> usize {
        self.num.mag().bits().max(self.den.bits())
    }

    /// `−self`.
    pub fn neg(&self) -> Rational {
        Rational {
            num: self.num.neg(),
            den: self.den.clone(),
        }
    }

    /// `|self|`.
    pub fn abs(&self) -> Rational {
        Rational {
            num: BigInt::new(false, self.num.mag().clone()),
            den: self.den.clone(),
        }
    }

    /// `self + other` (exact).
    pub fn add(&self, other: &Rational) -> Rational {
        let num = self
            .num
            .mul_mag(&other.den)
            .add(&other.num.mul_mag(&self.den));
        let den = self.den.mul(&other.den);
        Rational { num, den }.normalized()
    }

    /// `self − other` (exact).
    pub fn sub(&self, other: &Rational) -> Rational {
        self.add(&other.neg())
    }

    /// `self × other` (exact).
    pub fn mul(&self, other: &Rational) -> Rational {
        Rational {
            num: self.num.mul(&other.num),
            den: self.den.mul(&other.den),
        }
        .normalized()
    }

    /// `self ÷ other` (exact); `None` when `other` is zero.
    pub fn div(&self, other: &Rational) -> Option<Rational> {
        if other.is_zero() {
            return None;
        }
        let num = self.num.mul_mag(&other.den);
        let den = self.den.mul(other.num.mag());
        let r = Rational {
            num: BigInt::new(
                num.is_negative() != other.num.is_negative(),
                num.mag().clone(),
            ),
            den,
        };
        Some(r.normalized())
    }

    /// `self²` (exact).
    pub fn square(&self) -> Rational {
        self.mul(self)
    }

    /// Value comparison by cross-multiplication (exact, division-free).
    pub fn cmp_val(&self, other: &Rational) -> Ordering {
        self.num
            .mul_mag(&other.den)
            .cmp_signed(&other.num.mul_mag(&self.den))
    }

    /// Comparison against an `f64`. ±∞ compare as beyond every rational;
    /// NaN returns `None`.
    pub fn cmp_f64(&self, x: f64) -> Option<Ordering> {
        if x.is_nan() {
            return None;
        }
        if x == f64::INFINITY {
            return Some(Ordering::Less);
        }
        if x == f64::NEG_INFINITY {
            return Some(Ordering::Greater);
        }
        Some(self.cmp_val(&Rational::from_f64(x).expect("finite")))
    }

    /// `lo ≤ self ≤ hi` with IEEE interval-endpoint conventions: infinite
    /// endpoints are unbounded sides, any NaN endpoint fails containment.
    pub fn in_range(&self, lo: f64, hi: f64) -> bool {
        let Some(lo_ord) = self.cmp_f64(lo) else {
            return false;
        };
        let Some(hi_ord) = self.cmp_f64(hi) else {
            return false;
        };
        lo_ord != Ordering::Less && hi_ord != Ordering::Greater
    }

    /// The smaller of two rationals (by value).
    pub fn min_val(&self, other: &Rational) -> Rational {
        if self.cmp_val(other) == Ordering::Greater {
            other.clone()
        } else {
            self.clone()
        }
    }

    /// The larger of two rationals (by value).
    pub fn max_val(&self, other: &Rational) -> Rational {
        if self.cmp_val(other) == Ordering::Less {
            other.clone()
        } else {
            self.clone()
        }
    }

    /// A close `f64` approximation (for *reporting only* — accurate to a
    /// couple of ulps, computed from the leading 64 bits of numerator and
    /// denominator; never used in soundness decisions).
    pub fn to_f64_approx(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let (nm, ne) = self.num.mag().leading_u64();
        let (dm, de) = self.den.leading_u64();
        let q = (nm as f64 / dm as f64) * pow2_f64(ne - de);
        if self.num.is_negative() {
            -q
        } else {
            q
        }
    }
}

/// `2^e` in f64, saturating to 0 / ∞ outside the exponent range.
fn pow2_f64(e: i64) -> f64 {
    if e < -1100 {
        0.0
    } else if e > 1100 {
        f64::INFINITY
    } else {
        let mut r = 1.0f64;
        let (mut left, step) = if e >= 0 { (e, 2.0) } else { (-e, 0.5) };
        let mut base: f64 = step;
        // Exponentiation by squaring on the f64 exponent (exact while in
        // range; the saturation above keeps intermediate values finite).
        while left > 0 {
            if left & 1 == 1 {
                r *= base;
            }
            base *= base;
            left >>= 1;
        }
        r
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Rational) -> bool {
        self.cmp_val(other) == Ordering::Equal
    }
}

impl Eq for Rational {}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        self.cmp_val(other)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} (≈{:e})", self.num, self.den, self.to_f64_approx())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: f64) -> Rational {
        Rational::from_f64(x).unwrap()
    }

    #[test]
    fn f64_round_trip_classes() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            0.5,
            1.5,
            f64::MIN_POSITIVE,                // smallest normal
            f64::MIN_POSITIVE * f64::EPSILON, // smallest subnormal
            f64::MAX,
            -f64::MAX,
            1.0 + f64::EPSILON,
        ] {
            let v = r(x);
            assert_eq!(v.cmp_f64(x), Some(Ordering::Equal), "{x}");
            let approx = v.to_f64_approx();
            assert!(
                (approx - x).abs() <= x.abs() * 1e-15,
                "{x} approximated as {approx}"
            );
        }
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn exact_field_identities() {
        let a = r(0.1);
        let b = r(0.3);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.mul(&b).div(&b).unwrap(), a);
        assert_eq!(a.sub(&a), Rational::zero());
        assert_eq!(a.neg().abs(), a);
        assert_eq!(a.div(&a).unwrap(), Rational::one());
        assert!(r(0.5).div(&Rational::zero()).is_none());
    }

    #[test]
    fn point_one_times_three_is_not_point_three() {
        // The classic: (f64 0.1) × 3 ≠ (f64 0.3) exactly, and the oracle
        // resolves the inequality in the right direction.
        let sum = r(0.1).add(&r(0.1)).add(&r(0.1));
        assert!(sum > r(0.3));
        assert!(sum < r(0.3f64.next_up()));
    }

    #[test]
    fn in_range_endpoint_conventions() {
        let v = r(1.5);
        assert!(v.in_range(1.5, 1.5));
        assert!(v.in_range(f64::NEG_INFINITY, f64::INFINITY));
        assert!(v.in_range(1.0, 2.0));
        assert!(!v.in_range(1.6, 2.0));
        assert!(!v.in_range(1.0, 1.4));
        assert!(!v.in_range(f64::NAN, 2.0));
        assert!(!v.in_range(1.0, f64::NAN));
    }

    #[test]
    fn ordering_spans_signs_and_magnitudes() {
        let mut xs = vec![
            r(-2.5),
            r(-0.1),
            Rational::zero(),
            r(1e-300),
            r(0.1),
            r(3.0),
        ];
        let sorted = xs.clone();
        xs.reverse();
        xs.sort();
        assert_eq!(xs, sorted);
    }

    #[test]
    fn subnormal_and_huge_arithmetic_stays_exact() {
        let tiny = r(f64::MIN_POSITIVE * f64::EPSILON);
        let half = tiny.div(&r(2.0)).unwrap();
        assert!(half > Rational::zero());
        assert!(half < tiny);
        assert_eq!(half.add(&half), tiny);

        let huge = r(f64::MAX);
        let twice = huge.add(&huge); // overflows f64, exact here
        assert_eq!(twice.cmp_f64(f64::MAX), Some(Ordering::Greater));
        assert_eq!(twice.div(&r(2.0)).unwrap(), huge);
        assert!(twice.in_range(f64::MAX, f64::INFINITY));
    }

    #[test]
    fn bits_growth_is_observable() {
        let mut v = r(1.0 / 3.0_f64.recip()); // 3.0 — exact
        assert!(v.bits() <= 2);
        let third = Rational::one().div(&r(3.0)).unwrap();
        v = third.clone();
        let mut prev = v.bits();
        for _ in 0..5 {
            v = v.mul(&third);
            assert!(v.bits() >= prev);
            prev = v.bits();
        }
    }

    #[test]
    fn normalization_strips_twos_only() {
        // 1/2 + 1/2 = 1 exactly with denominator reduced back to 1.
        let half = r(0.5);
        let one = half.add(&half);
        assert_eq!(one, Rational::one());
        assert_eq!(one.bits(), 1);
    }

    #[test]
    fn min_max_follow_value_order() {
        let a = r(-1.0);
        let b = r(2.0);
        assert_eq!(a.min_val(&b), a);
        assert_eq!(a.max_val(&b), b);
    }

    #[test]
    fn pow2_saturation() {
        assert_eq!(pow2_f64(0), 1.0);
        assert_eq!(pow2_f64(10), 1024.0);
        assert_eq!(pow2_f64(-1), 0.5);
        assert_eq!(pow2_f64(5000), f64::INFINITY);
        assert_eq!(pow2_f64(-5000), 0.0);
    }

    #[test]
    fn display_mentions_approximation() {
        let s = format!("{}", r(0.75));
        assert!(s.contains('/'), "{s}");
    }
}
