//! Property test: random well-formed ASTs survive print → parse → print
//! as a fixpoint, and analysis accepts them. This pins the printer and
//! parser against each other far beyond the hand-written cases.

use proptest::prelude::*;
use safegen_cfront::{
    analyze, parse, print_unit, AssignOp, BinOp, Expr, Function, Param, Span, Stmt, Ty, UnOp, Unit,
};

fn sp() -> Span {
    Span::default()
}

/// Random float-typed expression over variables x, y and array a[4].
fn expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0.001f64..1000.0).prop_map(|value| Expr::FloatLit { value, span: sp() }),
        prop_oneof![Just("x"), Just("y")].prop_map(|name| Expr::Ident {
            name: name.into(),
            span: sp()
        }),
        (0i64..4).prop_map(|i| Expr::Index {
            base: Box::new(Expr::Ident {
                name: "a".into(),
                span: sp()
            }),
            index: Box::new(Expr::IntLit {
                value: i,
                span: sp()
            }),
            span: sp(),
        }),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = expr(depth - 1);
    prop_oneof![
        leaf,
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Div)
            ],
            inner.clone(),
            inner.clone()
        )
            .prop_map(|(op, l, r)| Expr::Bin {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
                span: sp(),
            }),
        inner.clone().prop_map(|e| Expr::Un {
            op: UnOp::Neg,
            operand: Box::new(e),
            span: sp(),
        }),
        inner.clone().prop_map(|e| Expr::Call {
            callee: "sqrt".into(),
            args: vec![e],
            span: sp(),
        }),
        (inner.clone(), inner).prop_map(|(l, r)| Expr::Call {
            callee: "fmin".into(),
            args: vec![l, r],
            span: sp(),
        }),
    ]
    .boxed()
}

/// Random statement writing to x, y or a[i].
fn stmt() -> impl Strategy<Value = Stmt> {
    (
        prop_oneof![Just("x"), Just("y")],
        prop_oneof![
            Just(AssignOp::Set),
            Just(AssignOp::Add),
            Just(AssignOp::Sub),
            Just(AssignOp::Mul)
        ],
        expr(3),
    )
        .prop_map(|(name, op, rhs)| Stmt::Assign {
            lhs: Expr::Ident {
                name: name.into(),
                span: sp(),
            },
            op,
            rhs,
            span: sp(),
        })
}

fn unit(stmts: Vec<Stmt>) -> Unit {
    Unit {
        functions: vec![Function {
            ret: Ty::Void,
            name: "f".into(),
            params: vec![
                Param {
                    ty: Ty::Double,
                    name: "x".into(),
                    span: sp(),
                },
                Param {
                    ty: Ty::Double,
                    name: "y".into(),
                    span: sp(),
                },
                Param {
                    ty: Ty::Array(Box::new(Ty::Double), 4),
                    name: "a".into(),
                    span: sp(),
                },
            ],
            body: stmts,
            span: sp(),
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_print_is_fixpoint(stmts in prop::collection::vec(stmt(), 1..12)) {
        let u = unit(stmts);
        let p1 = print_unit(&u);
        let reparsed = parse(&p1)
            .unwrap_or_else(|e| panic!("printer produced unparsable code: {e}\n{p1}"));
        analyze(&reparsed)
            .unwrap_or_else(|e| panic!("printer produced unanalyzable code: {e}\n{p1}"));
        let p2 = print_unit(&reparsed);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn parsed_ast_preserves_literal_values(v in 0.0001f64..1e9) {
        let src = format!("double f() {{ return {v:?}; }}");
        let u = parse(&src).unwrap();
        let Stmt::Return { value: Some(Expr::FloatLit { value, .. }), .. } =
            &u.functions[0].body[0]
        else {
            panic!("unexpected shape");
        };
        // {:?} prints round-trippable f64 literals.
        prop_assert_eq!(*value, v);
    }
}
