//! # safegen-cfront
//!
//! A hand-written frontend for the C subset that SafeGen transforms —
//! the workspace's replacement for the Clang LibTooling infrastructure the
//! paper builds on (Sec. III, IV-B).
//!
//! The subset covers what numerical kernels of the paper's benchmark class
//! need:
//!
//! * function definitions with `double` / `float` / `int` scalars, fixed
//!   and parameter arrays (1-D and 2-D), and pointer parameters (treated as
//!   arrays);
//! * declarations with initializers, assignments (including `+=` etc.),
//!   `for` / `while` loops, `if`/`else`, `return`;
//! * arithmetic, comparison and call expressions (`sqrt`, `fabs`, `fmin`,
//!   `fmax`);
//! * `#pragma safegen prioritize(var)` annotations — the output of the
//!   static-analysis preprocessing step (paper Sec. VI-C).
//!
//! Every AST node carries its source [`Span`], which the analysis pipeline
//! round-trips through TAC and the computation DAG so pragmas can be
//! inserted at the right lines, exactly as the paper's pipeline does with
//! Clang source locations.
//!
//! ```
//! let src = r#"
//!     double axpy(double a, double x, double y) {
//!         return a * x + y;
//!     }
//! "#;
//! let unit = safegen_cfront::parse(src).unwrap();
//! let f = &unit.functions[0];
//! assert_eq!(f.name, "axpy");
//! assert_eq!(f.params.len(), 3);
//! ```

mod alpha;
mod ast;
mod error;
mod lexer;
mod parser;
mod printer;
mod reabsorb;
mod sema;
pub mod simd;
mod token;

pub use alpha::rename_unique;
pub use ast::*;
pub use error::{Diagnostic, ParseError};
pub use lexer::lex;
pub use parser::parse;
pub use printer::{print_expr, print_function, print_unit};
pub use reabsorb::reparse_emitted;
pub use sema::{analyze, FnInfo, Sema, VarInfo};
pub use simd::lower_simd;
pub use token::{Span, Token, TokenKind};
