//! Tokens and source spans.

use std::fmt;

/// A half-open source region `[start, end)` in byte offsets, plus the
/// 1-based line and column of its start — the location information the
/// analysis pipeline threads from source to DAG and back (paper Sec. VI-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based source column of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Span {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The smallest span covering both operands.
    pub fn merge(self, other: Span) -> Span {
        let (first, last) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: first.start,
            end: last.end.max(first.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds of the supported C subset.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    // Keywords
    KwDouble,
    KwFloat,
    KwInt,
    KwVoid,
    KwFor,
    KwWhile,
    KwIf,
    KwElse,
    KwReturn,
    KwConst,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AmpAmp,
    PipePipe,
    Not,
    Amp,
    // Preprocessor-ish
    /// A `#pragma safegen …` line; payload is the text after `safegen`.
    Pragma(String),
    Eof,
}

impl TokenKind {
    /// A short human-readable name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::IntLit(v) => format!("integer `{v}`"),
            TokenKind::FloatLit(v) => format!("float `{v}`"),
            TokenKind::Pragma(_) => "#pragma".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            TokenKind::KwDouble => "double",
            TokenKind::KwFloat => "float",
            TokenKind::KwInt => "int",
            TokenKind::KwVoid => "void",
            TokenKind::KwFor => "for",
            TokenKind::KwWhile => "while",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwReturn => "return",
            TokenKind::KwConst => "const",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Assign => "=",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::StarAssign => "*=",
            TokenKind::SlashAssign => "/=",
            TokenKind::PlusPlus => "++",
            TokenKind::MinusMinus => "--",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::AmpAmp => "&&",
            TokenKind::PipePipe => "||",
            TokenKind::Not => "!",
            TokenKind::Amp => "&",
            _ => "?",
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(0, 5, 1, 1);
        let b = Span::new(10, 15, 2, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 15);
        assert_eq!(m.line, 1);
        let m2 = b.merge(a);
        assert_eq!(m, m2);
    }

    #[test]
    fn describe_is_nonempty() {
        assert!(!TokenKind::Plus.describe().is_empty());
        assert!(TokenKind::Ident("x".into()).describe().contains('x'));
    }
}
