//! SIMD-to-C preprocessing (paper Sec. IV-B, "Support of SIMD
//! intrinsics").
//!
//! SafeGen accepts input functions written with x86 SIMD intrinsics; the
//! preprocessing step lowers them to scalar C before the affine
//! transformation (the paper reuses IGen's SIMD-to-C compiler for this).
//! This module implements that lowering for the AVX double-precision
//! subset numerical kernels use:
//!
//! | construct | lowering |
//! |---|---|
//! | `__m256d v;` / `__m256d v = e;` | four `double v__0 … v__3` |
//! | `_mm256_set1_pd(x)` | the scalar `x` in every lane |
//! | `_mm256_setzero_pd()` | `0.0` in every lane |
//! | `_mm256_set_pd(a,b,c,d)` | lanes `d,c,b,a` (intel order) |
//! | `_mm256_{add,sub,mul,div}_pd(a,b)` | lane-wise operator |
//! | `_mm256_sqrt_pd(a)` | lane-wise `sqrt` |
//! | `_mm256_{min,max}_pd(a,b)` | lane-wise `fmin`/`fmax` |
//! | `_mm256_fmadd_pd(a,b,c)` | lane-wise `a*b + c` |
//! | `_mm256_loadu_pd(&A[i])` | `A[i + lane]` |
//! | `_mm256_storeu_pd(&A[i], v)` | `A[i + lane] = v__lane;` |
//!
//! The lowering is purely textual (token-directed): unrelated code is
//! copied through verbatim, so the output is an ordinary program of the
//! supported C subset.

use crate::error::{Diagnostic, ParseError};
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};
use std::collections::HashSet;
use std::fmt::Write;

/// Number of `f64` lanes in a `__m256d`.
pub const LANES: usize = 4;

/// Lowers the SIMD subset to scalar C. Source without intrinsics is
/// returned unchanged (modulo nothing: the original string is cloned).
///
/// # Errors
///
/// Returns a diagnostic for intrinsics outside the supported subset or
/// malformed vector statements.
pub fn lower_simd(src: &str) -> Result<String, ParseError> {
    if !src.contains("_mm") && !src.contains("__m256d") {
        return Ok(src.to_string());
    }
    let tokens = lex_liberal(src)?;
    let mut lx = Lowerer {
        src,
        tokens,
        pos: 0,
        out: String::new(),
        vecs: HashSet::new(),
        copied_to: 0,
    };
    lx.run()?;
    Ok(lx.out)
}

/// Tokenizes, tolerating the `&` operator that only appears inside
/// intrinsic arguments.
fn lex_liberal(src: &str) -> Result<Vec<Token>, ParseError> {
    lex(src)
}

struct Lowerer<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
    out: String,
    /// Names declared as `__m256d`.
    vecs: HashSet<String>,
    /// Byte offset up to which the source has been copied out.
    copied_to: usize,
}

/// A lane-wise scalar expression: one C string per lane.
#[derive(Clone, Debug)]
struct VecExpr {
    lanes: [String; LANES],
}

impl VecExpr {
    fn map1(a: &VecExpr, f: impl Fn(&str) -> String) -> VecExpr {
        VecExpr {
            lanes: std::array::from_fn(|l| f(&a.lanes[l])),
        }
    }

    fn map2(a: &VecExpr, b: &VecExpr, f: impl Fn(&str, &str) -> String) -> VecExpr {
        VecExpr {
            lanes: std::array::from_fn(|l| f(&a.lanes[l], &b.lanes[l])),
        }
    }
}

impl Lowerer<'_> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if *self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(Diagnostic::new(
                format!(
                    "SIMD lowering: expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
                self.peek_span(),
            )
            .into())
        }
    }

    /// Copies the untouched source up to `until` into the output.
    fn flush_to(&mut self, until: usize) {
        if until > self.copied_to {
            self.out.push_str(&self.src[self.copied_to..until]);
            self.copied_to = until;
        }
    }

    fn run(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek().clone() {
                TokenKind::Eof => {
                    self.flush_to(self.src.len());
                    return Ok(());
                }
                TokenKind::Ident(name) if name == "__m256d" => {
                    let start = self.peek_span().start;
                    self.flush_to(start);
                    self.lower_vec_decl()?;
                }
                TokenKind::Ident(name) if name == "_mm256_storeu_pd" => {
                    let start = self.peek_span().start;
                    self.flush_to(start);
                    self.lower_store()?;
                }
                TokenKind::Ident(name) if self.vecs.contains(&name) => {
                    // Possible re-assignment `v = <vector expr>;`
                    if matches!(self.tokens[self.pos + 1].kind, TokenKind::Assign) {
                        let start = self.peek_span().start;
                        self.flush_to(start);
                        self.lower_vec_assign()?;
                    } else {
                        self.bump();
                    }
                }
                TokenKind::Ident(name) if name.starts_with("_mm256") => {
                    return Err(Diagnostic::new(
                        format!("unsupported intrinsic `{name}` outside a vector statement"),
                        self.peek_span(),
                    )
                    .into());
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// `__m256d v;` or `__m256d v = expr;`
    fn lower_vec_decl(&mut self) -> Result<(), ParseError> {
        self.bump(); // __m256d
        let (name, _) = self.ident()?;
        self.vecs.insert(name.clone());
        let init = if *self.peek() == TokenKind::Assign {
            self.bump();
            Some(self.vec_expr()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span.end;
        for l in 0..LANES {
            match &init {
                Some(v) => {
                    let _ = write!(self.out, "double {name}__{l} = {};", v.lanes[l]);
                }
                None => {
                    let _ = write!(self.out, "double {name}__{l};");
                }
            }
            if l + 1 < LANES {
                self.out.push(' ');
            }
        }
        self.copied_to = end;
        Ok(())
    }

    /// `v = expr;` for a known vector variable.
    fn lower_vec_assign(&mut self) -> Result<(), ParseError> {
        let (name, _) = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let v = self.vec_expr()?;
        let end = self.expect(TokenKind::Semi)?.span.end;
        for l in 0..LANES {
            let _ = write!(self.out, "{name}__{l} = {};", v.lanes[l]);
            if l + 1 < LANES {
                self.out.push(' ');
            }
        }
        self.copied_to = end;
        Ok(())
    }

    /// `_mm256_storeu_pd(&A[i], expr);`
    fn lower_store(&mut self) -> Result<(), ParseError> {
        self.bump(); // intrinsic name
        self.expect(TokenKind::LParen)?;
        let (base, index) = self.address()?;
        self.expect(TokenKind::Comma)?;
        let v = self.vec_expr()?;
        self.expect(TokenKind::RParen)?;
        let end = self.expect(TokenKind::Semi)?.span.end;
        for l in 0..LANES {
            let _ = write!(self.out, "{base}[{index} + {l}] = {};", v.lanes[l]);
            if l + 1 < LANES {
                self.out.push(' ');
            }
        }
        self.copied_to = end;
        Ok(())
    }

    /// Parses `&A[i]` or `A + i` into `(base, index-source-text)`.
    fn address(&mut self) -> Result<(String, String), ParseError> {
        if *self.peek() == TokenKind::Amp {
            self.bump();
            let (base, _) = self.ident()?;
            self.expect(TokenKind::LBracket)?;
            let idx = self.scalar_argument(&[TokenKind::RBracket])?;
            self.expect(TokenKind::RBracket)?;
            Ok((base, idx))
        } else {
            let (base, _) = self.ident()?;
            if *self.peek() == TokenKind::Plus {
                self.bump();
                let idx = self.scalar_argument(&[TokenKind::Comma, TokenKind::RParen])?;
                Ok((base, idx))
            } else {
                Ok((base, "0".to_string()))
            }
        }
    }

    /// A vector-valued expression: an intrinsic call or a vector variable.
    fn vec_expr(&mut self) -> Result<VecExpr, ParseError> {
        let span = self.peek_span();
        let TokenKind::Ident(name) = self.peek().clone() else {
            return Err(Diagnostic::new("expected a vector expression", span).into());
        };
        if self.vecs.contains(&name) {
            self.bump();
            return Ok(VecExpr {
                lanes: std::array::from_fn(|l| format!("{name}__{l}")),
            });
        }
        self.bump();
        match name.as_str() {
            "_mm256_setzero_pd" => {
                self.expect(TokenKind::LParen)?;
                self.expect(TokenKind::RParen)?;
                Ok(VecExpr {
                    lanes: std::array::from_fn(|_| "0.0".to_string()),
                })
            }
            "_mm256_set1_pd" => {
                self.expect(TokenKind::LParen)?;
                let x = self.scalar_argument(&[TokenKind::RParen])?;
                self.expect(TokenKind::RParen)?;
                Ok(VecExpr {
                    lanes: std::array::from_fn(|_| format!("({x})")),
                })
            }
            "_mm256_set_pd" => {
                // Intel order: highest lane first.
                self.expect(TokenKind::LParen)?;
                let mut args = Vec::new();
                for i in 0..LANES {
                    if i > 0 {
                        self.expect(TokenKind::Comma)?;
                    }
                    args.push(self.scalar_argument(&[TokenKind::Comma, TokenKind::RParen])?);
                }
                self.expect(TokenKind::RParen)?;
                args.reverse();
                Ok(VecExpr {
                    lanes: std::array::from_fn(|l| format!("({})", args[l])),
                })
            }
            "_mm256_loadu_pd" | "_mm256_load_pd" => {
                self.expect(TokenKind::LParen)?;
                let (base, idx) = self.address()?;
                self.expect(TokenKind::RParen)?;
                Ok(VecExpr {
                    lanes: std::array::from_fn(|l| format!("{base}[{idx} + {l}]")),
                })
            }
            "_mm256_add_pd" | "_mm256_sub_pd" | "_mm256_mul_pd" | "_mm256_div_pd" => {
                let op = match name.as_str() {
                    "_mm256_add_pd" => "+",
                    "_mm256_sub_pd" => "-",
                    "_mm256_mul_pd" => "*",
                    _ => "/",
                };
                self.expect(TokenKind::LParen)?;
                let a = self.vec_expr()?;
                self.expect(TokenKind::Comma)?;
                let b = self.vec_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(VecExpr::map2(&a, &b, |x, y| format!("({x} {op} {y})")))
            }
            "_mm256_min_pd" | "_mm256_max_pd" => {
                let f = if name == "_mm256_min_pd" {
                    "fmin"
                } else {
                    "fmax"
                };
                self.expect(TokenKind::LParen)?;
                let a = self.vec_expr()?;
                self.expect(TokenKind::Comma)?;
                let b = self.vec_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(VecExpr::map2(&a, &b, |x, y| format!("{f}({x}, {y})")))
            }
            "_mm256_sqrt_pd" => {
                self.expect(TokenKind::LParen)?;
                let a = self.vec_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(VecExpr::map1(&a, |x| format!("sqrt({x})")))
            }
            "_mm256_fmadd_pd" => {
                self.expect(TokenKind::LParen)?;
                let a = self.vec_expr()?;
                self.expect(TokenKind::Comma)?;
                let b = self.vec_expr()?;
                self.expect(TokenKind::Comma)?;
                let c = self.vec_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(VecExpr {
                    lanes: std::array::from_fn(|l| {
                        format!("({} * {} + {})", a.lanes[l], b.lanes[l], c.lanes[l])
                    }),
                })
            }
            other => Err(Diagnostic::new(
                format!("unsupported SIMD intrinsic `{other}` (see safegen_cfront::simd docs)"),
                span,
            )
            .into()),
        }
    }

    /// Captures a scalar argument's source text up to (not including) a
    /// terminator at the current nesting depth.
    fn scalar_argument(&mut self, terminators: &[TokenKind]) -> Result<String, ParseError> {
        let start = self.peek_span().start;
        let mut depth = 0usize;
        let mut end = start;
        loop {
            let k = self.peek().clone();
            if depth == 0 && terminators.contains(&k) {
                break;
            }
            match k {
                TokenKind::LParen | TokenKind::LBracket => depth += 1,
                TokenKind::RParen | TokenKind::RBracket => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokenKind::Eof => {
                    return Err(Diagnostic::new(
                        "unterminated intrinsic argument",
                        self.peek_span(),
                    )
                    .into())
                }
                _ => {}
            }
            end = self.bump().span.end;
        }
        Ok(self.src[start..end].trim().to_string())
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(Diagnostic::new(
                format!("expected identifier, found {}", other.describe()),
                self.peek_span(),
            )
            .into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn lower_ok(src: &str) -> String {
        let out = lower_simd(src).unwrap();
        // The lowered source must be valid subset C.
        let unit = parse(&out).unwrap_or_else(|e| panic!("reparse: {e}\n{out}"));
        let unit = crate::alpha::rename_unique(&unit);
        analyze(&unit).unwrap_or_else(|e| panic!("analyze: {e}\n{out}"));
        out
    }

    #[test]
    fn passthrough_without_intrinsics() {
        let src = "double f(double x) { return x * x; }";
        assert_eq!(lower_simd(src).unwrap(), src);
    }

    #[test]
    fn lowers_axpy_kernel() {
        let src = "void axpy(double a, double x[8], double y[8]) {
    for (int i = 0; i < 8; i += 4) {
        __m256d va = _mm256_set1_pd(a);
        __m256d vx = _mm256_loadu_pd(&x[i]);
        __m256d vy = _mm256_loadu_pd(&y[i]);
        __m256d r = _mm256_add_pd(_mm256_mul_pd(va, vx), vy);
        _mm256_storeu_pd(&y[i], r);
    }
}";
        let out = lower_ok(src);
        assert!(out.contains("double va__0 = (a);"), "{out}");
        assert!(out.contains("double vx__3 = x[i + 3];"), "{out}");
        assert!(
            out.contains("double r__1 = ((va__1 * vx__1) + vy__1);"),
            "{out}"
        );
        assert!(out.contains("y[i + 2] = r__2;"), "{out}");
        assert!(!out.contains("_mm256"), "{out}");
    }

    #[test]
    fn lowers_reassignment() {
        let src = "void f(double a[4]) {
    __m256d v = _mm256_loadu_pd(&a[0]);
    v = _mm256_mul_pd(v, v);
    _mm256_storeu_pd(&a[0], v);
}";
        let out = lower_ok(src);
        assert!(out.contains("v__0 = (v__0 * v__0);"), "{out}");
    }

    #[test]
    fn lowers_setzero_set_pd_sqrt_minmax_fma() {
        let src = "void f(double a[4]) {
    __m256d z = _mm256_setzero_pd();
    __m256d c = _mm256_set_pd(4.0, 3.0, 2.0, 1.0);
    __m256d s = _mm256_sqrt_pd(c);
    __m256d m = _mm256_max_pd(_mm256_min_pd(s, c), z);
    __m256d r = _mm256_fmadd_pd(m, c, z);
    _mm256_storeu_pd(&a[0], r);
}";
        let out = lower_ok(src);
        assert!(out.contains("double z__0 = 0.0;"), "{out}");
        // intel set order: lane 0 gets the LAST argument.
        assert!(out.contains("double c__0 = (1.0);"), "{out}");
        assert!(out.contains("double c__3 = (4.0);"), "{out}");
        assert!(
            out.contains("sqrt((1.0))") || out.contains("sqrt(c__0)"),
            "{out}"
        );
        assert!(out.contains("fmax(fmin(s__2, c__2), z__2)"), "{out}");
        assert!(out.contains("(m__1 * c__1 + z__1)"), "{out}");
    }

    #[test]
    fn pointer_style_address() {
        let src = "void f(double *p, int i) {
    __m256d v = _mm256_loadu_pd(p + i);
    _mm256_storeu_pd(p + i, v);
}";
        let out = lower_ok(src);
        assert!(out.contains("p[i + 0]"), "{out}");
        assert!(out.contains("p[i + 3] = v__3;"), "{out}");
    }

    #[test]
    fn unsupported_intrinsic_rejected() {
        let src = "void f(double a[4]) { __m256d v = _mm256_permute_pd(a, 5); }";
        let err = lower_simd(src).unwrap_err();
        assert!(
            err.to_string().contains("unsupported SIMD intrinsic"),
            "{err}"
        );
    }

    #[test]
    fn surrounding_code_untouched() {
        let src = "double g(double x) { return x + 1.0; }
void f(double a[4]) {
    __m256d v = _mm256_loadu_pd(&a[0]);
    _mm256_storeu_pd(&a[0], v);
}";
        let out = lower_ok(src);
        assert!(
            out.contains("double g(double x) { return x + 1.0; }"),
            "{out}"
        );
    }
}
