//! Pretty-printer: AST back to C source.
//!
//! Used for golden tests, for the SIMD-to-C-style preprocessing round trip,
//! and by the sound-code emitter in the `safegen` crate as the scaffold of
//! its output.

use crate::ast::*;
use std::fmt::Write;

/// Prints a whole translation unit.
pub fn print_unit(unit: &Unit) -> String {
    let mut out = String::new();
    for (i, f) in unit.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(f));
    }
    out
}

/// Prints one function definition.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let _ = write!(out, "{} {}(", type_prefix(&f.ret), f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&declarator(&p.ty, &p.name));
    }
    out.push_str(") {\n");
    for s in &f.body {
        print_stmt(&mut out, s, 1);
    }
    out.push_str("}\n");
    out
}

/// The base-type prefix of a declaration (`double`, `int`, …).
fn type_prefix(ty: &Ty) -> &'static str {
    match ty.scalar() {
        Ty::Void => "void",
        Ty::Int => "int",
        Ty::Float => "float",
        Ty::Double => "double",
        _ => unreachable!("scalar() returns a scalar"),
    }
}

/// Renders `ty name` with C declarator syntax (arrays and pointers).
fn declarator(ty: &Ty, name: &str) -> String {
    fn suffix(ty: &Ty, out: &mut String) {
        if let Ty::Array(inner, n) = ty {
            let _ = write!(out, "[{n}]");
            suffix(inner, out);
        }
    }
    match ty {
        Ty::Ptr(inner) => format!("{} *{}", type_prefix(inner), name),
        Ty::Array(..) => {
            let mut s = format!("{} {}", type_prefix(ty), name);
            suffix(ty, &mut s);
            s
        }
        _ => format!("{} {}", type_prefix(ty), name),
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Decl { ty, name, init, .. } => {
            indent(out, level);
            out.push_str(&declarator(ty, name));
            if let Some(e) = init {
                out.push_str(" = ");
                out.push_str(&print_expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::Assign { lhs, op, rhs, .. } => {
            indent(out, level);
            let opstr = match op {
                AssignOp::Set => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
                AssignOp::Mul => "*=",
                AssignOp::Div => "/=",
            };
            let _ = writeln!(out, "{} {} {};", print_expr(lhs), opstr, print_expr(rhs));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            for st in then_body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for st in else_body {
                    print_stmt(out, st, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            indent(out, level);
            out.push_str("for (");
            if let Some(i) = init {
                out.push_str(print_inline_stmt(i).trim_end_matches(";\n"));
            }
            out.push_str("; ");
            if let Some(c) = cond {
                out.push_str(&print_expr(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                out.push_str(print_inline_stmt(st).trim_end_matches(";\n"));
            }
            out.push_str(") {\n");
            for st in body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::While { cond, body, .. } => {
            indent(out, level);
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            for st in body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return { value, .. } => {
            indent(out, level);
            match value {
                Some(e) => {
                    let _ = writeln!(out, "return {};", print_expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
        Stmt::ExprStmt { expr, .. } => {
            indent(out, level);
            let _ = writeln!(out, "{};", print_expr(expr));
        }
        Stmt::Pragma { payload, .. } => {
            // Pragmas print at column 0, like the preprocessor wrote them.
            let _ = writeln!(out, "#pragma safegen {payload}");
        }
        Stmt::Block { body, .. } => {
            indent(out, level);
            out.push_str("{\n");
            for st in body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

fn print_inline_stmt(s: &Stmt) -> String {
    let mut out = String::new();
    print_stmt(&mut out, s, 0);
    out
}

/// Prints an expression with minimal (structural) parenthesization.
pub fn print_expr(e: &Expr) -> String {
    fn go(e: &Expr, parent_prec: u8, out: &mut String) {
        match e {
            Expr::IntLit { value, .. } => {
                let _ = write!(out, "{value}");
            }
            Expr::FloatLit { value, .. } => {
                // Round-trippable literal: always include a decimal point
                // or exponent so it re-lexes as a float.
                let s = format!("{value}");
                let _ =
                    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN")
                    {
                        write!(out, "{s}")
                    } else {
                        write!(out, "{s}.0")
                    };
            }
            Expr::Ident { name, .. } => out.push_str(name),
            Expr::Index { base, index, .. } => {
                go(base, 100, out);
                out.push('[');
                go(index, 0, out);
                out.push(']');
            }
            Expr::Bin { op, lhs, rhs, .. } => {
                let prec = bin_prec(*op);
                let need = prec < parent_prec;
                if need {
                    out.push('(');
                }
                go(lhs, prec, out);
                let _ = write!(out, " {} ", op.text());
                go(rhs, prec + 1, out);
                if need {
                    out.push(')');
                }
            }
            Expr::Un { op, operand, .. } => {
                out.push(match op {
                    UnOp::Neg => '-',
                    UnOp::Not => '!',
                });
                // `--x` would lex as a decrement: parenthesize an operand
                // that itself renders with a leading sign.
                let mut inner = String::new();
                go(operand, 99, &mut inner);
                if inner.starts_with('-') || inner.starts_with('!') {
                    out.push('(');
                    out.push_str(&inner);
                    out.push(')');
                } else {
                    out.push_str(&inner);
                }
            }
            Expr::Call { callee, args, .. } => {
                out.push_str(callee);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    go(a, 0, out);
                }
                out.push(')');
            }
            Expr::Cast { ty, operand, .. } => {
                let _ = write!(out, "({}) ", type_prefix(ty));
                go(operand, 99, out);
            }
        }
    }
    let mut out = String::new();
    go(e, 0, &mut out);
    out
}

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne => 3,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Parse → print → parse must be a fixpoint (ASTs equal modulo spans).
    fn round_trip(src: &str) {
        let u1 = parse(src).unwrap();
        let printed = print_unit(&u1);
        let u2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let p1 = print_unit(&u1);
        let p2 = print_unit(&u2);
        assert_eq!(p1, p2, "print/parse not idempotent for:\n{src}");
    }

    #[test]
    fn round_trips_basics() {
        round_trip("double f(double x) { return x * x + 1.0; }");
        round_trip("void f(double a[4]) { for (int i = 0; i < 4; i++) a[i] = a[i] / 2.0; }");
        round_trip("void f(double *p, int n) { while (n > 0) { p[0] += 1.5e-3; n -= 1; } }");
        round_trip("double f(double x) { if (x < 0.0) { return -x; } else { return sqrt(x); } }");
        round_trip("void g(double m[3][3]) { m[0][1] = m[1][0] * 2.0; }");
    }

    #[test]
    fn parenthesization_preserves_shape() {
        let u = parse("double f(double a, double b, double c) { return (a + b) * c; }").unwrap();
        let s = print_function(&u.functions[0]);
        assert!(s.contains("(a + b) * c"), "{s}");
    }

    #[test]
    fn no_spurious_parens() {
        let u = parse("double f(double a, double b, double c) { return a + b * c; }").unwrap();
        let s = print_function(&u.functions[0]);
        assert!(s.contains("a + b * c"), "{s}");
    }

    #[test]
    fn float_literals_relex_as_floats() {
        round_trip("double f() { return 1.0 + 2.5 + 1e10 + 0.001; }");
        let u = parse("double f() { return 2.0; }").unwrap();
        let s = print_unit(&u);
        assert!(s.contains("2.0") || s.contains("2e0"), "{s}");
    }

    #[test]
    fn prints_pragma() {
        let u = parse("void f(double x) {\n#pragma safegen prioritize(x)\nx = x + 1.0; }").unwrap();
        let s = print_unit(&u);
        assert!(s.contains("#pragma safegen prioritize(x)"), "{s}");
        round_trip("void f(double x) {\n#pragma safegen prioritize(x)\nx = x + 1.0; }");
    }

    #[test]
    fn prints_declarators() {
        let u = parse("void f(double *p, double a[2][3], int n) { }").unwrap();
        let s = print_unit(&u);
        assert!(s.contains("double *p"), "{s}");
        assert!(s.contains("double a[2][3]"), "{s}");
        assert!(s.contains("int n"), "{s}");
    }

    #[test]
    fn unary_in_binary_context() {
        round_trip("double f(double x) { return -x * 2.0 - -1.0; }");
    }
}
