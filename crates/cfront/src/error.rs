//! Diagnostics.

use crate::token::Span;
use std::fmt;

/// A single diagnostic with a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Human-readable message.
    pub message: String,
    /// Where in the source the problem is.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Error type of [`crate::parse`]: one or more diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// All collected diagnostics (at least one).
    pub diagnostics: Vec<Diagnostic>,
}

impl ParseError {
    /// Wraps a single diagnostic.
    pub fn single(d: Diagnostic) -> ParseError {
        ParseError {
            diagnostics: vec![d],
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

impl From<Diagnostic> for ParseError {
    fn from(d: Diagnostic) -> ParseError {
        ParseError::single(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_message() {
        let d = Diagnostic::new("unexpected token", Span::new(0, 1, 3, 7));
        assert_eq!(d.to_string(), "3:7: unexpected token");
        let e = ParseError::single(d);
        assert!(e.to_string().contains("unexpected token"));
    }
}
