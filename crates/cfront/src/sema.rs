//! Semantic analysis: symbol tables, type inference and checking.
//!
//! Populates a [`Sema`] table used by the TAC lowering in `safegen-ir`:
//! every variable gets its declared type; every expression can be typed
//! via [`Sema::type_of`]. The checks reject programs outside the supported
//! subset early, with source locations.

use crate::ast::*;
use crate::error::{Diagnostic, ParseError};
use crate::token::Span;
use std::collections::HashMap;

/// Known math builtins and their arities.
const BUILTINS: &[(&str, usize)] = &[("sqrt", 1), ("fabs", 1), ("fmin", 2), ("fmax", 2)];

/// Information about a declared variable.
#[derive(Clone, Debug, PartialEq)]
pub struct VarInfo {
    /// Declared type.
    pub ty: Ty,
    /// True for function parameters.
    pub is_param: bool,
    /// Declaration site.
    pub span: Span,
}

/// Per-function analysis result.
#[derive(Clone, Debug, Default)]
pub struct FnInfo {
    /// All declared variables (params and locals) by name.
    ///
    /// The subset requires unique names per function (no shadowing), which
    /// keeps the TAC and DAG name-keyed — as the paper's TAC form does.
    pub vars: HashMap<String, VarInfo>,
}

/// The analysis table for a unit.
#[derive(Clone, Debug, Default)]
pub struct Sema {
    /// Per-function tables, keyed by function name.
    pub functions: HashMap<String, FnInfo>,
}

impl Sema {
    /// Looks up a variable in a function.
    pub fn var(&self, func: &str, name: &str) -> Option<&VarInfo> {
        self.functions.get(func)?.vars.get(name)
    }

    /// Infers the type of an expression in the scope of `func`.
    ///
    /// # Panics
    ///
    /// Panics if the expression refers to unknown variables — analysis must
    /// have succeeded first.
    pub fn type_of(&self, func: &str, e: &Expr) -> Ty {
        let vars = &self.functions[func].vars;
        type_of_expr(vars, e).expect("analyze() must succeed before type_of")
    }
}

fn type_of_expr(vars: &HashMap<String, VarInfo>, e: &Expr) -> Result<Ty, Diagnostic> {
    match e {
        Expr::IntLit { .. } => Ok(Ty::Int),
        Expr::FloatLit { .. } => Ok(Ty::Double),
        Expr::Ident { name, span } => vars
            .get(name)
            .map(|v| v.ty.clone())
            .ok_or_else(|| Diagnostic::new(format!("unknown variable `{name}`"), *span)),
        Expr::Index { base, index, span } => {
            let bt = type_of_expr(vars, base)?;
            let it = type_of_expr(vars, index)?;
            if it != Ty::Int {
                return Err(Diagnostic::new(
                    "array index must be an int expression",
                    index.span(),
                ));
            }
            match bt {
                Ty::Array(inner, _) | Ty::Ptr(inner) => Ok(*inner),
                other => Err(Diagnostic::new(
                    format!("cannot index a value of type {other:?}"),
                    *span,
                )),
            }
        }
        Expr::Bin { op, lhs, rhs, span } => {
            let lt = type_of_expr(vars, lhs)?;
            let rt = type_of_expr(vars, rhs)?;
            if lt.rank() > 0 || rt.rank() > 0 {
                return Err(Diagnostic::new(
                    "arithmetic on arrays is not supported",
                    *span,
                ));
            }
            if op.is_cmp() || matches!(op, BinOp::And | BinOp::Or) {
                return Ok(Ty::Int);
            }
            // Usual arithmetic conversions within the subset.
            Ok(match (lt, rt) {
                (Ty::Double, _) | (_, Ty::Double) => Ty::Double,
                (Ty::Float, _) | (_, Ty::Float) => Ty::Float,
                _ => Ty::Int,
            })
        }
        Expr::Un { op, operand, .. } => {
            let t = type_of_expr(vars, operand)?;
            match op {
                UnOp::Neg => Ok(t),
                UnOp::Not => Ok(Ty::Int),
            }
        }
        Expr::Call { callee, args, span } => {
            let Some(&(_, arity)) = BUILTINS.iter().find(|(n, _)| n == callee) else {
                return Err(Diagnostic::new(
                    format!("unknown function `{callee}` (supported: sqrt, fabs, fmin, fmax)"),
                    *span,
                ));
            };
            if args.len() != arity {
                return Err(Diagnostic::new(
                    format!("`{callee}` takes {arity} argument(s), got {}", args.len()),
                    *span,
                ));
            }
            for a in args {
                let t = type_of_expr(vars, a)?;
                if t.rank() > 0 {
                    return Err(Diagnostic::new("array passed to math builtin", a.span()));
                }
            }
            Ok(Ty::Double)
        }
        Expr::Cast { ty, operand, .. } => {
            type_of_expr(vars, operand)?;
            Ok(ty.clone())
        }
    }
}

/// Analyzes a unit, returning the symbol tables.
///
/// # Errors
///
/// Returns every diagnostic found (duplicate declarations, unknown
/// variables, type errors, unsupported constructs).
pub fn analyze(unit: &Unit) -> Result<Sema, ParseError> {
    let mut sema = Sema::default();
    let mut diags = Vec::new();
    for f in &unit.functions {
        let mut info = FnInfo::default();
        for p in &f.params {
            if p.ty == Ty::Void {
                diags.push(Diagnostic::new("void parameter", p.span));
            }
            if info
                .vars
                .insert(
                    p.name.clone(),
                    VarInfo {
                        ty: p.ty.clone(),
                        is_param: true,
                        span: p.span,
                    },
                )
                .is_some()
            {
                diags.push(Diagnostic::new(
                    format!("duplicate parameter `{}`", p.name),
                    p.span,
                ));
            }
        }
        check_block(&f.body, &mut info, &f.ret, &mut diags);
        sema.functions.insert(f.name.clone(), info);
    }
    if diags.is_empty() {
        Ok(sema)
    } else {
        Err(ParseError { diagnostics: diags })
    }
}

fn check_block(body: &[Stmt], info: &mut FnInfo, ret: &Ty, diags: &mut Vec<Diagnostic>) {
    for s in body {
        check_stmt(s, info, ret, diags);
    }
}

fn check_stmt(s: &Stmt, info: &mut FnInfo, ret: &Ty, diags: &mut Vec<Diagnostic>) {
    match s {
        Stmt::Decl {
            ty,
            name,
            init,
            span,
        } => {
            if let Some(e) = init {
                check_expr(e, info, diags);
                if ty.rank() > 0 {
                    diags.push(Diagnostic::new(
                        "array initializers are not supported",
                        *span,
                    ));
                }
            }
            if info
                .vars
                .insert(
                    name.clone(),
                    VarInfo {
                        ty: ty.clone(),
                        is_param: false,
                        span: *span,
                    },
                )
                .is_some()
            {
                diags.push(Diagnostic::new(
                    format!("duplicate declaration of `{name}` (the subset forbids shadowing)"),
                    *span,
                ));
            }
        }
        Stmt::Assign { lhs, rhs, span, .. } => {
            let lt = check_expr(lhs, info, diags);
            let rt = check_expr(rhs, info, diags);
            if let (Some(lt), Some(rt)) = (lt, rt) {
                if lt.rank() > 0 {
                    diags.push(Diagnostic::new("cannot assign to a whole array", *span));
                }
                if lt == Ty::Int && rt.is_float() {
                    diags.push(Diagnostic::new(
                        "implicit float-to-int assignment; use an explicit cast",
                        *span,
                    ));
                }
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            check_expr(cond, info, diags);
            check_block(then_body, info, ret, diags);
            check_block(else_body, info, ret, diags);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(i) = init {
                check_stmt(i, info, ret, diags);
            }
            if let Some(c) = cond {
                check_expr(c, info, diags);
            }
            if let Some(st) = step {
                check_stmt(st, info, ret, diags);
            }
            check_block(body, info, ret, diags);
        }
        Stmt::While { cond, body, .. } => {
            check_expr(cond, info, diags);
            check_block(body, info, ret, diags);
        }
        Stmt::Return { value, span } => match (value, *ret == Ty::Void) {
            (None, true) => {}
            (None, false) => diags.push(Diagnostic::new("missing return value", *span)),
            (Some(_), true) => diags.push(Diagnostic::new("void function returns a value", *span)),
            (Some(e), false) => {
                check_expr(e, info, diags);
            }
        },
        Stmt::ExprStmt { expr, .. } => {
            check_expr(expr, info, diags);
        }
        Stmt::Pragma { payload, span } => {
            // prioritize(<ident>) and capacity(<positive int>) are
            // understood.
            let prioritize_ok = payload
                .strip_prefix("prioritize(")
                .and_then(|r| r.strip_suffix(')'))
                .is_some_and(|v| !v.trim().is_empty());
            let capacity_ok = payload
                .strip_prefix("capacity(")
                .and_then(|r| r.strip_suffix(')'))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .is_some_and(|k| k >= 1);
            if !prioritize_ok && !capacity_ok {
                diags.push(Diagnostic::new(
                    format!("unsupported safegen pragma `{payload}`"),
                    *span,
                ));
            }
        }
        Stmt::Block { body, .. } => check_block(body, info, ret, diags),
    }
}

fn check_expr(e: &Expr, info: &FnInfo, diags: &mut Vec<Diagnostic>) -> Option<Ty> {
    match type_of_expr(&info.vars, e) {
        Ok(t) => Some(t),
        Err(d) => {
            diags.push(d);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<Sema, ParseError> {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn collects_variables() {
        let s = analyze_src("void f(double x, int n) { double y = x; }").unwrap();
        assert_eq!(s.var("f", "x").unwrap().ty, Ty::Double);
        assert!(s.var("f", "x").unwrap().is_param);
        assert_eq!(s.var("f", "y").unwrap().ty, Ty::Double);
        assert!(!s.var("f", "y").unwrap().is_param);
        assert_eq!(s.var("f", "n").unwrap().ty, Ty::Int);
    }

    #[test]
    fn types_expressions() {
        let src = "void f(double x, int i, double a[4]) { double y = x; }";
        let unit = parse(src).unwrap();
        let s = analyze(&unit).unwrap();
        let ty = |expr_src: &str| {
            let u = parse(&format!(
                "void g(double x, int i, double a[4]) {{ double t = {expr_src}; }}"
            ))
            .unwrap();
            let Stmt::Decl { init: Some(e), .. } = &u.functions[0].body[0] else {
                panic!()
            };
            let s2 = analyze(&u).unwrap();
            s2.type_of("g", e)
        };
        assert_eq!(ty("x + 1.0"), Ty::Double);
        assert_eq!(ty("i + 1"), Ty::Int);
        assert_eq!(ty("x + i"), Ty::Double); // promotion
        assert_eq!(ty("a[i]"), Ty::Double);
        assert_eq!(ty("x < 1.0"), Ty::Int);
        assert_eq!(ty("sqrt(x)"), Ty::Double);
        let _ = s;
    }

    #[test]
    fn rejects_unknown_variable() {
        assert!(analyze_src("void f() { x = 1.0; }").is_err());
    }

    #[test]
    fn rejects_duplicate_declaration() {
        assert!(analyze_src("void f() { double x; double x; }").is_err());
    }

    #[test]
    fn rejects_unknown_function() {
        assert!(analyze_src("void f(double x) { x = sin(x); }").is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(analyze_src("void f(double x) { x = sqrt(x, x); }").is_err());
    }

    #[test]
    fn rejects_non_int_index() {
        assert!(analyze_src("void f(double a[4], double x) { a[x] = 1.0; }").is_err());
    }

    #[test]
    fn rejects_implicit_narrowing() {
        assert!(analyze_src("void f(int i, double x) { i = x; }").is_err());
        assert!(analyze_src("void f(int i, double x) { i = (int) x; }").is_ok());
    }

    #[test]
    fn rejects_void_return_mismatch() {
        assert!(analyze_src("void f() { return 1.0; }").is_err());
        assert!(analyze_src("double f() { return; }").is_err());
        assert!(analyze_src("double f(double x) { return x; }").is_ok());
    }

    #[test]
    fn accepts_2d_indexing() {
        assert!(analyze_src("void f(double g[3][3], int i) { g[i][0] = g[0][i] + 1.0; }").is_ok());
    }

    #[test]
    fn validates_pragma_payload() {
        assert!(
            analyze_src("void f(double x) {\n#pragma safegen prioritize(x)\nx = x + 1.0; }")
                .is_ok()
        );
        assert!(
            analyze_src("void f(double x) {\n#pragma safegen frobnicate\nx = x + 1.0; }").is_err()
        );
    }

    #[test]
    fn multiple_diagnostics_reported() {
        let err = analyze_src("void f() { a = 1.0; b = 2.0; }").unwrap_err();
        assert!(err.diagnostics.len() >= 2);
    }
}
