//! Hand-written lexer for the C subset.

use crate::error::{Diagnostic, ParseError};
use crate::token::{Span, Token, TokenKind};

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`ParseError`] on unrecognized characters or malformed
/// numeric literals.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        let tok = lx.next_token()?;
        let is_eof = tok.kind == TokenKind::Eof;
        out.push(tok);
        if is_eof {
            return Ok(out);
        }
    }
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span::new(start, self.pos, line, col)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let (line, col, start) = (self.line, self.col, self.pos);
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return Err(Diagnostic::new(
                                "unterminated block comment",
                                Span::new(start, self.pos, line, col),
                            )
                            .into());
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia()?;
        let (start, line, col) = (self.pos, self.line, self.col);
        let c = self.peek();
        if c == 0 {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: self.span_from(start, line, col),
            });
        }
        if c == b'#' {
            return self.lex_pragma(start, line, col);
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.lex_ident(start, line, col));
        }
        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_ascii_digit()) {
            return self.lex_number(start, line, col);
        }
        self.bump();
        let two = |lx: &mut Lexer<'a>, kind: TokenKind| {
            lx.bump();
            kind
        };
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'+' => match self.peek() {
                b'=' => two(self, TokenKind::PlusAssign),
                b'+' => two(self, TokenKind::PlusPlus),
                _ => TokenKind::Plus,
            },
            b'-' => match self.peek() {
                b'=' => two(self, TokenKind::MinusAssign),
                b'-' => two(self, TokenKind::MinusMinus),
                _ => TokenKind::Minus,
            },
            b'*' => match self.peek() {
                b'=' => two(self, TokenKind::StarAssign),
                _ => TokenKind::Star,
            },
            b'/' => match self.peek() {
                b'=' => two(self, TokenKind::SlashAssign),
                _ => TokenKind::Slash,
            },
            b'<' => match self.peek() {
                b'=' => two(self, TokenKind::Le),
                _ => TokenKind::Lt,
            },
            b'>' => match self.peek() {
                b'=' => two(self, TokenKind::Ge),
                _ => TokenKind::Gt,
            },
            b'=' => match self.peek() {
                b'=' => two(self, TokenKind::EqEq),
                _ => TokenKind::Assign,
            },
            b'!' => match self.peek() {
                b'=' => two(self, TokenKind::NotEq),
                _ => TokenKind::Not,
            },
            b'&' => match self.peek() {
                b'&' => two(self, TokenKind::AmpAmp),
                _ => TokenKind::Amp,
            },
            b'|' => match self.peek() {
                b'|' => two(self, TokenKind::PipePipe),
                _ => {
                    return Err(Diagnostic::new(
                        "unexpected character `|`",
                        self.span_from(start, line, col),
                    )
                    .into())
                }
            },
            other => {
                return Err(Diagnostic::new(
                    format!("unexpected character `{}`", other as char),
                    self.span_from(start, line, col),
                )
                .into())
            }
        };
        Ok(Token {
            kind,
            span: self.span_from(start, line, col),
        })
    }

    fn lex_ident(&mut self, start: usize, line: u32, col: u32) -> Token {
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let kind = match text {
            "double" => TokenKind::KwDouble,
            "float" => TokenKind::KwFloat,
            "int" => TokenKind::KwInt,
            "void" => TokenKind::KwVoid,
            "for" => TokenKind::KwFor,
            "while" => TokenKind::KwWhile,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "return" => TokenKind::KwReturn,
            "const" => TokenKind::KwConst,
            _ => TokenKind::Ident(text.to_string()),
        };
        Token {
            kind,
            span: self.span_from(start, line, col),
        }
    }

    fn lex_number(&mut self, start: usize, line: u32, col: u32) -> Result<Token, ParseError> {
        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            is_float = true;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        // Suffixes: f/F (float), l/L, u/U are accepted and ignored.
        while matches!(self.peek(), b'f' | b'F' | b'l' | b'L' | b'u' | b'U') {
            if matches!(self.peek(), b'f' | b'F') {
                is_float = true;
            }
            self.bump();
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .trim_end_matches(['f', 'F', 'l', 'L', 'u', 'U'])
            .to_string();
        let span = self.span_from(start, line, col);
        let kind = if is_float {
            TokenKind::FloatLit(text.parse::<f64>().map_err(|e| {
                ParseError::single(Diagnostic::new(format!("bad float literal: {e}"), span))
            })?)
        } else {
            TokenKind::IntLit(text.parse::<i64>().map_err(|e| {
                ParseError::single(Diagnostic::new(format!("bad integer literal: {e}"), span))
            })?)
        };
        Ok(Token { kind, span })
    }

    fn lex_pragma(&mut self, start: usize, line: u32, col: u32) -> Result<Token, ParseError> {
        // Consume the whole line.
        while self.peek() != b'\n' && self.peek() != 0 {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .trim();
        let span = self.span_from(start, line, col);
        let rest = text.trim_start_matches('#').trim_start();
        let Some(rest) = rest.strip_prefix("pragma") else {
            return Err(Diagnostic::new("only #pragma directives are supported", span).into());
        };
        let rest = rest.trim_start();
        let Some(payload) = rest.strip_prefix("safegen") else {
            // Unknown pragmas are ignored, like a real compiler would.
            return self.next_token();
        };
        Ok(Token {
            kind: TokenKind::Pragma(payload.trim().to_string()),
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("double x = 0.5;"),
            vec![
                TokenKind::KwDouble,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::FloatLit(0.5),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_int_and_float_literals() {
        assert_eq!(kinds("1")[0], TokenKind::IntLit(1));
        assert_eq!(kinds("1.0")[0], TokenKind::FloatLit(1.0));
        assert_eq!(kinds("1e3")[0], TokenKind::FloatLit(1000.0));
        assert_eq!(kinds(".5")[0], TokenKind::FloatLit(0.5));
        assert_eq!(kinds("2.5e-3")[0], TokenKind::FloatLit(0.0025));
        assert_eq!(kinds("1.0f")[0], TokenKind::FloatLit(1.0));
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("a += b; i++; x <= y; p != q;")
                .into_iter()
                .filter(|k| {
                    matches!(
                        k,
                        TokenKind::PlusAssign
                            | TokenKind::PlusPlus
                            | TokenKind::Le
                            | TokenKind::NotEq
                    )
                })
                .count(),
            4
        );
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a /* comment */ b // line\nc");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn lexes_safegen_pragma() {
        let ks = kinds("#pragma safegen prioritize(z)\nx");
        assert_eq!(ks[0], TokenKind::Pragma("prioritize(z)".into()));
    }

    #[test]
    fn ignores_unknown_pragma() {
        let ks = kinds("#pragma omp parallel\nx");
        assert_eq!(ks[0], TokenKind::Ident("x".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b").is_err());
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn keywords_not_identifiers() {
        assert_eq!(kinds("for")[0], TokenKind::KwFor);
        assert_eq!(kinds("forx")[0], TokenKind::Ident("forx".into()));
    }
}
