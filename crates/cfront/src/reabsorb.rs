//! Re-absorbing emitted sound C: the inverse of the `aa_*` lowering.
//!
//! The backend (`safegen::emit_c`) prints the transformed program against
//! the affine runtime API — `f64a`/`dda`/`f32a` declarations and
//! `aa_add_f64(a, b)`-style calls. [`reparse_emitted`] maps that artifact
//! back into the ordinary C subset this front end accepts:
//!
//! * `#include` lines are dropped (the lexer rejects non-pragma
//!   directives by design);
//! * the affine value types become `double` again;
//! * every `aa_*` runtime call is rewritten to the construct it was
//!   lowered from — operators, comparisons, `sqrt`/`fabs`/`fmin`/`fmax`,
//!   casts, constants, and `aa_prioritize(v)` back to
//!   `#pragma safegen prioritize(v)`.
//!
//! The result is a parse tree of plain C that can be re-run through the
//! whole pipeline. Differential tests use this to close the loop: source
//! → compile → emit → **reparse** → compile again must agree with the
//! original, both structurally (TAC printing) and semantically (VM
//! ranges). Anything the rewriter does not recognize is a hard error —
//! a silently-skipped call would let the round-trip check pass vacuously.

use crate::ast::{BinOp, Expr, Stmt, Ty, UnOp, Unit};
use crate::{parse, Diagnostic, ParseError};

/// Parses the output of the sound-C emitter back into the plain C subset.
///
/// Accepts any emission precision (`f64`, `dd`, `f32` suffixes); all
/// affine value types come back as `double`.
///
/// # Errors
///
/// Fails when the source does not parse after directive stripping, or
/// when an `aa_*` call has an unknown name or the wrong arity.
pub fn reparse_emitted(emitted: &str) -> Result<Unit, ParseError> {
    let stripped = strip_includes(emitted);
    let plain = replace_affine_types(&stripped);
    let mut unit = parse(&plain)?;
    for f in &mut unit.functions {
        let body = std::mem::take(&mut f.body);
        f.body = rewrite_block(body)?;
    }
    Ok(unit)
}

fn strip_includes(src: &str) -> String {
    src.lines()
        .filter(|l| !l.trim_start().starts_with("#include"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Replaces whole-word occurrences of the affine type names with
/// `double`. A plain string replace would corrupt identifiers like
/// `my_f64a`; this scan checks word boundaries.
fn replace_affine_types(src: &str) -> String {
    let is_word = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    'outer: while i < bytes.len() {
        for name in ["f64a", "f32a", "dda"] {
            let n = name.len();
            if bytes[i..].starts_with(name.as_bytes())
                && (i == 0 || !is_word(bytes[i - 1]))
                && (i + n == bytes.len() || !is_word(bytes[i + n]))
            {
                out.push_str("double");
                i += n;
                continue 'outer;
            }
        }
        // Advance one full UTF-8 scalar (comments may hold non-ASCII).
        let step = src[i..].chars().next().map_or(1, char::len_utf8);
        out.push_str(&src[i..i + step]);
        i += step;
    }
    out
}

/// The runtime operation an `aa_<op>_<suffix>` name encodes.
fn aa_op(callee: &str) -> Option<&str> {
    let rest = callee.strip_prefix("aa_")?;
    ["_f64", "_dd", "_f32"]
        .iter()
        .find_map(|s| rest.strip_suffix(s))
}

fn arity_err(callee: &str, span: crate::Span) -> ParseError {
    Diagnostic::new(format!("runtime call `{callee}` has the wrong arity"), span).into()
}

fn rewrite_block(body: Vec<Stmt>) -> Result<Vec<Stmt>, ParseError> {
    body.into_iter().map(rewrite_stmt).collect()
}

fn rewrite_stmt(s: Stmt) -> Result<Stmt, ParseError> {
    Ok(match s {
        Stmt::Decl {
            ty,
            name,
            init,
            span,
        } => Stmt::Decl {
            ty,
            name,
            init: init.map(rewrite_expr).transpose()?,
            span,
        },
        Stmt::Assign { lhs, op, rhs, span } => Stmt::Assign {
            lhs: rewrite_expr(lhs)?,
            op,
            rhs: rewrite_expr(rhs)?,
            span,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        } => Stmt::If {
            cond: rewrite_expr(cond)?,
            then_body: rewrite_block(then_body)?,
            else_body: rewrite_block(else_body)?,
            span,
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        } => Stmt::For {
            init: init.map(|s| rewrite_stmt(*s).map(Box::new)).transpose()?,
            cond: cond.map(rewrite_expr).transpose()?,
            step: step.map(|s| rewrite_stmt(*s).map(Box::new)).transpose()?,
            body: rewrite_block(body)?,
            span,
        },
        Stmt::While { cond, body, span } => Stmt::While {
            cond: rewrite_expr(cond)?,
            body: rewrite_block(body)?,
            span,
        },
        Stmt::Return { value, span } => Stmt::Return {
            value: value.map(rewrite_expr).transpose()?,
            span,
        },
        Stmt::ExprStmt { expr, span } => {
            // `aa_prioritize_f64(v);` statements were lowered from the
            // prioritization pragma — raise them back.
            if let Expr::Call { callee, args, .. } = &expr {
                if aa_op(callee) == Some("prioritize") {
                    let [Expr::Ident { name, .. }] = args.as_slice() else {
                        return Err(arity_err(callee, expr.span()));
                    };
                    return Ok(Stmt::Pragma {
                        payload: format!("prioritize({name})"),
                        span,
                    });
                }
            }
            Stmt::ExprStmt {
                expr: rewrite_expr(expr)?,
                span,
            }
        }
        Stmt::Pragma { .. } => s,
        Stmt::Block { body, span } => Stmt::Block {
            body: rewrite_block(body)?,
            span,
        },
    })
}

fn rewrite_expr(e: Expr) -> Result<Expr, ParseError> {
    Ok(match e {
        Expr::IntLit { .. } | Expr::FloatLit { .. } | Expr::Ident { .. } => e,
        Expr::Index { base, index, span } => Expr::Index {
            base: Box::new(rewrite_expr(*base)?),
            index: Box::new(rewrite_expr(*index)?),
            span,
        },
        Expr::Bin { op, lhs, rhs, span } => Expr::Bin {
            op,
            lhs: Box::new(rewrite_expr(*lhs)?),
            rhs: Box::new(rewrite_expr(*rhs)?),
            span,
        },
        Expr::Un { op, operand, span } => Expr::Un {
            op,
            operand: Box::new(rewrite_expr(*operand)?),
            span,
        },
        Expr::Cast { ty, operand, span } => Expr::Cast {
            ty,
            operand: Box::new(rewrite_expr(*operand)?),
            span,
        },
        Expr::Call { callee, args, span } => {
            let Some(op) = aa_op(&callee) else {
                // An ordinary builtin call (shouldn't occur in emitted
                // code, but harmless): rewrite the arguments only.
                let args = args
                    .into_iter()
                    .map(rewrite_expr)
                    .collect::<Result<Vec<_>, _>>()?;
                return Ok(Expr::Call { callee, args, span });
            };
            let args = args
                .into_iter()
                .map(rewrite_expr)
                .collect::<Result<Vec<_>, _>>()?;
            let bin = |op: BinOp, mut args: Vec<Expr>, span| -> Result<Expr, ParseError> {
                if args.len() != 2 {
                    return Err(arity_err("aa binary op", span));
                }
                let rhs = Box::new(args.pop().expect("len checked"));
                let lhs = Box::new(args.pop().expect("len checked"));
                Ok(Expr::Bin { op, lhs, rhs, span })
            };
            let unary = |mut args: Vec<Expr>, callee: &str, span| -> Result<Expr, ParseError> {
                if args.len() != 1 {
                    return Err(arity_err(callee, span));
                }
                Ok(args.pop().expect("len checked"))
            };
            match op {
                "add" => bin(BinOp::Add, args, span)?,
                "sub" => bin(BinOp::Sub, args, span)?,
                "mul" => bin(BinOp::Mul, args, span)?,
                "div" => bin(BinOp::Div, args, span)?,
                "cmp_lt" => bin(BinOp::Lt, args, span)?,
                "cmp_le" => bin(BinOp::Le, args, span)?,
                "cmp_gt" => bin(BinOp::Gt, args, span)?,
                "cmp_ge" => bin(BinOp::Ge, args, span)?,
                "cmp_eq" => bin(BinOp::Eq, args, span)?,
                "cmp_ne" => bin(BinOp::Ne, args, span)?,
                "neg" => Expr::Un {
                    op: UnOp::Neg,
                    operand: Box::new(unary(args, &callee, span)?),
                    span,
                },
                // The sound constant wrapper: the literal inside *is* the
                // original constant.
                "const" => unary(args, &callee, span)?,
                "sqrt" | "abs" | "min" | "max" => {
                    let (name, arity) = match op {
                        "sqrt" => ("sqrt", 1),
                        "abs" => ("fabs", 1),
                        "min" => ("fmin", 2),
                        _ => ("fmax", 2),
                    };
                    if args.len() != arity {
                        return Err(arity_err(&callee, span));
                    }
                    Expr::Call {
                        callee: name.to_string(),
                        args,
                        span,
                    }
                }
                "from_int" => Expr::Cast {
                    ty: Ty::Double,
                    operand: Box::new(unary(args, &callee, span)?),
                    span,
                },
                "to_int" => Expr::Cast {
                    ty: Ty::Int,
                    operand: Box::new(unary(args, &callee, span)?),
                    span,
                },
                other => {
                    return Err(Diagnostic::new(
                        format!("unknown runtime call `aa_{other}_*`"),
                        span,
                    )
                    .into())
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, print_unit};

    #[test]
    fn includes_stripped_and_types_restored() {
        let src = "/* Generated by SafeGen-rs: sound affine-arithmetic version. */\n\
                   #include \"safegen_aa.h\"\n\n\
                   f64a f(f64a x) {\n    return aa_add_f64(x, aa_const_f64(0.1));\n}\n";
        let unit = reparse_emitted(src).unwrap();
        assert!(analyze(&unit).is_ok());
        let printed = print_unit(&unit);
        assert!(printed.contains("double f(double x)"), "{printed}");
        assert!(printed.contains("x + 0.1"), "{printed}");
        assert!(!printed.contains("aa_"), "{printed}");
    }

    #[test]
    fn word_boundary_type_replacement() {
        let out = replace_affine_types("f64a x; int dda_count; f32a y; dda z;");
        assert_eq!(out, "double x; int dda_count; double y; double z;");
    }

    #[test]
    fn all_operator_calls_come_back() {
        let src = "dda f(dda a, dda b) {\n\
                   dda c = aa_div_dd(aa_mul_dd(a, b), aa_sub_dd(a, aa_neg_dd(b)));\n\
                   dda d = aa_max_dd(aa_min_dd(c, a), aa_abs_dd(aa_sqrt_dd(b)));\n\
                   return d;\n}\n";
        let printed = print_unit(&reparse_emitted(src).unwrap());
        assert!(printed.contains("a * b"), "{printed}");
        assert!(printed.contains("a - -b"), "{printed}");
        assert!(
            printed.contains("fmax(fmin(c, a), fabs(sqrt(b)))"),
            "{printed}"
        );
    }

    #[test]
    fn comparisons_and_pragma_raised() {
        let src = "f64a f(f64a x, f64a z) {\n\
                   aa_prioritize_f64(z);\n\
                   if (aa_cmp_lt_f64(x, aa_const_f64(0.0))) {\n\
                   x = aa_mul_f64(x, z);\n\
                   }\n\
                   return x;\n}\n";
        let unit = reparse_emitted(src).unwrap();
        let has_pragma = unit.functions[0]
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Pragma { payload, .. } if payload == "prioritize(z)"));
        assert!(has_pragma);
        let printed = print_unit(&unit);
        assert!(printed.contains("x < 0.0"), "{printed}");
    }

    #[test]
    fn casts_restored_both_ways() {
        let src = "f64a f(f64a x) {\n\
                   int n = aa_to_int_f64(x);\n\
                   return aa_from_int_f64(n);\n}\n";
        let printed = print_unit(&reparse_emitted(src).unwrap());
        assert!(
            printed.contains("(int) x") || printed.contains("(int)x"),
            "{printed}"
        );
        assert!(
            printed.contains("(double) n") || printed.contains("(double)n"),
            "{printed}"
        );
    }

    #[test]
    fn unknown_runtime_call_is_an_error() {
        let src = "f64a f(f64a x) { return aa_frobnicate_f64(x); }";
        assert!(reparse_emitted(src).is_err());
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let src = "f64a f(f64a x) { return aa_add_f64(x); }";
        assert!(reparse_emitted(src).is_err());
    }
}
