//! Abstract syntax tree of the C subset.

use crate::token::Span;

/// A parsed translation unit: a list of function definitions.
#[derive(Clone, Debug, PartialEq)]
pub struct Unit {
    /// The functions, in source order.
    pub functions: Vec<Function>,
}

/// Scalar and array types of the subset.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `void` (return type only).
    Void,
    /// 32-bit signed integer (index arithmetic).
    Int,
    /// IEEE-754 single precision.
    Float,
    /// IEEE-754 double precision.
    Double,
    /// Fixed-size array `T name[n]` (or `T name[n][m]` when nested).
    Array(Box<Ty>, usize),
    /// Pointer parameter `T *p`, treated as an unsized array.
    Ptr(Box<Ty>),
}

impl Ty {
    /// The scalar element type at the bottom of arrays/pointers.
    pub fn scalar(&self) -> &Ty {
        match self {
            Ty::Array(inner, _) | Ty::Ptr(inner) => inner.scalar(),
            other => other,
        }
    }

    /// True if the (scalar of the) type is floating-point.
    pub fn is_float(&self) -> bool {
        matches!(self.scalar(), Ty::Float | Ty::Double)
    }

    /// Number of index dimensions (0 for scalars).
    pub fn rank(&self) -> usize {
        match self {
            Ty::Array(inner, _) | Ty::Ptr(inner) => 1 + inner.rank(),
            _ => 0,
        }
    }
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Return type.
    pub ret: Ty,
    /// Name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body (a block).
    pub body: Vec<Stmt>,
    /// Location of the definition.
    pub span: Span,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Declared type.
    pub ty: Ty,
    /// Name.
    pub name: String,
    /// Location.
    pub span: Span,
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `T name[=init];`
    Decl {
        /// Declared type.
        ty: Ty,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `lhs op= rhs;` — `op` is [`AssignOp`].
    Assign {
        /// Assignment target (identifier or index expression).
        lhs: Expr,
        /// Plain or compound assignment.
        op: AssignOp,
        /// Right-hand side.
        rhs: Expr,
        /// Location.
        span: Span,
    },
    /// `if (cond) then [else els]`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// Canonical `for (init; cond; step) body`.
    For {
        /// Init statement (declaration or assignment); boxed, may be absent.
        init: Option<Box<Stmt>>,
        /// Loop condition (absent = infinite).
        cond: Option<Expr>,
        /// Step statement (assignment or inc/dec).
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `return [expr];`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// A bare expression statement (e.g. a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Location.
        span: Span,
    },
    /// `#pragma safegen <payload>` attached before the following statement.
    Pragma {
        /// Pragma payload (e.g. `prioritize(z)`).
        payload: String,
        /// Location.
        span: Span,
    },
    /// `{ ... }` nested block.
    Block {
        /// Inner statements.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source location.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::ExprStmt { span, .. }
            | Stmt::Pragma { span, .. }
            | Stmt::Block { span, .. } => *span,
        }
    }
}

/// Plain and compound assignment operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// True for `+ - * /`.
    pub fn is_arith(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    /// True for comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// C source text.
    pub fn text(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit {
        /// Value.
        value: i64,
        /// Location.
        span: Span,
    },
    /// Floating literal.
    FloatLit {
        /// Value.
        value: f64,
        /// Location.
        span: Span,
    },
    /// Identifier reference.
    Ident {
        /// Name.
        name: String,
        /// Location.
        span: Span,
    },
    /// `base[idx]` (possibly chained for 2-D arrays).
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Call to a known math function (`sqrt`, `fabs`, `fmin`, `fmax`).
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// Explicit cast `(T) expr`.
    Cast {
        /// Target type.
        ty: Ty,
        /// Operand.
        operand: Box<Expr>,
        /// Location.
        span: Span,
    },
}

impl Expr {
    /// The expression's source location.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit { span, .. }
            | Expr::FloatLit { span, .. }
            | Expr::Ident { span, .. }
            | Expr::Index { span, .. }
            | Expr::Bin { span, .. }
            | Expr::Un { span, .. }
            | Expr::Call { span, .. }
            | Expr::Cast { span, .. } => *span,
        }
    }

    /// True if this expression can appear on the left of an assignment.
    pub fn is_lvalue(&self) -> bool {
        matches!(self, Expr::Ident { .. } | Expr::Index { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_helpers() {
        let arr = Ty::Array(Box::new(Ty::Array(Box::new(Ty::Double), 4)), 3);
        assert_eq!(arr.scalar(), &Ty::Double);
        assert!(arr.is_float());
        assert_eq!(arr.rank(), 2);
        assert_eq!(Ty::Int.rank(), 0);
        assert!(!Ty::Int.is_float());
        let ptr = Ty::Ptr(Box::new(Ty::Float));
        assert!(ptr.is_float());
        assert_eq!(ptr.rank(), 1);
    }

    #[test]
    fn binop_helpers() {
        assert!(BinOp::Add.is_arith());
        assert!(!BinOp::Lt.is_arith());
        assert!(BinOp::Le.is_cmp());
        assert_eq!(BinOp::Mul.text(), "*");
    }

    #[test]
    fn lvalue_detection() {
        let span = Span::default();
        let id = Expr::Ident {
            name: "x".into(),
            span,
        };
        assert!(id.is_lvalue());
        let lit = Expr::IntLit { value: 3, span };
        assert!(!lit.is_lvalue());
    }
}
