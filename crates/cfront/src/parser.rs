//! Recursive-descent parser with precedence-climbing expressions.

use crate::ast::*;
use crate::error::{Diagnostic, ParseError};
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};

/// Parses a translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic diagnostic encountered.
///
/// ```
/// let unit = safegen_cfront::parse("void f(double x) { x = x + 1.0; }").unwrap();
/// assert_eq!(unit.functions.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<Unit, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    while !p.at(TokenKind::Eof) {
        functions.push(p.function()?);
    }
    Ok(Unit { functions })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn nth_kind(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn at(&self, kind: TokenKind) -> bool {
        *self.peek_kind() == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.at(kind.clone()) {
            Ok(self.bump())
        } else {
            Err(Diagnostic::new(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek_kind().describe()
                ),
                self.peek().span,
            )
            .into())
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(Diagnostic::new(
                format!("expected identifier, found {}", other.describe()),
                self.peek().span,
            )
            .into()),
        }
    }

    fn at_type(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::KwDouble | TokenKind::KwFloat | TokenKind::KwInt | TokenKind::KwVoid
        ) || (self.at(TokenKind::KwConst)
            && matches!(
                self.nth_kind(1),
                TokenKind::KwDouble | TokenKind::KwFloat | TokenKind::KwInt
            ))
    }

    fn base_type(&mut self) -> Result<Ty, ParseError> {
        if self.at(TokenKind::KwConst) {
            self.bump(); // const is accepted and dropped
        }
        let t = self.bump();
        match t.kind {
            TokenKind::KwDouble => Ok(Ty::Double),
            TokenKind::KwFloat => Ok(Ty::Float),
            TokenKind::KwInt => Ok(Ty::Int),
            TokenKind::KwVoid => Ok(Ty::Void),
            other => Err(Diagnostic::new(
                format!("expected type, found {}", other.describe()),
                t.span,
            )
            .into()),
        }
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let start = self.peek().span;
        let ret = self.base_type()?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if self.at(TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let body = self.block_body()?;
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Function {
            ret,
            name,
            params,
            body,
            span: start.merge(end),
        })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let start = self.peek().span;
        let mut ty = self.base_type()?;
        while self.at(TokenKind::Star) {
            self.bump();
            ty = Ty::Ptr(Box::new(ty));
        }
        let (name, span) = self.expect_ident()?;
        // Array parameters: `double a[10]` or `double a[10][10]` or `double a[]`.
        let mut dims = Vec::new();
        while self.at(TokenKind::LBracket) {
            self.bump();
            if self.at(TokenKind::RBracket) {
                self.bump();
                dims.push(None);
            } else {
                let t = self.bump();
                match t.kind {
                    TokenKind::IntLit(n) if n > 0 => dims.push(Some(n as usize)),
                    other => {
                        return Err(Diagnostic::new(
                            format!("expected array size, found {}", other.describe()),
                            t.span,
                        )
                        .into())
                    }
                }
                self.expect(TokenKind::RBracket)?;
            }
        }
        for dim in dims.into_iter().rev() {
            ty = match dim {
                Some(n) => Ty::Array(Box::new(ty), n),
                None => Ty::Ptr(Box::new(ty)),
            };
        }
        Ok(Param {
            ty,
            name,
            span: start.merge(span),
        })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        while !self.at(TokenKind::RBrace) && !self.at(TokenKind::Eof) {
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::Pragma(payload) => {
                self.bump();
                Ok(Stmt::Pragma { payload, span })
            }
            TokenKind::LBrace => {
                self.bump();
                let body = self.block_body()?;
                let end = self.expect(TokenKind::RBrace)?.span;
                Ok(Stmt::Block {
                    body,
                    span: span.merge(end),
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.at(TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::Return {
                    value,
                    span: span.merge(end),
                })
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            _ if self.at_type() => {
                let s = self.decl_stmt()?;
                Ok(s)
            }
            _ => {
                let s = self.assign_or_expr_stmt()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        let mut ty = self.base_type()?;
        let (name, nspan) = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.at(TokenKind::LBracket) {
            self.bump();
            let t = self.bump();
            match t.kind {
                TokenKind::IntLit(n) if n > 0 => dims.push(n as usize),
                other => {
                    return Err(Diagnostic::new(
                        format!(
                            "array size must be a positive integer literal, found {}",
                            other.describe()
                        ),
                        t.span,
                    )
                    .into())
                }
            }
            self.expect(TokenKind::RBracket)?;
        }
        for n in dims.into_iter().rev() {
            ty = Ty::Array(Box::new(ty), n);
        }
        let init = if self.at(TokenKind::Assign) {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        let _ = nspan;
        Ok(Stmt::Decl {
            ty,
            name,
            init,
            span: start.merge(end),
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(TokenKind::KwIf)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_body = self.stmt_or_block()?;
        let else_body = if self.at(TokenKind::KwElse) {
            self.bump();
            self.stmt_or_block()?
        } else {
            Vec::new()
        };
        let end = else_body
            .last()
            .or(then_body.last())
            .map(|s| s.span())
            .unwrap_or(start);
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            span: start.merge(end),
        })
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.at(TokenKind::LBrace) {
            self.bump();
            let body = self.block_body()?;
            self.expect(TokenKind::RBrace)?;
            Ok(body)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(TokenKind::KwFor)?.span;
        self.expect(TokenKind::LParen)?;
        let init = if self.at(TokenKind::Semi) {
            self.bump();
            None
        } else if self.at_type() {
            Some(Box::new(self.decl_stmt()?))
        } else {
            let s = self.assign_or_expr_stmt()?;
            self.expect(TokenKind::Semi)?;
            Some(Box::new(s))
        };
        let cond = if self.at(TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.at(TokenKind::RParen) {
            None
        } else {
            Some(Box::new(self.assign_or_expr_stmt()?))
        };
        self.expect(TokenKind::RParen)?;
        let body = self.stmt_or_block()?;
        let end = body.last().map(|s| s.span()).unwrap_or(start);
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span: start.merge(end),
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(TokenKind::KwWhile)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.stmt_or_block()?;
        let end = body.last().map(|s| s.span()).unwrap_or(start);
        Ok(Stmt::While {
            cond,
            body,
            span: start.merge(end),
        })
    }

    /// Parses `lhs op= rhs`, `i++`, `i--` or a bare expression (no `;`).
    fn assign_or_expr_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        let lhs = self.expr()?;
        let op = match self.peek_kind() {
            TokenKind::Assign => Some(AssignOp::Set),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            TokenKind::StarAssign => Some(AssignOp::Mul),
            TokenKind::SlashAssign => Some(AssignOp::Div),
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let t = self.bump();
                if !lhs.is_lvalue() {
                    return Err(Diagnostic::new("++/-- needs an lvalue", t.span).into());
                }
                let one = Expr::IntLit {
                    value: 1,
                    span: t.span,
                };
                let op = if t.kind == TokenKind::PlusPlus {
                    AssignOp::Add
                } else {
                    AssignOp::Sub
                };
                return Ok(Stmt::Assign {
                    lhs,
                    op,
                    rhs: one,
                    span: start.merge(t.span),
                });
            }
            _ => None,
        };
        match op {
            Some(op) => {
                if !lhs.is_lvalue() {
                    return Err(
                        Diagnostic::new("assignment target is not an lvalue", lhs.span()).into(),
                    );
                }
                self.bump();
                let rhs = self.expr()?;
                let span = start.merge(rhs.span());
                Ok(Stmt::Assign { lhs, op, rhs, span })
            }
            None => {
                let span = start.merge(lhs.span());
                Ok(Stmt::ExprStmt { expr: lhs, span })
            }
        }
    }

    // -- expressions (precedence climbing) ---------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek_kind() {
                TokenKind::PipePipe => (BinOp::Or, 1),
                TokenKind::AmpAmp => (BinOp::And, 2),
                TokenKind::EqEq => (BinOp::Eq, 3),
                TokenKind::NotEq => (BinOp::Ne, 3),
                TokenKind::Lt => (BinOp::Lt, 4),
                TokenKind::Le => (BinOp::Le, 4),
                TokenKind::Gt => (BinOp::Gt, 4),
                TokenKind::Ge => (BinOp::Ge, 4),
                TokenKind::Plus => (BinOp::Add, 5),
                TokenKind::Minus => (BinOp::Sub, 5),
                TokenKind::Star => (BinOp::Mul, 6),
                TokenKind::Slash => (BinOp::Div, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        match self.peek_kind() {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = span.merge(operand.span());
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::Not => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = span.merge(operand.span());
                Ok(Expr::Un {
                    op: UnOp::Not,
                    operand: Box::new(operand),
                    span,
                })
            }
            // Cast `(T) expr` — lookahead distinguishes from parenthesis.
            TokenKind::LParen
                if matches!(
                    self.nth_kind(1),
                    TokenKind::KwDouble | TokenKind::KwFloat | TokenKind::KwInt
                ) && *self.nth_kind(2) == TokenKind::RParen =>
            {
                self.bump();
                let ty = self.base_type()?;
                self.expect(TokenKind::RParen)?;
                let operand = self.unary_expr()?;
                let span = span.merge(operand.span());
                Ok(Expr::Cast {
                    ty,
                    operand: Box::new(operand),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        while self.at(TokenKind::LBracket) {
            self.bump();
            let index = self.expr()?;
            let end = self.expect(TokenKind::RBracket)?.span;
            let span = e.span().merge(end);
            e = Expr::Index {
                base: Box::new(e),
                index: Box::new(index),
                span,
            };
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let t = self.bump();
        match t.kind {
            TokenKind::IntLit(value) => Ok(Expr::IntLit {
                value,
                span: t.span,
            }),
            TokenKind::FloatLit(value) => Ok(Expr::FloatLit {
                value,
                span: t.span,
            }),
            TokenKind::Ident(name) => {
                if self.at(TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.at(TokenKind::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        span: t.span.merge(end),
                    })
                } else {
                    Ok(Expr::Ident { name, span: t.span })
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(Diagnostic::new(
                format!("expected expression, found {}", other.describe()),
                t.span,
            )
            .into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_function() {
        let u = parse("double f(double x) { return x * x; }").unwrap();
        assert_eq!(u.functions.len(), 1);
        let f = &u.functions[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.ret, Ty::Double);
        assert_eq!(f.params[0].ty, Ty::Double);
        assert!(matches!(f.body[0], Stmt::Return { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let u = parse("double f(double a, double b, double c) { return a + b * c; }").unwrap();
        let Stmt::Return {
            value: Some(Expr::Bin { op, rhs, .. }),
            ..
        } = &u.functions[0].body[0]
        else {
            panic!("shape");
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_for_loop_with_decl() {
        let u =
            parse("void f(double a[10]) { for (int i = 0; i < 10; i++) { a[i] = a[i] + 1.0; } }")
                .unwrap();
        let Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } = &u.functions[0].body[0]
        else {
            panic!("expected for");
        };
        assert!(matches!(init.as_deref(), Some(Stmt::Decl { .. })));
        assert!(cond.is_some());
        assert!(matches!(
            step.as_deref(),
            Some(Stmt::Assign {
                op: AssignOp::Add,
                ..
            })
        ));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_2d_array_param_and_index() {
        let u = parse("void f(double g[4][4]) { g[1][2] = 0.5; }").unwrap();
        let p = &u.functions[0].params[0];
        assert_eq!(
            p.ty,
            Ty::Array(Box::new(Ty::Array(Box::new(Ty::Double), 4)), 4)
        );
        let Stmt::Assign { lhs, .. } = &u.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(lhs, Expr::Index { .. }));
    }

    #[test]
    fn parses_pointer_param() {
        let u = parse("void f(double *p, int n) { p[0] = 1.0; }").unwrap();
        assert_eq!(u.functions[0].params[0].ty, Ty::Ptr(Box::new(Ty::Double)));
        assert_eq!(u.functions[0].params[1].ty, Ty::Int);
    }

    #[test]
    fn parses_if_else() {
        let u =
            parse("double f(double x) { if (x < 0.0) { x = -x; } else x = x + 1.0; return x; }")
                .unwrap();
        let Stmt::If {
            then_body,
            else_body,
            ..
        } = &u.functions[0].body[0]
        else {
            panic!()
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn parses_while_and_compound_assign() {
        let u = parse("void f(double x) { while (x < 10.0) { x *= 2.0; } }").unwrap();
        let Stmt::While { body, .. } = &u.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            body[0],
            Stmt::Assign {
                op: AssignOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_calls() {
        let u = parse("double f(double x) { return sqrt(fabs(x)); }").unwrap();
        let Stmt::Return {
            value: Some(Expr::Call { callee, args, .. }),
            ..
        } = &u.functions[0].body[0]
        else {
            panic!()
        };
        assert_eq!(callee, "sqrt");
        assert!(matches!(&args[0], Expr::Call { callee, .. } if callee == "fabs"));
    }

    #[test]
    fn parses_cast() {
        let u = parse("double f(int i) { return (double) i; }").unwrap();
        let Stmt::Return {
            value: Some(Expr::Cast { ty, .. }),
            ..
        } = &u.functions[0].body[0]
        else {
            panic!()
        };
        assert_eq!(*ty, Ty::Double);
    }

    #[test]
    fn parses_pragma_statement() {
        let u =
            parse("void f(double x) {\n#pragma safegen prioritize(x)\n x = x + 1.0; }").unwrap();
        assert!(
            matches!(&u.functions[0].body[0], Stmt::Pragma { payload, .. } if payload == "prioritize(x)")
        );
    }

    #[test]
    fn parses_unary_chain() {
        let u = parse("double f(double x) { return --x + -(-x); }");
        // `--x` lexes as decrement, which is a statement form, not unary
        // minus twice: this must be a parse error in expression position.
        assert!(u.is_err());
        let u2 = parse("double f(double x) { return -(-x); }").unwrap();
        assert!(matches!(
            &u2.functions[0].body[0],
            Stmt::Return {
                value: Some(Expr::Un { .. }),
                ..
            }
        ));
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(parse("void f(double x) { 1.0 = x; }").is_err());
    }

    #[test]
    fn reports_span_of_error() {
        let err = parse("void f( { }").unwrap_err();
        assert!(err.diagnostics[0].span.line >= 1);
    }

    #[test]
    fn parses_multiple_functions() {
        let u = parse("void f(double x) { } void g(double y) { }").unwrap();
        assert_eq!(u.functions.len(), 2);
    }

    #[test]
    fn parses_local_array_decl() {
        let u = parse("void f() { double t[8]; t[0] = 1.0; }").unwrap();
        let Stmt::Decl { ty, .. } = &u.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(*ty, Ty::Array(Box::new(Ty::Double), 8));
    }

    #[test]
    fn logical_operators_precedence() {
        let u = parse("void f(double x) { if (x < 1.0 && x > 0.0 || x == 2.0) x = 0.0; }").unwrap();
        let Stmt::If {
            cond: Expr::Bin { op, .. },
            ..
        } = &u.functions[0].body[0]
        else {
            panic!()
        };
        assert_eq!(*op, BinOp::Or);
    }
}
