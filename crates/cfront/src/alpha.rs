//! Alpha renaming: makes every variable name unique within a function.
//!
//! C allows a name to be redeclared in disjoint or nested scopes; the rest
//! of the pipeline (semantic tables, TAC, DAG construction, bytecode
//! compilation) is deliberately name-keyed and flat. This pass bridges the
//! two worlds: it resolves each identifier to its innermost binding and
//! renames shadowing/sibling redeclarations to fresh names (`i__2`, …), so
//! downstream passes can assume unique names.
//!
//! `#pragma safegen prioritize(v)` payloads are rewritten with the binding
//! visible at the pragma's position.

use crate::ast::{Expr, Function, Stmt, Unit};
use std::collections::{HashMap, HashSet};

/// Renames all functions of the unit. Idempotent on already-unique input.
pub fn rename_unique(unit: &Unit) -> Unit {
    let functions = unit
        .functions
        .iter()
        .map(|f| {
            let mut cx = Renamer {
                scopes: vec![HashMap::new()],
                used: HashSet::new(),
            };
            for p in &f.params {
                // Parameter names are kept verbatim (they are the ABI).
                cx.used.insert(p.name.clone());
                cx.scopes[0].insert(p.name.clone(), p.name.clone());
            }
            let body = cx.block(&f.body);
            Function {
                ret: f.ret.clone(),
                name: f.name.clone(),
                params: f.params.clone(),
                body,
                span: f.span,
            }
        })
        .collect();
    Unit { functions }
}

struct Renamer {
    scopes: Vec<HashMap<String, String>>,
    used: HashSet<String>,
}

impl Renamer {
    fn lookup(&self, name: &str) -> Option<&str> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .map(String::as_str)
    }

    fn declare(&mut self, name: &str) -> String {
        let fresh = if self.used.contains(name) {
            let mut n = 2;
            loop {
                let cand = format!("{name}__{n}");
                if !self.used.contains(&cand) {
                    break cand;
                }
                n += 1;
            }
        } else {
            name.to_string()
        };
        self.used.insert(fresh.clone());
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), fresh.clone());
        fresh
    }

    fn block(&mut self, body: &[Stmt]) -> Vec<Stmt> {
        body.iter().map(|s| self.stmt(s)).collect()
    }

    fn scoped_block(&mut self, body: &[Stmt]) -> Vec<Stmt> {
        self.scopes.push(HashMap::new());
        let out = self.block(body);
        self.scopes.pop();
        out
    }

    fn stmt(&mut self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Decl {
                ty,
                name,
                init,
                span,
            } => {
                // Initializer sees the *outer* binding (C semantics for
                // our subset: no self-referential initializers).
                let init = init.as_ref().map(|e| self.expr(e));
                let name = self.declare(name);
                Stmt::Decl {
                    ty: ty.clone(),
                    name,
                    init,
                    span: *span,
                }
            }
            Stmt::Assign { lhs, op, rhs, span } => Stmt::Assign {
                lhs: self.expr(lhs),
                op: *op,
                rhs: self.expr(rhs),
                span: *span,
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => Stmt::If {
                cond: self.expr(cond),
                then_body: self.scoped_block(then_body),
                else_body: self.scoped_block(else_body),
                span: *span,
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                // The for-header opens a scope covering init/cond/step/body.
                self.scopes.push(HashMap::new());
                let init = init.as_ref().map(|i| Box::new(self.stmt(i)));
                let cond = cond.as_ref().map(|c| self.expr(c));
                let step = step.as_ref().map(|st| Box::new(self.stmt(st)));
                let body = self.block(body);
                self.scopes.pop();
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span: *span,
                }
            }
            Stmt::While { cond, body, span } => Stmt::While {
                cond: self.expr(cond),
                body: self.scoped_block(body),
                span: *span,
            },
            Stmt::Return { value, span } => Stmt::Return {
                value: value.as_ref().map(|e| self.expr(e)),
                span: *span,
            },
            Stmt::ExprStmt { expr, span } => Stmt::ExprStmt {
                expr: self.expr(expr),
                span: *span,
            },
            Stmt::Pragma { payload, span } => {
                // Rewrite prioritize(v) with the visible binding of v.
                let payload = payload
                    .strip_prefix("prioritize(")
                    .and_then(|r| r.strip_suffix(')'))
                    .and_then(|v| self.lookup(v.trim()))
                    .map(|fresh| format!("prioritize({fresh})"))
                    .unwrap_or_else(|| payload.clone());
                Stmt::Pragma {
                    payload,
                    span: *span,
                }
            }
            Stmt::Block { body, span } => Stmt::Block {
                body: self.scoped_block(body),
                span: *span,
            },
        }
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Ident { name, span } => Expr::Ident {
                name: self.lookup(name).unwrap_or(name).to_string(),
                span: *span,
            },
            Expr::Index { base, index, span } => Expr::Index {
                base: Box::new(self.expr(base)),
                index: Box::new(self.expr(index)),
                span: *span,
            },
            Expr::Bin { op, lhs, rhs, span } => Expr::Bin {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
                span: *span,
            },
            Expr::Un { op, operand, span } => Expr::Un {
                op: *op,
                operand: Box::new(self.expr(operand)),
                span: *span,
            },
            Expr::Call { callee, args, span } => Expr::Call {
                callee: callee.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
                span: *span,
            },
            Expr::Cast { ty, operand, span } => Expr::Cast {
                ty: ty.clone(),
                operand: Box::new(self.expr(operand)),
                span: *span,
            },
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print_unit;
    use crate::sema::analyze;

    fn renamed(src: &str) -> String {
        let u = parse(src).unwrap();
        let r = rename_unique(&u);
        // The renamed unit must pass the strict no-shadowing analysis.
        analyze(&r).unwrap_or_else(|e| panic!("analyze after rename: {e}\n{}", print_unit(&r)));
        print_unit(&r)
    }

    #[test]
    fn sibling_loops_renamed() {
        let out = renamed(
            "void f(double a[4]) {
                 for (int i = 0; i < 4; i++) { a[i] = a[i] + 1.0; }
                 for (int i = 0; i < 4; i++) { a[i] = a[i] * 2.0; }
             }",
        );
        assert!(out.contains("int i "), "{out}");
        assert!(out.contains("i__2"), "{out}");
    }

    #[test]
    fn nested_shadowing_resolved_innermost() {
        let out = renamed(
            "void f(double x) {
                 double t = x;
                 if (x < 1.0) {
                     double t = x + 1.0;
                     x = t;
                 }
                 x = t;
             }",
        );
        // Inner t renamed; inner use refers to the renamed one, outer use
        // to the original.
        assert!(out.contains("t__2 = x + 1.0"), "{out}");
        assert!(out.contains("x = t__2"), "{out}");
        assert!(out.ends_with("x = t;\n}\n"), "{out}");
    }

    #[test]
    fn idempotent_on_unique_names() {
        let src = "double f(double a, double b) { double s = a + b; return s; }";
        let u = parse(src).unwrap();
        assert_eq!(print_unit(&rename_unique(&u)), print_unit(&u));
    }

    #[test]
    fn initializer_sees_outer_binding() {
        let out = renamed(
            "void f(double x) {
                 if (x < 1.0) {
                     double x = x + 1.0;
                     x = x * 2.0;
                 }
             }",
        );
        // `double x = x + 1.0` initializer uses the parameter.
        assert!(out.contains("x__2 = x + 1.0"), "{out}");
        assert!(out.contains("x__2 = x__2 * 2.0"), "{out}");
    }

    #[test]
    fn pragma_payload_follows_binding() {
        let out = renamed(
            "void f(double z) {
                 if (z < 1.0) {
                     double z = z * 2.0;
                     #pragma safegen prioritize(z)
                     z = z + 1.0;
                 }
             }",
        );
        assert!(out.contains("prioritize(z__2)"), "{out}");
    }

    #[test]
    fn luf_style_triple_reuse() {
        let out = renamed(
            "void f(double a[3][3]) {
                 for (int k = 0; k < 2; k++) {
                     for (int j = 0; j < 3; j++) { a[k][j] = a[k][j] + 1.0; }
                     for (int i = 0; i < 3; i++) {
                         for (int j = 0; j < 3; j++) { a[i][j] = a[i][j] * 2.0; }
                     }
                 }
             }",
        );
        assert!(out.contains("j__2"), "{out}");
    }
}
