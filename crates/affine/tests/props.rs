//! Property-based tests: the soundness invariant of the affine runtime.
//!
//! Random expression trees are evaluated simultaneously as affine forms
//! (under every placement × fusion × k combination) and in double-double
//! reference arithmetic; the dd result must always be inside the affine
//! range. Structural invariants (symbol budget, symbol ordering,
//! vectorized ≡ scalar) are checked alongside.

use proptest::prelude::*;
use safegen_affine::{
    AaConfig, AaContext, Affine, AffineDd, AffineF64, Fusion, Placement, Protect,
};
use safegen_fpcore::Dd;

/// A small random expression-program: a list of operations over a rolling
/// window of values.
#[derive(Clone, Debug)]
enum Op {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Const(f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Add(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Sub(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Mul(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Div(a, b)),
        (0.1f64..4.0).prop_map(Op::Const),
    ]
}

fn program() -> impl Strategy<Value = (Vec<f64>, Vec<Op>)> {
    (
        prop::collection::vec(0.1f64..2.0, 4),
        prop::collection::vec(op_strategy(), 1..25),
    )
}

/// Relative error bound of one dd reference operation, with ample margin.
const DD_REF_REL: f64 = 1e-29;

/// Evaluates the program as affine forms and in dd, checking containment
/// after every step.
///
/// The dd reference is itself inexact (≈2⁻¹⁰⁴ relative per step), and a
/// full-AA enclosure after perfect cancellation can be *tighter* than the
/// reference's drift — so a running error bound `tol` is carried along and
/// containment is checked against the tolerance-widened range.
fn check_soundness(cfg: AaConfig, inputs: &[f64], ops: &[Op]) -> Result<(), TestCaseError> {
    let ctx = AaContext::new(cfg);
    let mut vals: Vec<AffineF64> = inputs
        .iter()
        .map(|&x| Affine::from_input(x, &ctx))
        .collect();
    let mut refs: Vec<(Dd, f64)> = inputs.iter().map(|&x| (Dd::from(x), 0.0)).collect();

    for op in ops {
        let n = vals.len();
        let (v, r, tol) = match *op {
            Op::Add(a, b) => {
                let (ra, ta) = refs[a % n];
                let (rb, tb) = refs[b % n];
                let r = ra + rb;
                (
                    vals[a % n].add(&vals[b % n], &ctx, Protect::None),
                    r,
                    ta + tb + DD_REF_REL * r.abs().hi(),
                )
            }
            Op::Sub(a, b) => {
                let (ra, ta) = refs[a % n];
                let (rb, tb) = refs[b % n];
                let r = ra - rb;
                (
                    vals[a % n].sub(&vals[b % n], &ctx, Protect::None),
                    r,
                    ta + tb + DD_REF_REL * r.abs().hi(),
                )
            }
            Op::Mul(a, b) => {
                let (ra, ta) = refs[a % n];
                let (rb, tb) = refs[b % n];
                let r = ra * rb;
                (
                    vals[a % n].mul(&vals[b % n], &ctx, Protect::None),
                    r,
                    ta * rb.abs().hi() + tb * ra.abs().hi() + DD_REF_REL * r.abs().hi(),
                )
            }
            Op::Div(a, b) => {
                let (lo, hi) = vals[b % n].range();
                if lo <= 0.0 && hi >= 0.0 {
                    continue; // skip divisions through zero
                }
                let (ra, ta) = refs[a % n];
                let (rb, tb) = refs[b % n];
                let r = ra / rb;
                let babs = rb.abs().hi().max(f64::MIN_POSITIVE);
                (
                    vals[a % n].div(&vals[b % n], &ctx, Protect::None),
                    r,
                    ta / babs + tb * ra.abs().hi() / (babs * babs) + DD_REF_REL * r.abs().hi(),
                )
            }
            Op::Const(c) => (Affine::constant(c, &ctx), Dd::from(c), 0.0),
        };
        let (lo, hi) = v.range();
        if lo.is_finite() && hi.is_finite() && tol.is_finite() {
            prop_assert!(
                Dd::from(lo) - Dd::from(tol) <= r && r <= Dd::from(hi) + Dd::from(tol),
                "dd reference {r} (±{tol:e}) escaped [{lo}, {hi}] after {op:?} (cfg {cfg:?})"
            );
        }
        prop_assert!(
            cfg.k == usize::MAX || v.n_symbols() <= cfg.k,
            "symbol budget violated"
        );
        vals.push(v);
        refs.push((r, tol));
        // Keep the window bounded.
        if vals.len() > 8 {
            vals.remove(0);
            refs.remove(0);
        }
    }
    Ok(())
}

fn all_configs(k: usize) -> Vec<AaConfig> {
    let mut cfgs = Vec::new();
    for placement in [Placement::Sorted, Placement::DirectMapped] {
        for fusion in [
            Fusion::Random,
            Fusion::Oldest,
            Fusion::Smallest,
            Fusion::MeanThreshold,
        ] {
            cfgs.push(
                AaConfig::new(k)
                    .with_placement(placement)
                    .with_fusion(fusion)
                    .with_vectorized(false),
            );
        }
    }
    cfgs.push(AaConfig::new(k)); // vectorized direct/smallest
    cfgs.push(AaConfig::full());
    cfgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn soundness_all_configs_k4((inputs, ops) in program()) {
        for cfg in all_configs(4) {
            check_soundness(cfg, &inputs, &ops)?;
        }
    }

    #[test]
    fn soundness_all_configs_k12((inputs, ops) in program()) {
        for cfg in all_configs(12) {
            check_soundness(cfg, &inputs, &ops)?;
        }
    }

    #[test]
    fn soundness_k1_extreme((inputs, ops) in program()) {
        for placement in [Placement::Sorted, Placement::DirectMapped] {
            let cfg = AaConfig::new(1).with_placement(placement).with_vectorized(false);
            check_soundness(cfg, &inputs, &ops)?;
        }
    }

    #[test]
    fn vectorized_equals_scalar((inputs, ops) in program()) {
        let run = |vectorized: bool| -> Vec<(f64, f64)> {
            let ctx = AaContext::new(AaConfig::new(8).with_vectorized(vectorized));
            let mut vals: Vec<AffineF64> =
                inputs.iter().map(|&x| Affine::from_input(x, &ctx)).collect();
            let mut out = Vec::new();
            for op in &ops {
                let n = vals.len();
                let v = match *op {
                    Op::Add(a, b) => vals[a % n].add(&vals[b % n], &ctx, Protect::None),
                    Op::Sub(a, b) => vals[a % n].sub(&vals[b % n], &ctx, Protect::None),
                    Op::Mul(a, b) => vals[a % n].mul(&vals[b % n], &ctx, Protect::None),
                    Op::Div(a, b) => {
                        let (lo, hi) = vals[b % n].range();
                        if lo <= 0.0 && hi >= 0.0 { continue; }
                        vals[a % n].div(&vals[b % n], &ctx, Protect::None)
                    }
                    Op::Const(c) => Affine::constant(c, &ctx),
                };
                out.push(v.range());
                vals.push(v);
                if vals.len() > 8 { vals.remove(0); }
            }
            out
        };
        prop_assert_eq!(run(false), run(true));
    }

    #[test]
    fn radius_never_negative((inputs, ops) in program()) {
        let ctx = AaContext::new(AaConfig::new(6));
        let mut vals: Vec<AffineF64> =
            inputs.iter().map(|&x| Affine::from_input(x, &ctx)).collect();
        for op in &ops {
            let n = vals.len();
            let v = match *op {
                Op::Add(a, b) => vals[a % n].add(&vals[b % n], &ctx, Protect::None),
                Op::Sub(a, b) => vals[a % n].sub(&vals[b % n], &ctx, Protect::None),
                Op::Mul(a, b) => vals[a % n].mul(&vals[b % n], &ctx, Protect::None),
                _ => continue,
            };
            prop_assert!(v.radius() >= 0.0);
            let (lo, hi) = v.range();
            prop_assert!(lo <= hi);
            vals.push(v);
            if vals.len() > 8 { vals.remove(0); }
        }
    }

    #[test]
    fn full_aa_is_at_least_as_accurate_as_bounded((inputs, ops) in program()) {
        // Accuracy ordering: full AA ≥ bounded AA (k=4) on the final value.
        let run = |cfg: AaConfig| -> f64 {
            let ctx = AaContext::new(cfg);
            let mut vals: Vec<AffineF64> =
                inputs.iter().map(|&x| Affine::from_input(x, &ctx)).collect();
            let mut last = vals[0].clone();
            for op in &ops {
                let n = vals.len();
                let v = match *op {
                    Op::Add(a, b) => vals[a % n].add(&vals[b % n], &ctx, Protect::None),
                    Op::Sub(a, b) => vals[a % n].sub(&vals[b % n], &ctx, Protect::None),
                    Op::Mul(a, b) => vals[a % n].mul(&vals[b % n], &ctx, Protect::None),
                    _ => continue,
                };
                last = v.clone();
                vals.push(v);
                if vals.len() > 8 { vals.remove(0); }
            }
            last.acc_bits()
        };
        let full = run(AaConfig::full());
        let bounded = run(AaConfig::new(4).with_placement(Placement::Sorted).with_vectorized(false));
        // Tiny slack: the noise-merge order differs, costing at most a
        // fraction of a bit.
        prop_assert!(full >= bounded - 0.6, "full {full} < bounded {bounded}");
    }

    #[test]
    fn dda_center_contains_reference(x in 0.1f64..2.0, y in 0.1f64..2.0) {
        let ctx = AaContext::new(AaConfig::new(8).with_placement(Placement::Sorted).with_vectorized(false));
        let a = AffineDd::from_input(x, &ctx);
        let b = AffineDd::from_input(y, &ctx);
        let mut v = a.clone();
        let mut r = Dd::from(x);
        for _ in 0..10 {
            v = v.mul(&b, &ctx, Protect::None);
            r = r * Dd::from(y);
            prop_assert!(v.contains_dd(r));
        }
    }

    #[test]
    fn sqrt_recip_soundness(x in 0.01f64..100.0, w in 0.0f64..0.01) {
        let ctx = AaContext::new(AaConfig::new(8));
        let a = AffineF64::from_interval(x, x + w, &ctx);
        let s = a.sqrt(&ctx, Protect::None);
        // Both endpoints' exact square roots must be inside.
        prop_assert!(s.contains_dd(Dd::from(x).sqrt()));
        prop_assert!(s.contains_dd(Dd::from(x + w).sqrt()));
        let r = a.recip(&ctx, Protect::None);
        prop_assert!(r.contains_dd(Dd::ONE / Dd::from(x)));
        prop_assert!(r.contains_dd(Dd::ONE / Dd::from(x + w)));
    }

    #[test]
    fn protection_never_breaks_soundness((inputs, ops) in program()) {
        // Protecting arbitrary symbols is a performance hint, never a
        // soundness hazard.
        let ctx = AaContext::new(AaConfig::new(4).with_vectorized(false));
        let mut vals: Vec<AffineF64> =
            inputs.iter().map(|&x| Affine::from_input(x, &ctx)).collect();
        let mut refs: Vec<Dd> = inputs.iter().map(|&x| Dd::from(x)).collect();
        for op in &ops {
            let n = vals.len();
            let ids = vals[0].symbol_ids();
            let prot = Protect::Ids(&ids);
            let (v, r) = match *op {
                Op::Add(a, b) => (vals[a % n].add(&vals[b % n], &ctx, prot), refs[a % n] + refs[b % n]),
                Op::Sub(a, b) => (vals[a % n].sub(&vals[b % n], &ctx, prot), refs[a % n] - refs[b % n]),
                Op::Mul(a, b) => (vals[a % n].mul(&vals[b % n], &ctx, prot), refs[a % n] * refs[b % n]),
                _ => continue,
            };
            prop_assert!(v.contains_dd(r));
            prop_assert!(v.n_symbols() <= 4);
            vals.push(v);
            refs.push(r);
            if vals.len() > 8 { vals.remove(0); refs.remove(0); }
        }
    }
}
