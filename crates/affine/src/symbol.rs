//! Error symbols and terms.

/// Identifier of an error symbol `εᵢ`.
///
/// Identifiers are allocated monotonically by [`crate::AaContext`], so a
/// smaller id always means an *older* symbol — the property the
/// oldest-symbol fusion policy relies on.
pub type SymbolId = u64;

/// Sentinel id marking an empty slot in the direct-mapped representation.
pub const NO_SYMBOL: SymbolId = u64::MAX;

/// One term `aᵢ·εᵢ` of an affine form: the symbol identifier and the
/// deviation magnitude (coefficient), always stored in `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Term {
    /// Identifier of the error symbol, or [`NO_SYMBOL`] for an empty slot.
    pub id: SymbolId,
    /// Coefficient of the symbol.
    pub coeff: f64,
}

impl Term {
    /// An empty direct-mapped slot.
    pub const EMPTY: Term = Term {
        id: NO_SYMBOL,
        coeff: 0.0,
    };

    /// Creates a term.
    #[inline]
    pub fn new(id: SymbolId, coeff: f64) -> Term {
        Term { id, coeff }
    }

    /// True if this is an occupied (non-sentinel) term.
    #[inline]
    pub fn is_occupied(self) -> bool {
        self.id != NO_SYMBOL
    }
}

impl Default for Term {
    fn default() -> Self {
        Term::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_is_not_occupied() {
        assert!(!Term::EMPTY.is_occupied());
        assert!(Term::new(0, 1.0).is_occupied());
        assert_eq!(Term::default(), Term::EMPTY);
    }
}
