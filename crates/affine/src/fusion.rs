//! Symbol fusion policies (paper Sec. V-B, Table I).
//!
//! After an operation merges two operands' symbols, the result may exceed
//! the budget of `k` symbols. `n − k + 1` of them are then *fused* into the
//! fresh round-off symbol of the operation (eq. 6): their magnitudes add,
//! their identities — and with them any chance of later cancellation — are
//! lost. The policy decides which symbols to sacrifice.

use crate::center::ErrAcc;
use crate::config::{AaContext, Fusion, Protect};
use crate::symbol::Term;

/// Selects `excess` victim indices from `terms` according to `policy`,
/// never choosing protected symbols while unprotected ones remain.
///
/// Returns the victim indices (unordered). `excess` must be ≤ `terms.len()`.
/// Mean-threshold may return *more* than `excess` victims (it fuses
/// everything below the mean — that is what makes it cheap).
pub(crate) fn select_victims(
    terms: &[Term],
    excess: usize,
    policy: Fusion,
    ctx: &AaContext,
    protect: Protect<'_>,
) -> Vec<usize> {
    debug_assert!(excess <= terms.len());
    if excess == 0 {
        return Vec::new();
    }

    // Partition candidate indices: unprotected first, protected as reserve.
    let mut unprotected: Vec<usize> = Vec::with_capacity(terms.len());
    let mut protected: Vec<usize> = Vec::new();
    for (i, t) in terms.iter().enumerate() {
        if protect.contains(t.id) {
            protected.push(i);
        } else {
            unprotected.push(i);
        }
    }

    let mut victims = match policy {
        Fusion::Oldest => {
            // Oldest = smallest ids first.
            unprotected.sort_unstable_by_key(|&i| terms[i].id);
            unprotected
        }
        Fusion::Smallest => {
            if unprotected.len() > excess {
                unprotected.select_nth_unstable_by(excess - 1, |&a, &b| {
                    terms[a]
                        .coeff
                        .abs()
                        .partial_cmp(&terms[b].coeff.abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            }
            unprotected
        }
        Fusion::MeanThreshold => {
            // Fuse everything strictly below the mean magnitude, topping up
            // with the oldest symbols if that frees too few slots.
            let mut acc = ErrAcc::default();
            for t in terms {
                acc.add_abs(t.coeff);
            }
            let mean = acc.value() / terms.len() as f64;
            let (mut below, mut above): (Vec<usize>, Vec<usize>) = unprotected
                .into_iter()
                .partition(|&i| terms[i].coeff.abs() < mean);
            if below.len() < excess {
                above.sort_unstable_by_key(|&i| terms[i].id);
                below.extend(above.into_iter().take(excess - below.len()));
            }
            // NOTE: may exceed `excess` — MP deliberately over-fuses.
            return top_up_with_protected(below, protected, excess, terms, policy, ctx);
        }
        Fusion::Random => {
            // Partial Fisher–Yates over the unprotected candidates.
            let n = unprotected.len();
            for i in 0..excess.min(n) {
                let j = i + (ctx.rand() as usize) % (n - i);
                unprotected.swap(i, j);
            }
            unprotected
        }
    };

    victims.truncate(excess);
    top_up_with_protected(victims, protected, excess, terms, policy, ctx)
}

/// If the unprotected pool was too small, victims must also be drawn from
/// the protected set (the budget is a hard constraint; protection is
/// best-effort, per the paper's capacity rule).
fn top_up_with_protected(
    mut victims: Vec<usize>,
    mut protected: Vec<usize>,
    excess: usize,
    terms: &[Term],
    policy: Fusion,
    ctx: &AaContext,
) -> Vec<usize> {
    if victims.len() >= excess {
        return victims;
    }
    let need = excess - victims.len();
    match policy {
        Fusion::Oldest | Fusion::MeanThreshold => {
            protected.sort_unstable_by_key(|&i| terms[i].id);
        }
        Fusion::Smallest => {
            if protected.len() > need {
                protected.select_nth_unstable_by(need - 1, |&a, &b| {
                    terms[a]
                        .coeff
                        .abs()
                        .partial_cmp(&terms[b].coeff.abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            }
        }
        Fusion::Random => {
            let n = protected.len();
            for i in 0..need.min(n) {
                let j = i + (ctx.rand() as usize) % (n - i);
                protected.swap(i, j);
            }
        }
    }
    victims.extend(protected.into_iter().take(need));
    victims
}

/// Resolves a direct-mapped slot conflict: two distinct symbols competing
/// for one slot. Returns `true` if the *first* (left) symbol keeps the
/// slot. The loser is fused into the operation's fresh symbol.
pub(crate) fn resolve_conflict(
    left: Term,
    right: Term,
    policy: Fusion,
    ctx: &AaContext,
    protect: Protect<'_>,
) -> bool {
    ctx.note_condensation();
    let lp = protect.contains(left.id);
    let rp = protect.contains(right.id);
    if lp != rp {
        return lp;
    }
    match policy {
        // SP and MP keep the larger magnitude (fusing the smaller loses
        // least potential cancellation).
        Fusion::Smallest | Fusion::MeanThreshold => left.coeff.abs() >= right.coeff.abs(),
        // OP fuses the older symbol: keep the newer (larger id).
        Fusion::Oldest => left.id > right.id,
        Fusion::Random => ctx.rand() & 1 == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AaConfig;

    fn terms(pairs: &[(u64, f64)]) -> Vec<Term> {
        pairs.iter().map(|&(id, c)| Term::new(id, c)).collect()
    }

    fn ctx() -> AaContext {
        AaContext::new(AaConfig::new(8))
    }

    #[test]
    fn oldest_picks_smallest_ids() {
        let ts = terms(&[(5, 1.0), (1, 2.0), (9, 3.0), (3, 4.0)]);
        let v = select_victims(&ts, 2, Fusion::Oldest, &ctx(), Protect::None);
        let mut ids: Vec<u64> = v.iter().map(|&i| ts[i].id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn smallest_picks_least_magnitudes() {
        let ts = terms(&[(0, 5.0), (1, 0.1), (2, 3.0), (3, 0.2)]);
        let v = select_victims(&ts, 2, Fusion::Smallest, &ctx(), Protect::None);
        let mut ids: Vec<u64> = v.iter().map(|&i| ts[i].id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn mean_threshold_fuses_below_mean() {
        // magnitudes 1,1,1,9 → mean 3 → fuses the three 1s even though
        // excess is only 1 (MP over-fuses by design).
        let ts = terms(&[(0, 1.0), (1, 1.0), (2, 1.0), (3, 9.0)]);
        let v = select_victims(&ts, 1, Fusion::MeanThreshold, &ctx(), Protect::None);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|&i| ts[i].coeff == 1.0));
    }

    #[test]
    fn mean_threshold_tops_up_with_oldest() {
        // All equal magnitudes → nothing below mean → falls back to oldest.
        let ts = terms(&[(7, 2.0), (3, 2.0), (5, 2.0)]);
        let v = select_victims(&ts, 2, Fusion::MeanThreshold, &ctx(), Protect::None);
        let mut ids: Vec<u64> = v.iter().map(|&i| ts[i].id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn random_selects_requested_count() {
        let ts = terms(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0), (4, 5.0)]);
        let v = select_victims(&ts, 3, Fusion::Random, &ctx(), Protect::None);
        assert_eq!(v.len(), 3);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "victims must be distinct");
    }

    #[test]
    fn protection_is_honored() {
        let ts = terms(&[(0, 0.1), (1, 0.2), (2, 0.3), (3, 0.4)]);
        let protected = [0u64, 1];
        let v = select_victims(&ts, 2, Fusion::Smallest, &ctx(), Protect::Ids(&protected));
        let mut ids: Vec<u64> = v.iter().map(|&i| ts[i].id).collect();
        ids.sort_unstable();
        // Smallest magnitudes are ids 0 and 1, but those are protected.
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn protection_yields_when_budget_forces_it() {
        let ts = terms(&[(0, 0.1), (1, 0.2), (2, 0.3)]);
        let protected = [0u64, 1, 2];
        let v = select_victims(&ts, 2, Fusion::Oldest, &ctx(), Protect::Ids(&protected));
        assert_eq!(v.len(), 2); // must still free the slots
    }

    #[test]
    fn conflict_resolution_policies() {
        let c = ctx();
        let old_small = Term::new(1, 0.1);
        let new_big = Term::new(9, 5.0);
        // SP keeps the bigger magnitude.
        assert!(!resolve_conflict(
            old_small,
            new_big,
            Fusion::Smallest,
            &c,
            Protect::None
        ));
        // OP keeps the newer id.
        assert!(!resolve_conflict(
            old_small,
            new_big,
            Fusion::Oldest,
            &c,
            Protect::None
        ));
        assert!(resolve_conflict(
            new_big,
            old_small,
            Fusion::Oldest,
            &c,
            Protect::None
        ));
    }

    #[test]
    fn conflict_protected_wins() {
        let c = ctx();
        let prot = [1u64];
        let protected_term = Term::new(1, 0.001);
        let other = Term::new(9, 100.0);
        assert!(resolve_conflict(
            protected_term,
            other,
            Fusion::Smallest,
            &c,
            Protect::Ids(&prot)
        ));
        assert!(!resolve_conflict(
            other,
            protected_term,
            Fusion::Smallest,
            &c,
            Protect::Ids(&prot)
        ));
    }

    #[test]
    fn zero_excess_is_noop() {
        let ts = terms(&[(0, 1.0)]);
        assert!(select_victims(&ts, 0, Fusion::Smallest, &ctx(), Protect::None).is_empty());
    }
}
