//! Reimplementations of the comparison systems of the paper's evaluation
//! (Sec. VII-B, Fig. 9), so the comparison can run without the original
//! C++/Scala artifacts:
//!
//! * [`YalaaAff0`] — Yalaa's `aff0` type: **full** affine arithmetic, no
//!   symbol limit, a fresh symbol per operation. Implemented library-style
//!   over an ordered map (Yalaa keeps an ordered symbol container per
//!   value), which carries the allocation/traversal overhead the paper
//!   measures SafeGen's flat-array code against.
//! * [`YalaaAff1`] — Yalaa's `aff1` type: symbols fixed to the inputs, all
//!   round-off accumulated in one uncorrelated noise term per value.
//! * [`CeresAffine`] — Ceres' `AffineFloat`: bounded symbol count with a
//!   compact-on-overflow policy that fuses the smallest terms into a new
//!   noise symbol, implemented persistently (each operation builds fresh
//!   maps, as an immutable Scala library does).
//!
//! All three are sound: they use the same directed-rounding substrate as
//! the native forms. What differs — deliberately — is the algorithmic
//! envelope and the data-structure style, which is what the runtime
//! comparison in Fig. 9 is about.

use safegen_fpcore::metrics::{self, acc_bits, F64_MANTISSA_BITS};
use safegen_fpcore::round::{add_ru, add_with_err, mul_ru, mul_with_err, sub_rd};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Shared symbol allocator for the baseline types.
#[derive(Clone, Debug, Default)]
pub struct BaselineCtx {
    next: Rc<Cell<u64>>,
}

impl BaselineCtx {
    /// Creates a fresh allocator.
    pub fn new() -> BaselineCtx {
        BaselineCtx::default()
    }

    fn fresh(&self) -> u64 {
        let id = self.next.get();
        self.next.set(id + 1);
        id
    }
}

// ---------------------------------------------------------------------------
// Yalaa aff0: full AA over an ordered map
// ---------------------------------------------------------------------------

/// Full affine arithmetic with unbounded symbols (Yalaa `aff0`).
#[derive(Clone, Debug)]
pub struct YalaaAff0 {
    center: f64,
    terms: BTreeMap<u64, f64>,
}

impl YalaaAff0 {
    /// An input value `x ± 1 ulp(x)`.
    pub fn from_input(x: f64, ctx: &BaselineCtx) -> YalaaAff0 {
        let mut terms = BTreeMap::new();
        terms.insert(ctx.fresh(), metrics::ulp(x));
        YalaaAff0 { center: x, terms }
    }

    /// A source constant (±1 ulp unless integral).
    pub fn constant(x: f64, ctx: &BaselineCtx) -> YalaaAff0 {
        let mut terms = BTreeMap::new();
        if x.fract() != 0.0 || x.abs() >= 2f64.powi(53) {
            terms.insert(ctx.fresh(), metrics::ulp(x));
        }
        YalaaAff0 { center: x, terms }
    }

    /// A value `center ± radius` carried by one fresh symbol (used when a
    /// derived operation falls back to an interval enclosure).
    pub fn with_symbol(center: f64, radius: f64, ctx: &BaselineCtx) -> YalaaAff0 {
        let mut terms = BTreeMap::new();
        if radius > 0.0 {
            terms.insert(ctx.fresh(), radius);
        }
        YalaaAff0 { center, terms }
    }

    /// Radius `Σ|aᵢ|`, upward-rounded.
    pub fn radius(&self) -> f64 {
        self.terms.values().fold(0.0, |r, c| add_ru(r, c.abs()))
    }

    /// Sound enclosing range.
    pub fn range(&self) -> (f64, f64) {
        let r = self.radius();
        (sub_rd(self.center, r), add_ru(self.center, r))
    }

    /// Certified bits on the `f64` grid.
    pub fn acc_bits(&self) -> f64 {
        let (lo, hi) = self.range();
        acc_bits(lo, hi, F64_MANTISSA_BITS)
    }

    /// Number of live symbols (grows with every operation).
    pub fn n_symbols(&self) -> usize {
        self.terms.len()
    }

    /// Addition with a fresh round-off symbol.
    pub fn add(&self, rhs: &YalaaAff0, ctx: &BaselineCtx) -> YalaaAff0 {
        let (center, mut noise) = add_with_err(self.center, rhs.center);
        let mut terms = self.terms.clone();
        for (&id, &c) in &rhs.terms {
            match terms.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let (s, err) = add_with_err(*e.get(), c);
                    noise = add_ru(noise, err);
                    if s == 0.0 {
                        e.remove();
                    } else {
                        *e.get_mut() = s;
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(c);
                }
            }
        }
        if noise > 0.0 {
            terms.insert(ctx.fresh(), noise);
        }
        YalaaAff0 { center, terms }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &YalaaAff0, ctx: &BaselineCtx) -> YalaaAff0 {
        self.add(&rhs.neg(), ctx)
    }

    /// Negation (exact).
    pub fn neg(&self) -> YalaaAff0 {
        YalaaAff0 {
            center: -self.center,
            terms: self.terms.iter().map(|(&i, &c)| (i, -c)).collect(),
        }
    }

    /// Multiplication per paper eq. 5.
    pub fn mul(&self, rhs: &YalaaAff0, ctx: &BaselineCtx) -> YalaaAff0 {
        let (center, e0) = mul_with_err(self.center, rhs.center);
        let mut noise = add_ru(e0, mul_ru(self.radius(), rhs.radius()));
        let mut terms: BTreeMap<u64, f64> = BTreeMap::new();
        for (&id, &c) in &self.terms {
            let (p, e) = mul_with_err(rhs.center, c);
            noise = add_ru(noise, e);
            if p != 0.0 {
                terms.insert(id, p);
            }
        }
        for (&id, &c) in &rhs.terms {
            let (p, e) = mul_with_err(self.center, c);
            noise = add_ru(noise, e);
            match terms.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut entry) => {
                    let (s, err) = add_with_err(*entry.get(), p);
                    noise = add_ru(noise, err);
                    if s == 0.0 {
                        entry.remove();
                    } else {
                        *entry.get_mut() = s;
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    if p != 0.0 {
                        v.insert(p);
                    }
                }
            }
        }
        if noise > 0.0 {
            terms.insert(ctx.fresh(), noise);
        }
        YalaaAff0 { center, terms }
    }
}

// ---------------------------------------------------------------------------
// Yalaa aff1: input symbols only, dedicated noise accumulation
// ---------------------------------------------------------------------------

/// Yalaa's `aff1`: the symbol set is fixed to the program inputs; all new
/// deviations accumulate in one uncorrelated term.
#[derive(Clone, Debug)]
pub struct YalaaAff1 {
    center: f64,
    terms: BTreeMap<u64, f64>,
    noise: f64,
}

impl YalaaAff1 {
    /// An input value `x ± 1 ulp(x)`.
    pub fn from_input(x: f64, ctx: &BaselineCtx) -> YalaaAff1 {
        let mut terms = BTreeMap::new();
        terms.insert(ctx.fresh(), metrics::ulp(x));
        YalaaAff1 {
            center: x,
            terms,
            noise: 0.0,
        }
    }

    /// A source constant (uncertainty goes straight to the noise term).
    pub fn constant(x: f64, _ctx: &BaselineCtx) -> YalaaAff1 {
        let noise = if x.fract() != 0.0 || x.abs() >= 2f64.powi(53) {
            metrics::ulp(x)
        } else {
            0.0
        };
        YalaaAff1 {
            center: x,
            terms: BTreeMap::new(),
            noise,
        }
    }

    /// A value `center ± noise` with no correlated symbols (interval-style
    /// fallback for derived operations).
    pub fn with_noise(center: f64, noise: f64, _ctx: &BaselineCtx) -> YalaaAff1 {
        YalaaAff1 {
            center,
            terms: BTreeMap::new(),
            noise: noise.max(0.0),
        }
    }

    /// Radius including the accumulated noise.
    pub fn radius(&self) -> f64 {
        self.terms
            .values()
            .fold(self.noise, |r, c| add_ru(r, c.abs()))
    }

    /// Sound enclosing range.
    pub fn range(&self) -> (f64, f64) {
        let r = self.radius();
        (sub_rd(self.center, r), add_ru(self.center, r))
    }

    /// Certified bits on the `f64` grid.
    pub fn acc_bits(&self) -> f64 {
        let (lo, hi) = self.range();
        acc_bits(lo, hi, F64_MANTISSA_BITS)
    }

    /// Addition: input terms combine; round-off joins the noise.
    pub fn add(&self, rhs: &YalaaAff1) -> YalaaAff1 {
        let (center, mut noise) = add_with_err(self.center, rhs.center);
        noise = add_ru(noise, add_ru(self.noise, rhs.noise));
        let mut terms = self.terms.clone();
        for (&id, &c) in &rhs.terms {
            match terms.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let (s, err) = add_with_err(*e.get(), c);
                    noise = add_ru(noise, err);
                    *e.get_mut() = s;
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(c);
                }
            }
        }
        YalaaAff1 {
            center,
            terms,
            noise,
        }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &YalaaAff1) -> YalaaAff1 {
        self.add(&rhs.neg())
    }

    /// Negation (the noise term is sign-less).
    pub fn neg(&self) -> YalaaAff1 {
        YalaaAff1 {
            center: -self.center,
            terms: self.terms.iter().map(|(&i, &c)| (i, -c)).collect(),
            noise: self.noise,
        }
    }

    /// Multiplication; the quadratic term and both noises join the result
    /// noise (uncorrelated).
    pub fn mul(&self, rhs: &YalaaAff1) -> YalaaAff1 {
        let (center, e0) = mul_with_err(self.center, rhs.center);
        let mag = |a: f64, b: f64| {
            if a == 0.0 || b == 0.0 {
                0.0
            } else {
                mul_ru(a, b)
            }
        };
        let mut noise = add_ru(e0, mag(self.radius(), rhs.radius()));
        noise = add_ru(noise, mag(rhs.center.abs(), self.noise));
        noise = add_ru(noise, mag(self.center.abs(), rhs.noise));
        let mut terms: BTreeMap<u64, f64> = BTreeMap::new();
        for (&id, &c) in &self.terms {
            let (p, e) = mul_with_err(rhs.center, c);
            noise = add_ru(noise, e);
            if p != 0.0 {
                terms.insert(id, p);
            }
        }
        for (&id, &c) in &rhs.terms {
            let (p, e) = mul_with_err(self.center, c);
            noise = add_ru(noise, e);
            match terms.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut entry) => {
                    let (s, err) = add_with_err(*entry.get(), p);
                    noise = add_ru(noise, err);
                    *entry.get_mut() = s;
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    if p != 0.0 {
                        v.insert(p);
                    }
                }
            }
        }
        YalaaAff1 {
            center,
            terms,
            noise,
        }
    }
}

// ---------------------------------------------------------------------------
// Ceres AffineFloat: bounded, compact-on-overflow, persistent style
// ---------------------------------------------------------------------------

/// Ceres-style bounded affine value: at most `k` symbols; exceeding the
/// bound *compacts* the smallest-magnitude terms into a fresh noise symbol.
#[derive(Clone, Debug)]
pub struct CeresAffine {
    center: f64,
    terms: BTreeMap<u64, f64>,
    k: usize,
}

impl CeresAffine {
    /// An input value `x ± 1 ulp(x)` with symbol budget `k`.
    pub fn from_input(x: f64, k: usize, ctx: &BaselineCtx) -> CeresAffine {
        let mut terms = BTreeMap::new();
        terms.insert(ctx.fresh(), metrics::ulp(x));
        CeresAffine {
            center: x,
            terms,
            k,
        }
    }

    /// A source constant.
    pub fn constant(x: f64, k: usize, ctx: &BaselineCtx) -> CeresAffine {
        let mut terms = BTreeMap::new();
        if x.fract() != 0.0 || x.abs() >= 2f64.powi(53) {
            terms.insert(ctx.fresh(), metrics::ulp(x));
        }
        CeresAffine {
            center: x,
            terms,
            k,
        }
    }

    /// A value `center ± radius` carried by one fresh symbol.
    pub fn with_symbol(center: f64, radius: f64, k: usize, ctx: &BaselineCtx) -> CeresAffine {
        let mut terms = BTreeMap::new();
        if radius > 0.0 {
            terms.insert(ctx.fresh(), radius);
        }
        CeresAffine { center, terms, k }
    }

    /// Radius.
    pub fn radius(&self) -> f64 {
        self.terms.values().fold(0.0, |r, c| add_ru(r, c.abs()))
    }

    /// Sound enclosing range.
    pub fn range(&self) -> (f64, f64) {
        let r = self.radius();
        (sub_rd(self.center, r), add_ru(self.center, r))
    }

    /// Certified bits on the `f64` grid.
    pub fn acc_bits(&self) -> f64 {
        let (lo, hi) = self.range();
        acc_bits(lo, hi, F64_MANTISSA_BITS)
    }

    /// Number of live symbols (≤ k after every operation).
    pub fn n_symbols(&self) -> usize {
        self.terms.len()
    }

    fn compact(
        mut terms: BTreeMap<u64, f64>,
        mut noise: f64,
        k: usize,
        ctx: &BaselineCtx,
    ) -> BTreeMap<u64, f64> {
        let budget = k.saturating_sub(usize::from(noise > 0.0));
        if terms.len() > budget {
            // Persistent style: collect, sort by magnitude, rebuild.
            let mut by_mag: Vec<(u64, f64)> = terms.iter().map(|(&i, &c)| (i, c)).collect();
            by_mag.sort_by(|a, b| {
                a.1.abs()
                    .partial_cmp(&b.1.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let excess = terms.len() - budget + 1;
            for &(id, c) in by_mag.iter().take(excess) {
                noise = add_ru(noise, c.abs());
                terms.remove(&id);
            }
        }
        if noise > 0.0 {
            terms.insert(ctx.fresh(), noise);
        }
        terms
    }

    /// Addition with compaction.
    pub fn add(&self, rhs: &CeresAffine, ctx: &BaselineCtx) -> CeresAffine {
        let (center, mut noise) = add_with_err(self.center, rhs.center);
        let mut terms = self.terms.clone();
        for (&id, &c) in &rhs.terms {
            match terms.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let (s, err) = add_with_err(*e.get(), c);
                    noise = add_ru(noise, err);
                    if s == 0.0 {
                        e.remove();
                    } else {
                        *e.get_mut() = s;
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(c);
                }
            }
        }
        let terms = Self::compact(terms, noise, self.k, ctx);
        CeresAffine {
            center,
            terms,
            k: self.k,
        }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &CeresAffine, ctx: &BaselineCtx) -> CeresAffine {
        self.add(&rhs.neg(), ctx)
    }

    /// Negation.
    pub fn neg(&self) -> CeresAffine {
        CeresAffine {
            center: -self.center,
            terms: self.terms.iter().map(|(&i, &c)| (i, -c)).collect(),
            k: self.k,
        }
    }

    /// Multiplication with compaction.
    pub fn mul(&self, rhs: &CeresAffine, ctx: &BaselineCtx) -> CeresAffine {
        let (center, e0) = mul_with_err(self.center, rhs.center);
        let mut noise = add_ru(e0, mul_ru(self.radius(), rhs.radius()));
        let mut terms: BTreeMap<u64, f64> = BTreeMap::new();
        for (&id, &c) in &self.terms {
            let (p, e) = mul_with_err(rhs.center, c);
            noise = add_ru(noise, e);
            if p != 0.0 {
                terms.insert(id, p);
            }
        }
        for (&id, &c) in &rhs.terms {
            let (p, e) = mul_with_err(self.center, c);
            noise = add_ru(noise, e);
            match terms.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut entry) => {
                    let (s, err) = add_with_err(*entry.get(), p);
                    noise = add_ru(noise, err);
                    if s == 0.0 {
                        entry.remove();
                    } else {
                        *entry.get_mut() = s;
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    if p != 0.0 {
                        v.insert(p);
                    }
                }
            }
        }
        let terms = Self::compact(terms, noise, self.k, ctx);
        CeresAffine {
            center,
            terms,
            k: self.k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safegen_fpcore::Dd;

    fn contains(range: (f64, f64), x: Dd) -> bool {
        Dd::from(range.0) <= x && x <= Dd::from(range.1)
    }

    #[test]
    fn aff0_full_cancellation() {
        let ctx = BaselineCtx::new();
        let x = YalaaAff0::from_input(0.5, &ctx);
        let d = x.sub(&x, &ctx);
        assert_eq!(d.range(), (0.0, 0.0));
    }

    #[test]
    fn aff0_symbols_grow_per_op() {
        let ctx = BaselineCtx::new();
        let mut x = YalaaAff0::from_input(0.5, &ctx);
        let y = YalaaAff0::from_input(0.3, &ctx);
        let n0 = x.n_symbols();
        for _ in 0..5 {
            x = x.mul(&y, &ctx);
        }
        assert!(x.n_symbols() > n0 + 3, "full AA must keep creating symbols");
    }

    #[test]
    fn aff0_soundness_chain() {
        let ctx = BaselineCtx::new();
        let mut x = YalaaAff0::from_input(0.7, &ctx);
        let y = YalaaAff0::from_input(1.1, &ctx);
        let mut exact = Dd::from(0.7);
        for _ in 0..20 {
            x = x.mul(&y, &ctx);
            exact = exact * Dd::from(1.1);
            assert!(contains(x.range(), exact));
        }
    }

    #[test]
    fn aff1_keeps_input_symbols_only() {
        let ctx = BaselineCtx::new();
        let x = YalaaAff1::from_input(0.5, &ctx);
        let y = YalaaAff1::from_input(0.3, &ctx);
        let z = x.mul(&y).add(&x);
        assert!(z.terms.len() <= 2);
        assert!(z.noise > 0.0);
    }

    #[test]
    fn aff1_soundness() {
        let ctx = BaselineCtx::new();
        let x = YalaaAff1::from_input(0.1, &ctx);
        let y = YalaaAff1::from_input(0.2, &ctx);
        let s = x.add(&y);
        assert!(contains(s.range(), Dd::from_two_sum(0.1, 0.2)));
        let p = x.mul(&y);
        assert!(contains(p.range(), Dd::from_two_prod(0.1, 0.2)));
    }

    #[test]
    fn aff1_linear_cancellation_still_works() {
        let ctx = BaselineCtx::new();
        let x = YalaaAff1::from_input(0.5, &ctx);
        let d = x.sub(&x);
        let (lo, hi) = d.range();
        assert!(lo.abs() < 1e-300 && hi.abs() < 1e-300);
    }

    #[test]
    fn ceres_respects_budget() {
        let ctx = BaselineCtx::new();
        let mut x = CeresAffine::from_input(0.5, 8, &ctx);
        let y = CeresAffine::from_input(0.3, 8, &ctx);
        for _ in 0..30 {
            x = x.mul(&y, &ctx);
            assert!(x.n_symbols() <= 8, "budget violated: {}", x.n_symbols());
        }
    }

    #[test]
    fn ceres_soundness_chain() {
        let ctx = BaselineCtx::new();
        let mut x = CeresAffine::from_input(0.7, 6, &ctx);
        let y = CeresAffine::from_input(1.1, 6, &ctx);
        let mut exact = Dd::from(0.7);
        for _ in 0..25 {
            x = x.mul(&y, &ctx);
            exact = exact * Dd::from(1.1);
            assert!(contains(x.range(), exact));
        }
    }

    #[test]
    fn ceres_larger_k_is_at_least_as_accurate() {
        let run = |k: usize| {
            let ctx = BaselineCtx::new();
            let x = CeresAffine::from_input(0.9, k, &ctx);
            let y = CeresAffine::from_input(1.05, k, &ctx);
            let mut a = x.clone();
            let mut b = y.clone();
            for _ in 0..15 {
                let t = a.mul(&b, &ctx);
                b = a.sub(&t, &ctx);
                a = t;
            }
            a.acc_bits()
        };
        assert!(run(16) >= run(2) - 1.0);
    }
}
