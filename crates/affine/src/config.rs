//! Runtime configuration: placement and fusion policies, symbol allocation.

use crate::symbol::SymbolId;
use std::cell::Cell;

/// How the error symbols of an affine form are stored (paper Sec. V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Symbols kept sorted by identifier; operations merge the two sorted
    /// arrays. Finds all shared symbols, but every operation pays a merge.
    Sorted,
    /// Fixed array of `k` slots, a symbol with id `i` lives in slot
    /// `i mod k`. Shared symbols align for free and the per-slot loop
    /// vectorizes, at the cost of occasional slot conflicts resolved by the
    /// fusion policy.
    DirectMapped,
}

/// Which symbols to fuse when an operation exceeds the symbol budget
/// (paper Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fusion {
    /// Random selection (the paper's baseline policy, RP).
    Random,
    /// Fuse the oldest (smallest-id) symbols first (OP).
    Oldest,
    /// Fuse the smallest-magnitude symbols first (SP).
    Smallest,
    /// Fuse every symbol whose magnitude is below the mean of all
    /// magnitudes; falls back to [`Fusion::Oldest`] if that frees too few
    /// slots (MP). Equivalent to SP under direct-mapped placement.
    MeanThreshold,
}

/// What happens to the round-off of each operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NoisePolicy {
    /// A fresh error symbol per operation (standard AA; the paper's model).
    Fresh,
    /// No fresh symbols: round-off accumulates in one dedicated,
    /// uncorrelated noise term per variable (Yalaa's `aff1` mode).
    Dedicated,
}

/// Full configuration of the affine runtime.
///
/// The notation of the paper's plots maps as follows: `f64a-dspv` is
/// `AaConfig { k, placement: DirectMapped, fusion: Smallest, vectorized:
/// true, .. }` with priority protection supplied per-operation via
/// [`Protect`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct AaConfig {
    /// Maximum number of error symbols per affine variable.
    pub k: usize,
    /// Symbol placement policy.
    pub placement: Placement,
    /// Symbol fusion policy.
    pub fusion: Fusion,
    /// Round-off handling.
    pub noise: NoisePolicy,
    /// Use the block-vectorized kernels (direct-mapped placement only;
    /// results are bit-identical to the scalar kernels).
    pub vectorized: bool,
}

impl AaConfig {
    /// The paper's best general-purpose configuration: direct-mapped
    /// placement, smallest-value fusion, vectorized (`f64a-ds?v`).
    pub fn new(k: usize) -> AaConfig {
        AaConfig {
            k,
            placement: Placement::DirectMapped,
            fusion: Fusion::Smallest,
            noise: NoisePolicy::Fresh,
            vectorized: true,
        }
    }

    /// Full affine arithmetic: unbounded symbols, no fusion ever
    /// (the paper's `f64a-dspv-k̄` / Yalaa-`aff0` setting).
    pub fn full() -> AaConfig {
        AaConfig {
            k: usize::MAX,
            placement: Placement::Sorted,
            fusion: Fusion::Oldest, // never triggered
            noise: NoisePolicy::Fresh,
            vectorized: false,
        }
    }

    /// Sets the placement policy.
    pub fn with_placement(mut self, p: Placement) -> AaConfig {
        self.placement = p;
        self
    }

    /// Sets the fusion policy.
    pub fn with_fusion(mut self, f: Fusion) -> AaConfig {
        self.fusion = f;
        self
    }

    /// Sets the noise policy.
    pub fn with_noise(mut self, n: NoisePolicy) -> AaConfig {
        self.noise = n;
        self
    }

    /// Enables or disables the vectorized kernels.
    pub fn with_vectorized(mut self, v: bool) -> AaConfig {
        self.vectorized = v;
        self
    }

    /// Parses the paper's four-letter configuration mnemonic, e.g. `"dsnv"`:
    /// placement ∈ {`s`, `d`}, fusion ∈ {`s`, `m`, `o`, `r`},
    /// prioritization ∈ {`p`, `n`} (returned as the second tuple element;
    /// protection itself is supplied per operation), vectorized ∈ {`v`, `n`}.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending character if the mnemonic is
    /// not of the documented shape.
    pub fn parse_mnemonic(k: usize, s: &str) -> Result<(AaConfig, bool), String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 4 {
            return Err(format!("mnemonic `{s}` must have exactly 4 characters"));
        }
        let placement = match chars[0] {
            's' => Placement::Sorted,
            'd' => Placement::DirectMapped,
            c => return Err(format!("unknown placement `{c}` in `{s}`")),
        };
        let fusion = match chars[1] {
            's' => Fusion::Smallest,
            'm' => Fusion::MeanThreshold,
            'o' => Fusion::Oldest,
            'r' => Fusion::Random,
            c => return Err(format!("unknown fusion `{c}` in `{s}`")),
        };
        let prioritized = match chars[2] {
            'p' => true,
            'n' => false,
            c => return Err(format!("unknown prioritization flag `{c}` in `{s}`")),
        };
        let vectorized = match chars[3] {
            'v' => true,
            'n' => false,
            c => return Err(format!("unknown vectorization flag `{c}` in `{s}`")),
        };
        Ok((
            AaConfig {
                k,
                placement,
                fusion,
                noise: NoisePolicy::Fresh,
                vectorized,
            },
            prioritized,
        ))
    }
}

impl Default for AaConfig {
    /// `k = 16`, direct-mapped, smallest-value fusion, vectorized.
    fn default() -> Self {
        AaConfig::new(16)
    }
}

/// Shared state for a sound computation: the configuration plus the
/// monotone error-symbol allocator (and the RNG backing the random fusion
/// policy).
///
/// A context is cheap and single-threaded (interior mutability via `Cell`);
/// create one per computation. All affine values combined in an operation
/// must come from the same context.
///
/// # Threading
///
/// `AaContext` is `Send` but deliberately **not** `Sync`: symbol
/// allocation and the fusion RNG go through `Cell`s with no
/// synchronization, which keeps the hot allocation path a plain load and
/// store. To evaluate in parallel, **share only the [`AaConfig`]**
/// (`Copy`, `Send + Sync`) and build one `AaContext` per thread — or,
/// stronger, one per computation, which is what `safegen`'s batch engine
/// does so that symbol ids and RNG state never leak between work items
/// and results stay bit-identical for every thread count. These
/// properties are asserted at compile time below.
#[derive(Debug)]
pub struct AaContext {
    config: AaConfig,
    next_id: Cell<SymbolId>,
    rng: Cell<u64>,
    /// Per-operation capacity override (see [`AaContext::set_op_capacity`]).
    op_k: Cell<usize>,
    /// Event counters (see [`AaCounters`]); bumped only on the fusion
    /// paths, never per operation, so they cost nothing on the fast path.
    counters: Cell<AaCounters>,
}

/// Counters of symbol-losing events in one [`AaContext`].
///
/// Fusing and condensing are where an affine computation *loses
/// correlation information* — the width the final form reports is still
/// sound, but it can no longer cancel against the victims. These
/// counters make that loss observable per run; `safegen`'s VM surfaces
/// them in its `RunStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AaCounters {
    /// Budget-overflow fusion events under sorted placement: how many
    /// times an operation's result exceeded `k` symbols and a victim set
    /// was fused into a fresh symbol (paper eq. 6).
    pub fusion_events: u64,
    /// Total symbols fused away across all `fusion_events`.
    pub fused_symbols: u64,
    /// Condensations under direct-mapped placement: slot conflicts where
    /// one symbol's magnitude was absorbed into the other's slot
    /// (including a fresh noise symbol landing on an occupied slot).
    pub condensations: u64,
}

impl AaContext {
    /// Creates a context with the given configuration.
    pub fn new(config: AaConfig) -> AaContext {
        assert!(config.k >= 1, "symbol budget k must be at least 1");
        if config.placement == Placement::DirectMapped {
            assert!(
                config.k < u32::MAX as usize,
                "direct-mapped placement requires a finite k"
            );
        }
        AaContext {
            config,
            next_id: Cell::new(0),
            rng: Cell::new(0x9E37_79B9_7F4A_7C15),
            op_k: Cell::new(config.k),
            counters: Cell::new(AaCounters::default()),
        }
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &AaConfig {
        &self.config
    }

    /// The symbol budget of the *next* operation.
    ///
    /// This is the configured `k` unless a per-variable capacity override
    /// is active, and never exceeds the configured `k`. Direct-mapped
    /// placement has its slot count baked into every value, so overrides
    /// only take effect under [`Placement::Sorted`].
    #[inline]
    pub fn k(&self) -> usize {
        match self.config.placement {
            Placement::Sorted => self.op_k.get().min(self.config.k),
            Placement::DirectMapped => self.config.k,
        }
    }

    /// Lowers the symbol budget for subsequent operations (the
    /// variable-capacity extension the paper names as future work,
    /// Sec. VIII): parts of a computation with little symbol reuse can run
    /// with a small budget — approaching IA cost — while reuse-heavy parts
    /// keep the full `k`. Clamped to `[1, config.k]`; only effective under
    /// sorted placement.
    #[inline]
    pub fn set_op_capacity(&self, k: usize) {
        self.op_k.set(k.clamp(1, self.config.k));
    }

    /// Restores the configured budget.
    #[inline]
    pub fn reset_op_capacity(&self) {
        self.op_k.set(self.config.k);
    }

    /// Allocates a fresh error-symbol identifier (monotonically increasing).
    #[inline]
    pub fn fresh_symbol(&self) -> SymbolId {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        id
    }

    /// Number of symbols allocated so far.
    #[inline]
    pub fn symbols_allocated(&self) -> u64 {
        self.next_id.get()
    }

    /// Snapshot of the fusion/condensation counters.
    #[inline]
    pub fn counters(&self) -> AaCounters {
        self.counters.get()
    }

    /// Records one budget-overflow fusion event that fused `victims`
    /// symbols (sorted placement).
    #[inline]
    pub(crate) fn note_fusion(&self, victims: u64) {
        let mut c = self.counters.get();
        c.fusion_events += 1;
        c.fused_symbols += victims;
        self.counters.set(c);
    }

    /// Records one slot-conflict condensation (direct-mapped placement).
    #[inline]
    pub(crate) fn note_condensation(&self) {
        let mut c = self.counters.get();
        c.condensations += 1;
        self.counters.set(c);
    }

    /// xorshift64* step for the random fusion policy (deterministic per
    /// context, so runs are reproducible).
    #[inline]
    pub(crate) fn rand(&self) -> u64 {
        let mut x = self.rng.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Symbols to protect from fusion during one operation.
///
/// The compiler's static analysis (paper Sec. VI) decides which variable's
/// symbols should survive fusion at each operation; the generated code
/// gathers that variable's symbol ids and passes them here.
#[derive(Clone, Copy, Debug, Default)]
pub enum Protect<'a> {
    /// No protection (the `..n?` configurations).
    #[default]
    None,
    /// Protect these symbol ids (must be sorted ascending).
    Ids(&'a [SymbolId]),
}

impl Protect<'_> {
    /// True if `id` is protected.
    #[inline]
    pub fn contains(&self, id: SymbolId) -> bool {
        match self {
            Protect::None => false,
            Protect::Ids(ids) => ids.binary_search(&id).is_ok(),
        }
    }

    /// True if no symbol is protected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match self {
            Protect::None => true,
            Protect::Ids(ids) => ids.is_empty(),
        }
    }
}

// The documented threading contract: configurations may be shared
// across threads, contexts may be moved into one.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<AaConfig>();
    assert_send::<AaContext>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_symbols_are_monotone() {
        let ctx = AaContext::new(AaConfig::default());
        let a = ctx.fresh_symbol();
        let b = ctx.fresh_symbol();
        assert!(a < b);
        assert_eq!(ctx.symbols_allocated(), 2);
    }

    #[test]
    fn mnemonic_round_trip() {
        let (cfg, prio) = AaConfig::parse_mnemonic(8, "dspv").unwrap();
        assert_eq!(cfg.placement, Placement::DirectMapped);
        assert_eq!(cfg.fusion, Fusion::Smallest);
        assert!(prio);
        assert!(cfg.vectorized);

        let (cfg, prio) = AaConfig::parse_mnemonic(8, "smnn").unwrap();
        assert_eq!(cfg.placement, Placement::Sorted);
        assert_eq!(cfg.fusion, Fusion::MeanThreshold);
        assert!(!prio);
        assert!(!cfg.vectorized);
    }

    #[test]
    fn mnemonic_rejects_garbage() {
        assert!(AaConfig::parse_mnemonic(8, "xxxx").is_err());
        assert!(AaConfig::parse_mnemonic(8, "ds").is_err());
        assert!(AaConfig::parse_mnemonic(8, "dsnvv").is_err());
    }

    #[test]
    fn protect_lookup() {
        let ids = [3u64, 7, 9];
        let p = Protect::Ids(&ids);
        assert!(p.contains(7));
        assert!(!p.contains(8));
        assert!(!p.is_empty());
        assert!(Protect::None.is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = AaContext::new(AaConfig::new(0));
    }

    #[test]
    fn rng_is_deterministic() {
        let a = AaContext::new(AaConfig::default());
        let b = AaContext::new(AaConfig::default());
        assert_eq!(a.rand(), b.rand());
        assert_eq!(a.rand(), b.rand());
    }

    #[test]
    fn full_config_is_sorted_unbounded() {
        let cfg = AaConfig::full();
        assert_eq!(cfg.placement, Placement::Sorted);
        assert_eq!(cfg.k, usize::MAX);
    }

    #[test]
    fn op_capacity_override_clamped_and_resettable() {
        let ctx = AaContext::new(AaConfig::new(16).with_placement(Placement::Sorted));
        assert_eq!(ctx.k(), 16);
        ctx.set_op_capacity(4);
        assert_eq!(ctx.k(), 4);
        ctx.set_op_capacity(0); // clamps up to 1
        assert_eq!(ctx.k(), 1);
        ctx.set_op_capacity(100); // clamps down to config.k
        assert_eq!(ctx.k(), 16);
        ctx.set_op_capacity(2);
        ctx.reset_op_capacity();
        assert_eq!(ctx.k(), 16);
    }

    #[test]
    fn op_capacity_ignored_under_direct_mapping() {
        let ctx = AaContext::new(AaConfig::new(8)); // direct-mapped
        ctx.set_op_capacity(2);
        assert_eq!(ctx.k(), 8, "slot count is baked into the values");
    }
}
