//! Merge kernels for the direct-mapped placement policy (paper Sec. V-A).
//!
//! Symbols live in a fixed array of `k` slots, a symbol with id `i` in slot
//! `i mod k`. Shared symbols of two operands therefore align by
//! construction and the merge is a single element-wise pass over the slots
//! — no sorting, no searching — which is what enables both the order-of-
//! magnitude speedup of Table III and SIMD vectorization. The price is the
//! occasional *conflict*: two distinct symbols mapped to the same slot, one
//! of which must be fused into the operation's fresh symbol according to
//! the fusion policy.
//!
//! The per-slot bodies are factored out ([`linear_slot`], [`mul_slot`]) so
//! the vectorized kernels in [`crate::vector`] share them for their scalar
//! fallback lanes, guaranteeing identical semantics.

use crate::center::{CenterValue, ErrAcc};
use crate::config::{AaContext, Protect};
use crate::fusion::resolve_conflict;
use crate::symbol::{SymbolId, Term, NO_SYMBOL};
use safegen_fpcore::round::add_with_err;

/// Processes one slot of a linear merge `a ± b`, writing the surviving term
/// into `out` and fusing conflict losers into `noise`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn linear_slot(
    ia: SymbolId,
    ca: f64,
    ib: SymbolId,
    cb: f64,
    sign_b: f64,
    ctx: &AaContext,
    protect: Protect<'_>,
    noise: &mut ErrAcc,
    out_id: &mut SymbolId,
    out_coeff: &mut f64,
) {
    match (ia != NO_SYMBOL, ib != NO_SYMBOL) {
        (false, false) => {}
        (true, false) => {
            *out_id = ia;
            *out_coeff = ca;
        }
        (false, true) => {
            *out_id = ib;
            *out_coeff = sign_b * cb;
        }
        (true, true) if ia == ib => {
            let (c, e) = add_with_err(ca, sign_b * cb);
            noise.add(e);
            if c != 0.0 {
                *out_id = ia;
                *out_coeff = c;
            }
        }
        (true, true) => {
            // Conflict: distinct symbols share the slot.
            let left = Term::new(ia, ca);
            let right = Term::new(ib, sign_b * cb);
            let keep_left = resolve_conflict(left, right, ctx.config().fusion, ctx, protect);
            let (kept, fused) = if keep_left {
                (left, right)
            } else {
                (right, left)
            };
            *out_id = kept.id;
            *out_coeff = kept.coeff;
            noise.add_abs(fused.coeff);
        }
    }
}

/// Processes one slot of a multiplication merge: coefficient
/// `a₀·bᵢ + b₀·aᵢ` (paper eq. 5), conflicts resolved as in [`linear_slot`].
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn mul_slot<C: CenterValue>(
    a0: C,
    b0: C,
    ia: SymbolId,
    ca: f64,
    ib: SymbolId,
    cb: f64,
    ctx: &AaContext,
    protect: Protect<'_>,
    noise: &mut ErrAcc,
    out_id: &mut SymbolId,
    out_coeff: &mut f64,
) {
    match (ia != NO_SYMBOL, ib != NO_SYMBOL) {
        (false, false) => {}
        (true, false) => {
            let (c, e) = b0.scale_coeff(ca);
            noise.add(e);
            if c != 0.0 {
                *out_id = ia;
                *out_coeff = c;
            }
        }
        (false, true) => {
            let (c, e) = a0.scale_coeff(cb);
            noise.add(e);
            if c != 0.0 {
                *out_id = ib;
                *out_coeff = c;
            }
        }
        (true, true) if ia == ib => {
            let (p1, e1) = b0.scale_coeff(ca);
            let (p2, e2) = a0.scale_coeff(cb);
            let (c, e3) = add_with_err(p1, p2);
            noise.add(e1);
            noise.add(e2);
            noise.add(e3);
            if c != 0.0 {
                *out_id = ia;
                *out_coeff = c;
            }
        }
        (true, true) => {
            let (sa, ea) = b0.scale_coeff(ca);
            let (sb, eb) = a0.scale_coeff(cb);
            noise.add(ea);
            noise.add(eb);
            let left = Term::new(ia, sa);
            let right = Term::new(ib, sb);
            let keep_left = resolve_conflict(left, right, ctx.config().fusion, ctx, protect);
            let (kept, fused) = if keep_left {
                (left, right)
            } else {
                (right, left)
            };
            if kept.coeff != 0.0 {
                *out_id = kept.id;
                *out_coeff = kept.coeff;
            }
            noise.add_abs(fused.coeff);
        }
    }
}

/// Slot-wise merge for a linear operation `a ± b` under direct mapping.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_linear_direct(
    a_ids: &[SymbolId],
    a_coeffs: &[f64],
    b_ids: &[SymbolId],
    b_coeffs: &[f64],
    sign_b: f64,
    ctx: &AaContext,
    protect: Protect<'_>,
    noise: &mut ErrAcc,
) -> (Box<[SymbolId]>, Box<[f64]>) {
    debug_assert_eq!(a_ids.len(), b_ids.len());
    let k = a_ids.len();
    let mut ids = vec![NO_SYMBOL; k].into_boxed_slice();
    let mut coeffs = vec![0.0f64; k].into_boxed_slice();
    for s in 0..k {
        linear_slot(
            a_ids[s],
            a_coeffs[s],
            b_ids[s],
            b_coeffs[s],
            sign_b,
            ctx,
            protect,
            noise,
            &mut ids[s],
            &mut coeffs[s],
        );
    }
    (ids, coeffs)
}

/// Slot-wise merge for multiplication under direct mapping.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_mul_direct<C: CenterValue>(
    a0: C,
    b0: C,
    a_ids: &[SymbolId],
    a_coeffs: &[f64],
    b_ids: &[SymbolId],
    b_coeffs: &[f64],
    ctx: &AaContext,
    protect: Protect<'_>,
    noise: &mut ErrAcc,
) -> (Box<[SymbolId]>, Box<[f64]>) {
    debug_assert_eq!(a_ids.len(), b_ids.len());
    let k = a_ids.len();
    let mut ids = vec![NO_SYMBOL; k].into_boxed_slice();
    let mut coeffs = vec![0.0f64; k].into_boxed_slice();
    for s in 0..k {
        mul_slot(
            a0,
            b0,
            a_ids[s],
            a_coeffs[s],
            b_ids[s],
            b_coeffs[s],
            ctx,
            protect,
            noise,
            &mut ids[s],
            &mut coeffs[s],
        );
    }
    (ids, coeffs)
}

/// Scales every occupied slot by `alpha` (derived operations `α·â + ζ`).
pub(crate) fn scale_direct(
    ids: &[SymbolId],
    coeffs: &[f64],
    alpha: f64,
    noise: &mut ErrAcc,
) -> (Box<[SymbolId]>, Box<[f64]>) {
    let mut out_ids = vec![NO_SYMBOL; ids.len()].into_boxed_slice();
    let mut out_coeffs = vec![0.0f64; ids.len()].into_boxed_slice();
    for s in 0..ids.len() {
        if ids[s] != NO_SYMBOL {
            let (c, e) = safegen_fpcore::round::mul_with_err(coeffs[s], alpha);
            noise.add(e);
            if c != 0.0 {
                out_ids[s] = ids[s];
                out_coeffs[s] = c;
            }
        }
    }
    (out_ids, out_coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AaConfig, Fusion};

    fn ctx(k: usize, fusion: Fusion) -> AaContext {
        AaContext::new(AaConfig::new(k).with_fusion(fusion).with_vectorized(false))
    }

    fn slots(k: usize, pairs: &[(u64, f64)]) -> (Vec<SymbolId>, Vec<f64>) {
        let mut ids = vec![NO_SYMBOL; k];
        let mut coeffs = vec![0.0; k];
        for &(id, c) in pairs {
            let s = (id % k as u64) as usize;
            assert_eq!(ids[s], NO_SYMBOL, "test setup slot collision");
            ids[s] = id;
            coeffs[s] = c;
        }
        (ids, coeffs)
    }

    #[test]
    fn aligned_symbols_combine() {
        let c = ctx(4, Fusion::Smallest);
        let (ai, ac) = slots(4, &[(1, 1.0), (2, 2.0)]);
        let (bi, bc) = slots(4, &[(1, 0.5), (3, 3.0)]);
        let mut noise = ErrAcc::default();
        let (ids, coeffs) =
            merge_linear_direct(&ai, &ac, &bi, &bc, 1.0, &c, Protect::None, &mut noise);
        assert_eq!(ids[1], 1);
        assert_eq!(coeffs[1], 1.5);
        assert_eq!(ids[2], 2);
        assert_eq!(coeffs[2], 2.0);
        assert_eq!(ids[3], 3);
        assert_eq!(coeffs[3], 3.0);
        assert_eq!(ids[0], NO_SYMBOL);
        assert_eq!(noise.value(), 0.0);
    }

    #[test]
    fn conflict_fuses_loser_into_noise_sp() {
        let c = ctx(4, Fusion::Smallest);
        // ids 1 and 5 both map to slot 1 with k = 4.
        let (ai, ac) = slots(4, &[(1, 10.0)]);
        let (bi, bc) = slots(4, &[(5, 0.5)]);
        let mut noise = ErrAcc::default();
        let (ids, coeffs) =
            merge_linear_direct(&ai, &ac, &bi, &bc, 1.0, &c, Protect::None, &mut noise);
        assert_eq!(ids[1], 1); // SP keeps the larger magnitude
        assert_eq!(coeffs[1], 10.0);
        assert_eq!(noise.value(), 0.5); // loser magnitude preserved soundly
    }

    #[test]
    fn conflict_op_keeps_newer() {
        let c = ctx(4, Fusion::Oldest);
        let (ai, ac) = slots(4, &[(1, 10.0)]);
        let (bi, bc) = slots(4, &[(5, 0.5)]);
        let mut noise = ErrAcc::default();
        let (ids, coeffs) =
            merge_linear_direct(&ai, &ac, &bi, &bc, 1.0, &c, Protect::None, &mut noise);
        assert_eq!(ids[1], 5); // OP fuses the oldest
        assert_eq!(coeffs[1], 0.5);
        assert_eq!(noise.value(), 10.0);
    }

    #[test]
    fn subtraction_applies_sign_to_b() {
        let c = ctx(4, Fusion::Smallest);
        let (ai, ac) = slots(4, &[(1, 1.0)]);
        let (bi, bc) = slots(4, &[(1, 1.0)]);
        let mut noise = ErrAcc::default();
        let (ids, _) = merge_linear_direct(&ai, &ac, &bi, &bc, -1.0, &c, Protect::None, &mut noise);
        // full cancellation drops the slot
        assert_eq!(ids[1], NO_SYMBOL);
    }

    #[test]
    fn mul_coefficients_slotwise() {
        let c = ctx(4, Fusion::Smallest);
        let (ai, ac) = slots(4, &[(1, 1.0)]);
        let (bi, bc) = slots(4, &[(1, 2.0)]);
        let mut noise = ErrAcc::default();
        let (ids, coeffs) = merge_mul_direct(
            2.0f64,
            3.0f64,
            &ai,
            &ac,
            &bi,
            &bc,
            &c,
            Protect::None,
            &mut noise,
        );
        // a0·b1 + b0·a1 = 2·2 + 3·1 = 7
        assert_eq!(ids[1], 1);
        assert_eq!(coeffs[1], 7.0);
    }

    #[test]
    fn mul_conflict_scales_before_fusing() {
        let c = ctx(4, Fusion::Smallest);
        let (ai, ac) = slots(4, &[(1, 1.0)]);
        let (bi, bc) = slots(4, &[(5, 1.0)]);
        let mut noise = ErrAcc::default();
        // a0 = 10, b0 = 2: candidates are b0·a1 = 2 (id 1), a0·b5 = 10 (id 5).
        let (ids, coeffs) = merge_mul_direct(
            10.0f64,
            2.0f64,
            &ai,
            &ac,
            &bi,
            &bc,
            &c,
            Protect::None,
            &mut noise,
        );
        assert_eq!(ids[1], 5); // SP keeps the 10
        assert_eq!(coeffs[1], 10.0);
        assert_eq!(noise.value(), 2.0);
    }

    #[test]
    fn protection_decides_conflicts() {
        let c = ctx(4, Fusion::Smallest);
        let prot = [1u64];
        let (ai, ac) = slots(4, &[(1, 0.001)]);
        let (bi, bc) = slots(4, &[(5, 100.0)]);
        let mut noise = ErrAcc::default();
        let (ids, _) =
            merge_linear_direct(&ai, &ac, &bi, &bc, 1.0, &c, Protect::Ids(&prot), &mut noise);
        assert_eq!(ids[1], 1, "protected symbol must keep its slot");
        assert_eq!(noise.value(), 100.0);
    }

    #[test]
    fn scale_direct_applies_alpha() {
        let (ai, ac) = slots(4, &[(1, 2.0), (2, -4.0)]);
        let mut noise = ErrAcc::default();
        let (ids, coeffs) = scale_direct(&ai, &ac, 0.5, &mut noise);
        assert_eq!(ids[1], 1);
        assert_eq!(coeffs[1], 1.0);
        assert_eq!(coeffs[2], -2.0);
    }
}
