//! # safegen-affine
//!
//! The affine-arithmetic (AA) runtime of SafeGen-rs — the library the
//! compiler-generated code calls into (paper Sec. IV-A and V).
//!
//! An affine form represents a value as
//!
//! ```text
//! â = a₀ + Σᵢ aᵢ·εᵢ ,   εᵢ ∈ [−1, 1]
//! ```
//!
//! where `a₀` is the central value and each *error symbol* `εᵢ` is an
//! independent deviation. Sharing symbols between variables encodes linear
//! correlation, which lets subtractions *cancel* — the decisive advantage
//! over interval arithmetic.
//!
//! Every operation soundly accounts for its own round-off by adding a fresh
//! error symbol, so the range of the resulting form always contains the
//! exact real result. Because the symbol count would otherwise grow with
//! every operation (squaring the program's complexity), forms are bounded to
//! `k` symbols and excess symbols are *fused* (paper eq. 6) according to a
//! configurable policy:
//!
//! * **Placement** ([`Placement`]): how symbols are stored — [`Placement::Sorted`]
//!   (sorted by identifier, merged on every op) or
//!   [`Placement::DirectMapped`] (fixed `k`-slot array, slot = id mod k).
//! * **Fusion** ([`Fusion`]): which symbols to fuse when the bound is hit —
//!   random, oldest, smallest-magnitude, or mean-threshold.
//! * **Protection** ([`Protect`]): symbols the static analysis decided to
//!   prioritize are shielded from fusion (paper Sec. VI).
//!
//! The generic form [`Affine<C>`] supports three central-value precisions:
//! [`AffineF64`] (`f64a`), [`AffineDd`] (`dda`, double-double) and
//! [`AffineF32`] (`f32a`).
//!
//! The [`baselines`] module reimplements the comparison systems of the
//! paper's evaluation (Yalaa's `aff0`/`aff1`, Ceres) so Fig. 9 can be
//! regenerated without the original C++/Scala artifacts.
//!
//! ## Example: the dependency problem, solved
//!
//! ```
//! use safegen_affine::{AaConfig, AaContext, AffineF64, Protect};
//!
//! let ctx = AaContext::new(AaConfig::default());
//! let x = AffineF64::from_interval(0.0, 1.0, &ctx);
//! let d = x.sub(&x, &ctx, Protect::None);
//! let (lo, hi) = d.range();
//! assert_eq!((lo, hi), (0.0, 0.0)); // exact cancellation; IA would give [-1,1]
//! ```

pub mod baselines;
mod center;
mod config;
pub mod cost;
mod direct;
mod form;
mod fusion;
mod ops;
mod sorted;
mod symbol;
pub mod vector;

pub use center::CenterValue;
pub use config::{AaConfig, AaContext, AaCounters, Fusion, NoisePolicy, Placement, Protect};
pub use form::{Affine, AffineDd, AffineF32, AffineF64};
pub use symbol::{SymbolId, Term, NO_SYMBOL};

pub use safegen_fpcore::Dd;
