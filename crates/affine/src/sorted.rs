//! Merge kernels for the sorted placement policy (paper Sec. V-A).
//!
//! Both operands keep their terms sorted by symbol id; an operation merges
//! the two sorted arrays, combining coefficients of shared symbols and
//! recovering every rounding error exactly via EFTs. The accumulated errors
//! feed the operation's fresh error symbol.

use crate::center::{CenterValue, ErrAcc};
use crate::symbol::Term;
use safegen_fpcore::round::add_with_err;

/// Merges the term lists for a linear operation `a ± b`.
///
/// `sign_b` is `+1.0` for addition and `-1.0` for subtraction. Exact
/// rounding errors of coefficient additions accumulate in `noise`.
/// Zero-coefficient results are dropped (full cancellation).
pub(crate) fn merge_linear(a: &[Term], b: &[Term], sign_b: f64, noise: &mut ErrAcc) -> Vec<Term> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (ta, tb) = (a[i], b[j]);
        if ta.id == tb.id {
            let (c, e) = add_with_err(ta.coeff, sign_b * tb.coeff);
            noise.add(e);
            if c != 0.0 {
                out.push(Term::new(ta.id, c));
            }
            i += 1;
            j += 1;
        } else if ta.id < tb.id {
            out.push(ta);
            i += 1;
        } else {
            out.push(Term::new(tb.id, sign_b * tb.coeff));
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend(b[j..].iter().map(|t| Term::new(t.id, sign_b * t.coeff)));
    out
}

/// Merges the term lists for multiplication: the affine part of
/// `â·b̂` has coefficient `a₀·bᵢ + b₀·aᵢ` for every symbol `εᵢ`
/// (paper eq. 5). Rounding errors of the products and the sum accumulate
/// in `noise`; the quadratic `r(â)·r(b̂)` term is added by the caller.
pub(crate) fn merge_mul<C: CenterValue>(
    a0: C,
    b0: C,
    a: &[Term],
    b: &[Term],
    noise: &mut ErrAcc,
) -> Vec<Term> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (ta, tb) = (a[i], b[j]);
        if ta.id == tb.id {
            let (p1, e1) = b0.scale_coeff(ta.coeff);
            let (p2, e2) = a0.scale_coeff(tb.coeff);
            let (c, e3) = add_with_err(p1, p2);
            noise.add(e1);
            noise.add(e2);
            noise.add(e3);
            if c != 0.0 {
                out.push(Term::new(ta.id, c));
            }
            i += 1;
            j += 1;
        } else if ta.id < tb.id {
            let (c, e) = b0.scale_coeff(ta.coeff);
            noise.add(e);
            if c != 0.0 {
                out.push(Term::new(ta.id, c));
            }
            i += 1;
        } else {
            let (c, e) = a0.scale_coeff(tb.coeff);
            noise.add(e);
            if c != 0.0 {
                out.push(Term::new(tb.id, c));
            }
            j += 1;
        }
    }
    for t in &a[i..] {
        let (c, e) = b0.scale_coeff(t.coeff);
        noise.add(e);
        if c != 0.0 {
            out.push(Term::new(t.id, c));
        }
    }
    for t in &b[j..] {
        let (c, e) = a0.scale_coeff(t.coeff);
        noise.add(e);
        if c != 0.0 {
            out.push(Term::new(t.id, c));
        }
    }
    out
}

/// Scales every term by an `f64` factor (for the derived operations
/// `α·â + ζ`), accumulating rounding errors.
pub(crate) fn scale_terms(terms: &[Term], alpha: f64, noise: &mut ErrAcc) -> Vec<Term> {
    let mut out = Vec::with_capacity(terms.len());
    for t in terms {
        let (c, e) = safegen_fpcore::round::mul_with_err(t.coeff, alpha);
        noise.add(e);
        if c != 0.0 {
            out.push(Term::new(t.id, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(pairs: &[(u64, f64)]) -> Vec<Term> {
        pairs.iter().map(|&(id, c)| Term::new(id, c)).collect()
    }

    #[test]
    fn linear_merge_combines_shared() {
        let a = terms(&[(1, 1.0), (3, 2.0)]);
        let b = terms(&[(1, 0.5), (2, 4.0)]);
        let mut noise = ErrAcc::default();
        let out = merge_linear(&a, &b, 1.0, &mut noise);
        assert_eq!(out, terms(&[(1, 1.5), (2, 4.0), (3, 2.0)]));
        assert_eq!(noise.value(), 0.0); // all sums exact here
    }

    #[test]
    fn linear_merge_subtraction_cancels() {
        let a = terms(&[(1, 1.0), (2, 3.0)]);
        let b = terms(&[(1, 1.0), (2, 1.0)]);
        let mut noise = ErrAcc::default();
        let out = merge_linear(&a, &b, -1.0, &mut noise);
        // ε1 cancels completely and is dropped.
        assert_eq!(out, terms(&[(2, 2.0)]));
    }

    #[test]
    fn linear_merge_records_rounding() {
        let a = terms(&[(1, 1.0)]);
        let b = terms(&[(1, 1e-30)]);
        let mut noise = ErrAcc::default();
        let out = merge_linear(&a, &b, 1.0, &mut noise);
        assert_eq!(out.len(), 1);
        assert!(noise.value() > 0.0, "inexact sum must leave noise");
    }

    #[test]
    fn linear_merge_keeps_sorted_order() {
        let a = terms(&[(0, 1.0), (5, 1.0), (9, 1.0)]);
        let b = terms(&[(2, 1.0), (5, 1.0), (11, 1.0)]);
        let mut noise = ErrAcc::default();
        let out = merge_linear(&a, &b, 1.0, &mut noise);
        assert!(out.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn mul_merge_coefficient_formula() {
        // â = 2 + 1·ε1, b̂ = 3 + 2·ε1: affine part of product is
        // (2·2 + 3·1)·ε1 = 7·ε1.
        let a = terms(&[(1, 1.0)]);
        let b = terms(&[(1, 2.0)]);
        let mut noise = ErrAcc::default();
        let out = merge_mul(2.0f64, 3.0f64, &a, &b, &mut noise);
        assert_eq!(out, terms(&[(1, 7.0)]));
    }

    #[test]
    fn mul_merge_disjoint_symbols() {
        let a = terms(&[(1, 1.0)]);
        let b = terms(&[(2, 2.0)]);
        let mut noise = ErrAcc::default();
        let out = merge_mul(10.0f64, 100.0f64, &a, &b, &mut noise);
        // ε1 coeff = b0·1 = 100; ε2 coeff = a0·2 = 20.
        assert_eq!(out, terms(&[(1, 100.0), (2, 20.0)]));
    }

    #[test]
    fn mul_merge_zero_center_drops_terms() {
        let a = terms(&[(1, 1.0)]);
        let b: Vec<Term> = vec![];
        let mut noise = ErrAcc::default();
        let out = merge_mul(5.0f64, 0.0f64, &a, &b, &mut noise);
        assert!(out.is_empty()); // b0 = 0 kills a's linear terms
    }

    #[test]
    fn scale_terms_applies_alpha() {
        let a = terms(&[(1, 2.0), (2, -4.0)]);
        let mut noise = ErrAcc::default();
        let out = scale_terms(&a, 0.5, &mut noise);
        assert_eq!(out, terms(&[(1, 1.0), (2, -2.0)]));
        assert_eq!(noise.value(), 0.0);
    }
}
