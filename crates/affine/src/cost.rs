//! Analytic arithmetic-cost model of the affine operations (paper Sec. II-B
//! and Sec. V "Arithmetic cost").
//!
//! The paper reports the following floating-point operation counts
//! (comparisons included), where `k` is the symbol budget and `m` the
//! number of symbols shared by the operands:
//!
//! | operation | placement/policy | flops |
//! |-----------|------------------|-------|
//! | add       | classic AA, m shared | `4m + 3` |
//! | mul       | classic AA           | `10k + 4m + 3` |
//! | add       | SP + direct-mapped   | `3k + 2m + 3` |
//! | mul       | SP + direct-mapped   | `13k + 2m + 3` |
//!
//! and the vectorized direct-mapped kernels use `1.75k` (add) and `4.25k`
//! (mul) arithmetic intrinsics plus `1.25k` blends.
//!
//! These formulas parameterize the micro-benchmarks (`cargo bench`, group
//! `aa_ops`), which check that measured runtimes scale accordingly.

/// Flops of classic (sorted, unbounded) affine addition with `m` shared
/// symbols.
pub fn add_flops_classic(m: usize) -> usize {
    4 * m + 3
}

/// Flops of classic affine multiplication with `k` total and `m` shared
/// symbols.
pub fn mul_flops_classic(k: usize, m: usize) -> usize {
    10 * k + 4 * m + 3
}

/// Flops of addition under the smallest-value policy with direct-mapped
/// placement.
pub fn add_flops_direct_sp(k: usize, m: usize) -> usize {
    3 * k + 2 * m + 3
}

/// Flops of multiplication under the smallest-value policy with
/// direct-mapped placement.
pub fn mul_flops_direct_sp(k: usize, m: usize) -> usize {
    13 * k + 2 * m + 3
}

/// Arithmetic intrinsics of the vectorized addition kernel (`4 | k`).
pub fn add_intrinsics_vectorized(k: usize) -> f64 {
    1.75 * k as f64
}

/// Arithmetic intrinsics of the vectorized multiplication kernel.
pub fn mul_intrinsics_vectorized(k: usize) -> f64 {
    4.25 * k as f64
}

/// Blend intrinsics of the vectorized kernels.
pub fn blend_intrinsics_vectorized(k: usize) -> f64 {
    1.25 * k as f64
}

/// Total flop count of a program of `g` operations under full (unbounded)
/// AA — the quadratic blow-up of Sec. II-B: the i-th operation costs `O(i)`.
pub fn full_aa_program_flops(g: usize) -> usize {
    // Σ_{i=1}^{g} (4i + 3) for an all-additions program.
    g * (2 * g + 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_paper_examples() {
        assert_eq!(add_flops_classic(5), 23);
        assert_eq!(mul_flops_classic(8, 5), 103);
        assert_eq!(add_flops_direct_sp(8, 5), 37);
        assert_eq!(mul_flops_direct_sp(8, 5), 117);
    }

    #[test]
    fn vectorized_counts() {
        assert_eq!(add_intrinsics_vectorized(8), 14.0);
        assert_eq!(mul_intrinsics_vectorized(8), 34.0);
        assert_eq!(blend_intrinsics_vectorized(8), 10.0);
    }

    #[test]
    fn full_aa_is_quadratic() {
        let small = full_aa_program_flops(10);
        let big = full_aa_program_flops(100);
        // 10× the operations ⇒ ~100× the flops.
        assert!(big > 80 * small && big < 120 * small);
    }

    #[test]
    fn direct_add_cheaper_than_classic_mul_merge_for_large_m() {
        // For m = k (all shared), classic add is 4k+3, direct is 3k+2k+3 —
        // slightly more flops but branch-free; the win is in the constant
        // factors. Just pin the formulas' crossover behaviour.
        assert!(add_flops_classic(48) < add_flops_direct_sp(48, 48));
        assert!(add_flops_direct_sp(48, 0) < add_flops_classic(48));
    }
}
