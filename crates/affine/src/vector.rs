//! SIMD-style vectorized merge kernels for direct-mapped placement
//! (paper Sec. V, "Arithmetic cost" and the `..v` configurations).
//!
//! The direct-mapped layout makes the symbol loop of an affine operation a
//! pure element-wise pass, which is what the paper vectorizes with AVX2
//! intrinsics. Here the same kernels are expressed as fixed-width
//! (4-lane) unrolled blocks over the structure-of-arrays slot storage, which
//! LLVM auto-vectorizes; blocks containing slot conflicts or empty/mixed
//! occupancy fall back to the scalar per-slot logic of the direct-mapped
//! kernels, so
//! results are **identical** to the scalar kernels on finite data (a
//! property the test suite checks).
//!
//! This vectorizes *within* one affine operation (across symbol slots).
//! The orthogonal axis — vectorizing across input points — is the
//! lane-major batch interpreter (`safegen::run_lanes_on`, DESIGN.md
//! § 10); its column kernels for the interval domains live in
//! `safegen-interval::cols` and follow the same playbook used here:
//! branch-free bodies in a `#[target_feature(enable = "fma,avx2")]`
//! region with a bit-identity test pinning them to the scalar path.

use crate::center::{CenterValue, ErrAcc};
use crate::config::{AaContext, Protect};
use crate::direct::{linear_slot, mul_slot};
use crate::symbol::{SymbolId, NO_SYMBOL};
use safegen_fpcore::eft::two_sum;

/// Lane width of the blocked kernels.
pub const LANES: usize = 4;

/// Vectorized linear merge `a ± b`. Semantically identical to the
/// scalar direct-mapped kernel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_linear_vec(
    a_ids: &[SymbolId],
    a_coeffs: &[f64],
    b_ids: &[SymbolId],
    b_coeffs: &[f64],
    sign_b: f64,
    ctx: &AaContext,
    protect: Protect<'_>,
    noise: &mut ErrAcc,
) -> (Box<[SymbolId]>, Box<[f64]>) {
    debug_assert_eq!(a_ids.len(), b_ids.len());
    let k = a_ids.len();
    let mut ids = vec![NO_SYMBOL; k].into_boxed_slice();
    let mut coeffs = vec![0.0f64; k].into_boxed_slice();

    let mut s = 0;
    while s + LANES <= k {
        // Fast path: every lane carries the same symbol on both sides
        // (the steady state once slots have filled up).
        let uniform = (0..LANES).all(|l| {
            let (ia, ib) = (a_ids[s + l], b_ids[s + l]);
            ia == ib && ia != NO_SYMBOL
        });
        if uniform {
            let mut cs = [0.0f64; LANES];
            let mut es = [0.0f64; LANES];
            // Branch-free TwoSum per lane: the block LLVM vectorizes.
            for l in 0..LANES {
                let (c, e) = two_sum(a_coeffs[s + l], sign_b * b_coeffs[s + l]);
                cs[l] = c;
                es[l] = e;
            }
            for l in 0..LANES {
                noise.add_abs(es[l]);
                if cs[l] != 0.0 {
                    ids[s + l] = a_ids[s + l];
                    coeffs[s + l] = cs[l];
                }
            }
        } else {
            for l in 0..LANES {
                linear_slot(
                    a_ids[s + l],
                    a_coeffs[s + l],
                    b_ids[s + l],
                    b_coeffs[s + l],
                    sign_b,
                    ctx,
                    protect,
                    noise,
                    &mut ids[s + l],
                    &mut coeffs[s + l],
                );
            }
        }
        s += LANES;
    }
    while s < k {
        linear_slot(
            a_ids[s],
            a_coeffs[s],
            b_ids[s],
            b_coeffs[s],
            sign_b,
            ctx,
            protect,
            noise,
            &mut ids[s],
            &mut coeffs[s],
        );
        s += 1;
    }
    (ids, coeffs)
}

/// Vectorized multiplication merge. The fast path is specialized for an
/// `f64` central value (where the `a₀·bᵢ + b₀·aᵢ` products vectorize); the
/// generic path delegates to the scalar slot kernel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_mul_vec<C: CenterValue>(
    a0: C,
    b0: C,
    a_ids: &[SymbolId],
    a_coeffs: &[f64],
    b_ids: &[SymbolId],
    b_coeffs: &[f64],
    ctx: &AaContext,
    protect: Protect<'_>,
    noise: &mut ErrAcc,
) -> (Box<[SymbolId]>, Box<[f64]>) {
    debug_assert_eq!(a_ids.len(), b_ids.len());
    let k = a_ids.len();
    let mut ids = vec![NO_SYMBOL; k].into_boxed_slice();
    let mut coeffs = vec![0.0f64; k].into_boxed_slice();
    let (a0f, b0f) = (a0.to_f64(), b0.to_f64());
    // The blocked fast path computes the products at f64 precision; it is
    // only bit-identical to the scalar kernel when the center itself is
    // f64-exact, so restrict it to that case.
    let f64_center = C::MANTISSA_BITS == 53;

    let mut s = 0;
    while s + LANES <= k {
        let uniform = f64_center
            && (0..LANES).all(|l| {
                let (ia, ib) = (a_ids[s + l], b_ids[s + l]);
                ia == ib && ia != NO_SYMBOL
            });
        if uniform {
            let mut cs = [0.0f64; LANES];
            let mut p1s = [0.0f64; LANES];
            let mut p2s = [0.0f64; LANES];
            let mut e1s = [0.0f64; LANES];
            let mut e2s = [0.0f64; LANES];
            let mut e3s = [0.0f64; LANES];
            for l in 0..LANES {
                // p1 = b0·aᵢ, p2 = a0·bᵢ, both with exact FMA residuals.
                let p1 = b0f * a_coeffs[s + l];
                e1s[l] = b0f.mul_add(a_coeffs[s + l], -p1);
                let p2 = a0f * b_coeffs[s + l];
                e2s[l] = a0f.mul_add(b_coeffs[s + l], -p2);
                let (c, e3) = two_sum(p1, p2);
                cs[l] = c;
                p1s[l] = p1;
                p2s[l] = p2;
                e3s[l] = e3;
            }
            for l in 0..LANES {
                // Deep-underflow residuals are inexact; route those lanes
                // through the scalar kernel (which applies its conservative
                // one-ulp guard) instead. The threshold is well above the
                // scalar kernel's own 2^-960 guard.
                let near = |x: f64| x != 0.0 && x.abs() < 1e-280;
                // A product that underflowed to exactly zero (nonzero
                // inputs) also needs the scalar kernel's handling.
                let uflow = (p1s[l] == 0.0 && b0f != 0.0) || (p2s[l] == 0.0 && a0f != 0.0);
                let tiny = near(cs[l]) || near(p1s[l]) || near(p2s[l]) || uflow;
                if tiny {
                    let mut oid = NO_SYMBOL;
                    let mut oc = 0.0;
                    mul_slot(
                        a0,
                        b0,
                        a_ids[s + l],
                        a_coeffs[s + l],
                        b_ids[s + l],
                        b_coeffs[s + l],
                        ctx,
                        protect,
                        noise,
                        &mut oid,
                        &mut oc,
                    );
                    ids[s + l] = oid;
                    coeffs[s + l] = oc;
                } else {
                    noise.add_abs(e1s[l]);
                    noise.add_abs(e2s[l]);
                    noise.add_abs(e3s[l]);
                    if cs[l] != 0.0 {
                        ids[s + l] = a_ids[s + l];
                        coeffs[s + l] = cs[l];
                    }
                }
            }
        } else {
            for l in 0..LANES {
                mul_slot(
                    a0,
                    b0,
                    a_ids[s + l],
                    a_coeffs[s + l],
                    b_ids[s + l],
                    b_coeffs[s + l],
                    ctx,
                    protect,
                    noise,
                    &mut ids[s + l],
                    &mut coeffs[s + l],
                );
            }
        }
        s += LANES;
    }
    while s < k {
        mul_slot(
            a0,
            b0,
            a_ids[s],
            a_coeffs[s],
            b_ids[s],
            b_coeffs[s],
            ctx,
            protect,
            noise,
            &mut ids[s],
            &mut coeffs[s],
        );
        s += 1;
    }
    (ids, coeffs)
}

#[cfg(test)]
mod tests {
    use crate::config::{AaConfig, AaContext, Protect};
    use crate::form::AffineF64;

    /// Runs the same random computation under scalar and vectorized
    /// kernels and demands identical results.
    fn compare_kernels(k: usize, seed: u64) {
        let mk = |vectorized: bool| {
            let ctx = AaContext::new(AaConfig::new(k).with_vectorized(vectorized));
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64) / (u32::MAX as f64) + 0.1
            };
            let mut x = AffineF64::from_input(next(), &ctx);
            let mut y = AffineF64::from_input(next(), &ctx);
            for i in 0..40 {
                let c = AffineF64::constant(next(), &ctx);
                if i % 3 == 0 {
                    x = x.mul(&y, &ctx, Protect::None);
                } else if i % 3 == 1 {
                    y = y.add(&c, &ctx, Protect::None);
                } else {
                    x = x.sub(&c, &ctx, Protect::None);
                }
            }
            x.range()
        };
        let scalar = mk(false);
        let vec = mk(true);
        assert_eq!(scalar, vec, "k = {k}, seed = {seed}");
    }

    #[test]
    fn vectorized_matches_scalar_k8() {
        for seed in 0..10 {
            compare_kernels(8, seed);
        }
    }

    #[test]
    fn vectorized_matches_scalar_k12() {
        for seed in 0..10 {
            compare_kernels(12, seed);
        }
    }

    #[test]
    fn vectorized_matches_scalar_k5_with_tail() {
        // k not divisible by the lane width exercises the scalar tail.
        for seed in 0..10 {
            compare_kernels(5, seed);
        }
    }

    #[test]
    fn vectorized_matches_scalar_k48() {
        for seed in 0..5 {
            compare_kernels(48, seed);
        }
    }
}
