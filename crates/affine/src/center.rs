//! The central-value abstraction.
//!
//! An affine form's coefficients are always `f64`, but the central value
//! `a₀` can be stored at different precisions — `f64` (`f64a`), double-double
//! (`dda`), or `f32` (`f32a`). [`CenterValue`] captures exactly the
//! operations the affine kernels need: round-to-nearest arithmetic *plus a
//! sound bound on the rounding error*, which is what feeds the fresh error
//! symbols.

use safegen_fpcore::dd::{DD_ADD_REL, DD_DIV_REL, DD_MUL_REL, DD_SQRT_REL};
use safegen_fpcore::round::{add_rd, add_ru, add_with_err, div_with_err, mul_with_err};
use safegen_fpcore::Dd;
use std::fmt::{Debug, Display};

/// A central-value precision for affine forms.
///
/// Every `*_err` method returns the round-to-nearest result together with a
/// sound **upper bound on the magnitude of its rounding error** (as `f64`;
/// error magnitudes always fit comfortably in `f64`). `∞` signals overflow,
/// which poisons the form's radius — soundly, since an infinite radius
/// certifies nothing.
///
/// This trait is sealed: the three provided precisions are the supported
/// set.
pub trait CenterValue: Copy + Debug + Display + PartialEq + private::Sealed + 'static {
    /// Mantissa bits of this precision (53, 106, 24).
    const MANTISSA_BITS: u32;
    /// Short name used in diagnostics and emitted code (`f64a`, `dda`, `f32a`).
    const NAME: &'static str;

    /// Conversion from `f64` (exact for `f64` and `Dd`; rounds for `f32`,
    /// returning the conversion error in the second component).
    fn from_f64(x: f64) -> (Self, f64);
    /// Round to the nearest `f64`.
    fn to_f64(self) -> f64;
    /// `|self|` as `f64` (rounded up for `Dd`).
    fn abs_f64(self) -> f64;
    /// True if the value is NaN.
    fn is_nan(self) -> bool;

    /// `RN(a + b)` and a bound on its rounding error.
    fn add_err(a: Self, b: Self) -> (Self, f64);
    /// `RN(a − b)` and a bound on its rounding error.
    fn sub_err(a: Self, b: Self) -> (Self, f64);
    /// `RN(a · b)` and a bound on its rounding error.
    fn mul_err(a: Self, b: Self) -> (Self, f64);
    /// `RN(a / b)` and a bound on its rounding error.
    fn div_err(a: Self, b: Self) -> (Self, f64);
    /// `RN(√a)` and a bound on its rounding error.
    fn sqrt_err(a: Self) -> (Self, f64);
    /// Negation (exact).
    fn neg(self) -> Self;

    /// `RN(self · c)` for an `f64` coefficient, with error bound — the
    /// center-times-coefficient products of affine multiplication.
    fn scale_coeff(self, c: f64) -> (f64, f64);

    /// Sound lower bound of `self − radius` as `f64`.
    fn range_lo(self, radius: f64) -> f64;
    /// Sound upper bound of `self + radius` as `f64`.
    fn range_hi(self, radius: f64) -> f64;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for super::Dd {}
    impl Sealed for f32 {}
}

impl CenterValue for f64 {
    const MANTISSA_BITS: u32 = 53;
    const NAME: &'static str = "f64a";

    #[inline]
    fn from_f64(x: f64) -> (f64, f64) {
        (x, 0.0)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs_f64(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline]
    fn add_err(a: f64, b: f64) -> (f64, f64) {
        add_with_err(a, b)
    }
    #[inline]
    fn sub_err(a: f64, b: f64) -> (f64, f64) {
        add_with_err(a, -b)
    }
    #[inline]
    fn mul_err(a: f64, b: f64) -> (f64, f64) {
        mul_with_err(a, b)
    }
    #[inline]
    fn div_err(a: f64, b: f64) -> (f64, f64) {
        div_with_err(a, b)
    }
    #[inline]
    fn sqrt_err(a: f64) -> (f64, f64) {
        let s = a.sqrt();
        if !s.is_finite() || s == 0.0 {
            return (s, 0.0);
        }
        // RN error ≤ ulp(s)/2.
        (s, 0.5 * safegen_fpcore::metrics::ulp(s))
    }
    #[inline]
    fn neg(self) -> f64 {
        -self
    }
    #[inline]
    fn scale_coeff(self, c: f64) -> (f64, f64) {
        mul_with_err(self, c)
    }
    #[inline]
    fn range_lo(self, radius: f64) -> f64 {
        add_rd(self, -radius)
    }
    #[inline]
    fn range_hi(self, radius: f64) -> f64 {
        add_ru(self, radius)
    }
}

impl CenterValue for Dd {
    const MANTISSA_BITS: u32 = 106;
    const NAME: &'static str = "dda";

    #[inline]
    fn from_f64(x: f64) -> (Dd, f64) {
        (Dd::from(x), 0.0)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.hi()
    }
    #[inline]
    fn abs_f64(self) -> f64 {
        add_ru(self.hi().abs(), self.lo().abs())
    }
    #[inline]
    fn is_nan(self) -> bool {
        Dd::is_nan(self)
    }
    #[inline]
    fn add_err(a: Dd, b: Dd) -> (Dd, f64) {
        let s = a + b;
        (s, s.err_bound(DD_ADD_REL))
    }
    #[inline]
    fn sub_err(a: Dd, b: Dd) -> (Dd, f64) {
        let s = a - b;
        (s, s.err_bound(DD_ADD_REL))
    }
    #[inline]
    fn mul_err(a: Dd, b: Dd) -> (Dd, f64) {
        let p = a * b;
        (p, p.err_bound(DD_MUL_REL))
    }
    #[inline]
    fn div_err(a: Dd, b: Dd) -> (Dd, f64) {
        let q = a / b;
        (q, q.err_bound(DD_DIV_REL))
    }
    #[inline]
    fn sqrt_err(a: Dd) -> (Dd, f64) {
        let s = a.sqrt();
        (s, s.err_bound(DD_SQRT_REL))
    }
    #[inline]
    fn neg(self) -> Dd {
        -self
    }
    #[inline]
    fn scale_coeff(self, c: f64) -> (f64, f64) {
        // Full dd product, then round the dd down to one double; the low
        // part plus the dd rounding bound is the coefficient error.
        let p = self * Dd::from(c);
        let coeff = p.hi();
        let err = add_ru(p.lo().abs(), p.err_bound(DD_MUL_REL));
        (coeff, err)
    }
    #[inline]
    fn range_lo(self, radius: f64) -> f64 {
        let lo = self.add_rd(Dd::from(-radius));
        // Round the dd endpoint down to f64.
        if Dd::from(lo.hi()) <= lo {
            lo.hi()
        } else {
            lo.hi().next_down()
        }
    }
    #[inline]
    fn range_hi(self, radius: f64) -> f64 {
        let hi = self.add_ru(Dd::from(radius));
        if Dd::from(hi.hi()) >= hi {
            hi.hi()
        } else {
            hi.hi().next_up()
        }
    }
}

impl CenterValue for f32 {
    const MANTISSA_BITS: u32 = 24;
    const NAME: &'static str = "f32a";

    #[inline]
    fn from_f64(x: f64) -> (f32, f64) {
        let r = x as f32;
        let err = (x - r as f64).abs();
        (r, err)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs_f64(self) -> f64 {
        self.abs() as f64
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline]
    fn add_err(a: f32, b: f32) -> (f32, f64) {
        // Exact in f64: both summands have 24-bit significands.
        let exact = a as f64 + b as f64;
        let s = exact as f32;
        if !s.is_finite() && exact.is_finite() {
            return (s, f64::INFINITY);
        }
        (s, (exact - s as f64).abs())
    }
    #[inline]
    fn sub_err(a: f32, b: f32) -> (f32, f64) {
        Self::add_err(a, -b)
    }
    #[inline]
    fn mul_err(a: f32, b: f32) -> (f32, f64) {
        let exact = a as f64 * b as f64; // exact 48-bit product
        let p = exact as f32;
        if !p.is_finite() && exact.is_finite() {
            return (p, f64::INFINITY);
        }
        (p, (exact - p as f64).abs())
    }
    #[inline]
    fn div_err(a: f32, b: f32) -> (f32, f64) {
        let q = a / b;
        if !q.is_finite() || q == 0.0 {
            return (q, 0.0);
        }
        // Exact residual in f64: q*b is exact (24+24 bits), minus a exact.
        let r = a as f64 - q as f64 * b as f64;
        ((q), (r / b as f64).abs())
    }
    #[inline]
    fn sqrt_err(a: f32) -> (f32, f64) {
        let s = (a as f64).sqrt() as f32;
        if !s.is_finite() || s == 0.0 {
            return (s, 0.0);
        }
        // One f32 ulp over-approximates the double rounding error.
        let u = (s.abs().next_up() - s.abs()) as f64;
        (s, u)
    }
    #[inline]
    fn neg(self) -> f32 {
        -self
    }
    #[inline]
    fn scale_coeff(self, c: f64) -> (f64, f64) {
        mul_with_err(self as f64, c)
    }
    #[inline]
    fn range_lo(self, radius: f64) -> f64 {
        add_rd(self as f64, -radius)
    }
    #[inline]
    fn range_hi(self, radius: f64) -> f64 {
        add_ru(self as f64, radius)
    }
}

/// Accumulates error magnitudes with upward rounding (sound running sum for
/// fresh-symbol magnitudes and radii).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ErrAcc(pub f64);

impl ErrAcc {
    #[inline]
    pub fn add(&mut self, e: f64) {
        if e != 0.0 {
            self.0 = add_ru(self.0, e);
        }
    }

    #[inline]
    pub fn add_abs(&mut self, e: f64) {
        let a = e.abs();
        if a != 0.0 {
            self.0 = add_ru(self.0, a);
        }
    }

    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_center_roundtrip() {
        let (c, e) = f64::from_f64(0.1);
        assert_eq!(c, 0.1);
        assert_eq!(e, 0.0);
        assert_eq!(c.to_f64(), 0.1);
    }

    #[test]
    fn f32_center_conversion_error() {
        let (c, e) = f32::from_f64(0.1);
        assert_eq!(c, 0.1f32);
        assert!(e > 0.0); // 0.1f64 is not an f32
        assert!((0.1f64 - c as f64).abs() <= e);
    }

    #[test]
    fn dd_center_mul_error_is_tiny() {
        let a = Dd::ONE / Dd::from(3.0);
        let (p, e) = <Dd as CenterValue>::mul_err(a, a);
        assert!(e > 0.0);
        assert!(e < 1e-30);
        assert!((p.to_f64() - 1.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn scale_coeff_soundness_f64() {
        let (c, e) = CenterValue::scale_coeff(0.1f64, 0.3);
        let exact = Dd::from_two_prod(0.1, 0.3);
        assert!(Dd::from(c) - Dd::from(e) <= exact);
        assert!(exact <= Dd::from(c) + Dd::from(e));
    }

    #[test]
    fn scale_coeff_soundness_dd() {
        let a = Dd::ONE / Dd::from(3.0);
        let (c, e) = CenterValue::scale_coeff(a, 0.3);
        // exact = a * 0.3 ∈ [c - e, c + e]
        let exact = a * Dd::from(0.3);
        assert!(Dd::from(c) - Dd::from(e) <= exact);
        assert!(exact <= Dd::from(c) + Dd::from(e));
    }

    #[test]
    fn range_bounds_bracket_center() {
        let lo = CenterValue::range_lo(1.0f64, 0.5);
        let hi = CenterValue::range_hi(1.0f64, 0.5);
        assert!(lo <= 0.5 && 1.5 <= hi);

        let c = Dd::ONE / Dd::from(3.0);
        let lo = CenterValue::range_lo(c, 1e-40);
        let hi = CenterValue::range_hi(c, 1e-40);
        assert!(Dd::from(lo) <= c && c <= Dd::from(hi));
        assert!(lo < hi);
    }

    #[test]
    fn err_acc_is_monotone() {
        let mut acc = ErrAcc::default();
        acc.add(1e-20);
        let a = acc.value();
        acc.add_abs(-1e-22);
        assert!(acc.value() >= a);
        acc.add(0.0);
        assert!(acc.value() >= a);
    }

    #[test]
    fn f32_overflow_reports_infinite_error() {
        let (_, e) = <f32 as CenterValue>::add_err(f32::MAX, f32::MAX);
        assert_eq!(e, f64::INFINITY);
    }
}
