//! The affine form type.

use crate::center::CenterValue;
use crate::config::{AaContext, Placement};
use crate::symbol::{SymbolId, Term, NO_SYMBOL};
use safegen_fpcore::metrics;
use safegen_fpcore::round::{add_ru, sub_ru};
use safegen_fpcore::Dd;
use std::fmt;

/// An affine form `â = a₀ + Σ aᵢ·εᵢ` with central value of precision `C`
/// and `f64` coefficients, bounded to the context's `k` symbols.
///
/// Create forms through a [`AaContext`] so that error-symbol identifiers are
/// allocated consistently; combine them with the methods in this crate
/// ([`Affine::add`], [`Affine::mul`], …), always passing the same context.
///
/// ```
/// use safegen_affine::{AaConfig, AaContext, AffineF64, Protect};
/// let ctx = AaContext::new(AaConfig::new(8));
/// let x = AffineF64::from_input(0.5, &ctx);
/// let y = x.mul(&x, &ctx, Protect::None);
/// let (lo, hi) = y.range();
/// assert!(lo <= 0.25 && 0.25 <= hi);
/// ```
#[derive(Clone, Debug)]
pub struct Affine<C> {
    pub(crate) center: C,
    pub(crate) repr: Repr,
    /// Dedicated uncorrelated noise term (radius contribution with no
    /// symbol identity). Zero under [`crate::NoisePolicy::Fresh`]; carries
    /// all round-off under [`crate::NoisePolicy::Dedicated`] and the
    /// "infinite radius" poison value on overflow/division-by-zero.
    pub(crate) acc_noise: f64,
}

/// Double-precision affine form (the paper's `f64a`).
pub type AffineF64 = Affine<f64>;
/// Double-double affine form (the paper's `dda`).
pub type AffineDd = Affine<Dd>;
/// Single-precision affine form (the paper's `f32a`).
pub type AffineF32 = Affine<f32>;

/// Symbol storage, matching [`Placement`].
#[derive(Clone, Debug)]
pub(crate) enum Repr {
    /// Terms sorted by symbol id, ascending. No sentinel entries.
    Sorted(Vec<Term>),
    /// Fixed `k`-slot structure-of-arrays; slot `i` holds the symbol with
    /// `id % k == i` (or [`NO_SYMBOL`]). SoA layout so the per-slot kernels
    /// vectorize.
    Direct {
        ids: Box<[SymbolId]>,
        coeffs: Box<[f64]>,
    },
}

impl Repr {
    pub(crate) fn empty(ctx: &AaContext) -> Repr {
        match ctx.config().placement {
            Placement::Sorted => Repr::Sorted(Vec::new()),
            Placement::DirectMapped => Repr::Direct {
                ids: vec![NO_SYMBOL; ctx.k()].into_boxed_slice(),
                coeffs: vec![0.0; ctx.k()].into_boxed_slice(),
            },
        }
    }

    /// Inserts a fresh symbol; for sorted placement the id must exceed all
    /// existing ids.
    pub(crate) fn push_fresh(&mut self, id: SymbolId, coeff: f64, k: usize) {
        if coeff == 0.0 {
            return;
        }
        match self {
            Repr::Sorted(terms) => {
                debug_assert!(terms.last().is_none_or(|t| t.id < id));
                debug_assert!(terms.len() < k || k == usize::MAX);
                terms.push(Term::new(id, coeff));
            }
            Repr::Direct { ids, coeffs } => {
                let slot = (id % ids.len() as u64) as usize;
                if ids[slot] == NO_SYMBOL {
                    ids[slot] = id;
                    coeffs[slot] = coeff;
                } else {
                    // The fresh symbol absorbs the occupant (eq. 6); both
                    // magnitudes merge under the fresh id.
                    let merged = add_ru(coeffs[slot].abs(), coeff.abs());
                    ids[slot] = id;
                    coeffs[slot] = merged;
                }
            }
        }
    }
}

impl<C: CenterValue> Affine<C> {
    // -- constructors -------------------------------------------------------

    /// A form holding exactly the `f64` value `x` (no uncertainty beyond
    /// the conversion to precision `C`, which for `f32` adds a symbol).
    pub fn exact(x: f64, ctx: &AaContext) -> Affine<C> {
        let (center, conv_err) = C::from_f64(x);
        let mut repr = Repr::empty(ctx);
        if conv_err > 0.0 {
            repr.push_fresh(ctx.fresh_symbol(), conv_err, ctx.k());
        }
        Affine {
            center,
            repr,
            acc_noise: 0.0,
        }
    }

    /// A form for a source-program constant, following the paper's
    /// convention (Sec. IV-B): values that are exact integers carry no
    /// uncertainty; any other constant is assumed accurate to within
    /// `1 ulp(x)` and gets a fresh error symbol of that magnitude.
    pub fn constant(x: f64, ctx: &AaContext) -> Affine<C> {
        if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
            return Affine::exact(x, ctx);
        }
        let (center, conv_err) = C::from_f64(x);
        let mut repr = Repr::empty(ctx);
        let mag = add_ru(metrics::ulp(x), conv_err);
        repr.push_fresh(ctx.fresh_symbol(), mag, ctx.k());
        Affine {
            center,
            repr,
            acc_noise: 0.0,
        }
    }

    /// An input variable: central value `x` with one fresh symbol of
    /// magnitude `1 ulp(x)` — the input model of the paper's evaluation
    /// (Sec. VII, experimental setup).
    pub fn from_input(x: f64, ctx: &AaContext) -> Affine<C> {
        let (center, conv_err) = C::from_f64(x);
        let mut repr = Repr::empty(ctx);
        let mag = add_ru(metrics::ulp(x), conv_err);
        repr.push_fresh(ctx.fresh_symbol(), mag, ctx.k());
        Affine {
            center,
            repr,
            acc_noise: 0.0,
        }
    }

    /// A form enclosing the interval `[lo, hi]` with a single fresh symbol.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn from_interval(lo: f64, hi: f64, ctx: &AaContext) -> Affine<C> {
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        let mid = 0.5 * lo + 0.5 * hi;
        let (center, conv_err) = C::from_f64(mid);
        let rad = sub_ru(hi, mid).max(sub_ru(mid, lo));
        let mut repr = Repr::empty(ctx);
        repr.push_fresh(ctx.fresh_symbol(), add_ru(rad, conv_err), ctx.k());
        Affine {
            center,
            repr,
            acc_noise: 0.0,
        }
    }

    /// A form enclosing `[lo, hi]` that tolerates non-finite and inverted
    /// hulls instead of panicking: any hull whose midpoint is not a finite
    /// `f64` (half-infinite, fully infinite, or NaN endpoints) collapses to
    /// [`Affine::entire`]. This is the materialization hook the fixpoint
    /// engine uses to rebuild loop-carried variables from widened interval
    /// hulls, where ±∞ endpoints are routine.
    ///
    /// Affine forms cannot represent half-infinite ranges (the center must
    /// be finite), so `[1, +∞)` soundly over-approximates to the entire
    /// form; interval domains keep the one-sided bound.
    pub fn from_range_outward(lo: f64, hi: f64, ctx: &AaContext) -> Affine<C> {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            return Affine::entire(ctx);
        }
        let mid = 0.5 * lo + 0.5 * hi;
        if !mid.is_finite() {
            return Affine::entire(ctx);
        }
        let form = Affine::from_interval(lo, hi, ctx);
        let (rlo, rhi) = form.range();
        if rlo.is_nan() || rhi.is_nan() {
            return Affine::entire(ctx);
        }
        form
    }

    /// The least-upper-bound hull of two forms, as a fresh condensed form.
    ///
    /// All symbol correlation is deliberately dropped: the result is a
    /// single-symbol form over the union of the two ranges (noise-term
    /// condensation). Keeping correlated terms across a control-flow join
    /// would be unsound for loop-carried variables — `x = 1.0 - x` flips
    /// the sign of every coefficient each trip, so the "shared" symbols of
    /// successive iterations do not co-vary.
    pub fn join(&self, other: &Affine<C>, ctx: &AaContext) -> Affine<C> {
        let (alo, ahi) = self.range();
        let (blo, bhi) = other.range();
        if alo.is_nan() || ahi.is_nan() || blo.is_nan() || bhi.is_nan() {
            return Affine::entire(ctx);
        }
        Affine::from_range_outward(alo.min(blo), ahi.max(bhi), ctx)
    }

    /// The standard widening operator on the range hulls: any endpoint of
    /// `next` that escapes `self`'s range jumps straight to ±∞, so an
    /// ascending chain of widenings stabilizes after at most two steps.
    /// Like [`Affine::join`] the result is condensed to a single fresh
    /// symbol; the practical consequence of a widened endpoint is
    /// [`Affine::entire`] (see [`Affine::from_range_outward`]).
    pub fn widen(&self, next: &Affine<C>, ctx: &AaContext) -> Affine<C> {
        let (slo, shi) = self.range();
        let (nlo, nhi) = next.range();
        if slo.is_nan() || shi.is_nan() || nlo.is_nan() || nhi.is_nan() {
            return Affine::entire(ctx);
        }
        let lo = if nlo < slo { f64::NEG_INFINITY } else { slo };
        let hi = if nhi > shi { f64::INFINITY } else { shi };
        Affine::from_range_outward(lo, hi, ctx)
    }

    /// The "anything" form: infinite radius, certifies nothing. Produced by
    /// division through zero and overflow.
    pub fn entire(ctx: &AaContext) -> Affine<C> {
        let (center, _) = C::from_f64(0.0);
        Affine {
            center,
            repr: Repr::empty(ctx),
            acc_noise: f64::INFINITY,
        }
    }

    pub(crate) fn from_parts(center: C, repr: Repr, acc_noise: f64) -> Affine<C> {
        Affine {
            center,
            repr,
            acc_noise,
        }
    }

    // -- accessors ----------------------------------------------------------

    /// The central value `a₀`.
    #[inline]
    pub fn center(&self) -> C {
        self.center
    }

    /// The central value rounded to `f64`.
    #[inline]
    pub fn center_f64(&self) -> f64 {
        self.center.to_f64()
    }

    /// The dedicated uncorrelated noise magnitude (zero unless running
    /// under [`crate::NoisePolicy::Dedicated`] or poisoned).
    #[inline]
    pub fn acc_noise(&self) -> f64 {
        self.acc_noise
    }

    /// Number of live error symbols.
    pub fn n_symbols(&self) -> usize {
        match &self.repr {
            Repr::Sorted(terms) => terms.len(),
            Repr::Direct { ids, .. } => ids.iter().filter(|&&i| i != NO_SYMBOL).count(),
        }
    }

    /// The occupied terms, in unspecified order.
    pub fn terms(&self) -> Vec<Term> {
        match &self.repr {
            Repr::Sorted(terms) => terms.clone(),
            Repr::Direct { ids, coeffs } => ids
                .iter()
                .zip(coeffs.iter())
                .filter(|(&id, _)| id != NO_SYMBOL)
                .map(|(&id, &c)| Term::new(id, c))
                .collect(),
        }
    }

    /// The symbol identifiers, sorted ascending — the shape [`crate::Protect::Ids`]
    /// expects.
    pub fn symbol_ids(&self) -> Vec<SymbolId> {
        let mut ids: Vec<SymbolId> = match &self.repr {
            Repr::Sorted(terms) => terms.iter().map(|t| t.id).collect(),
            Repr::Direct { ids, .. } => ids.iter().copied().filter(|&i| i != NO_SYMBOL).collect(),
        };
        ids.sort_unstable();
        ids
    }

    /// The symbol ids worth protecting during one operation: at most
    /// `limit` ids, preferring the largest magnitudes (sorted ascending for
    /// [`crate::Protect::Ids`]).
    ///
    /// Protecting *every* symbol of a full variable would pin the whole
    /// budget and force fusion onto the other operand's (possibly larger)
    /// symbols — a net accuracy loss. Capping at the protection capacity
    /// keeps the prioritization hint useful.
    pub fn protect_ids(&self, limit: usize) -> Vec<SymbolId> {
        let mut terms = self.terms();
        if terms.len() > limit {
            let pivot = limit.saturating_sub(1).min(terms.len() - 1);
            terms.select_nth_unstable_by(pivot, |a, b| {
                b.coeff
                    .abs()
                    .partial_cmp(&a.coeff.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            terms.truncate(limit);
        }
        let mut ids: Vec<SymbolId> = terms.into_iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids
    }

    /// The radius `r(â) = Σ|aᵢ|` (plus dedicated noise), accumulated with
    /// upward rounding (paper eq. 2).
    pub fn radius(&self) -> f64 {
        let mut r = self.acc_noise;
        match &self.repr {
            Repr::Sorted(terms) => {
                for t in terms {
                    r = add_ru(r, t.coeff.abs());
                }
            }
            Repr::Direct { ids, coeffs } => {
                for (&id, &c) in ids.iter().zip(coeffs.iter()) {
                    if id != NO_SYMBOL {
                        r = add_ru(r, c.abs());
                    }
                }
            }
        }
        r
    }

    /// The sound enclosing range `[a₀ − r, a₀ + r]` as `f64` endpoints
    /// (outward-rounded).
    pub fn range(&self) -> (f64, f64) {
        let r = self.radius();
        (self.center.range_lo(r), self.center.range_hi(r))
    }

    /// True if the form is poisoned (NaN center or coefficient).
    pub fn is_nan(&self) -> bool {
        if self.center.is_nan() || self.acc_noise.is_nan() {
            return true;
        }
        match &self.repr {
            Repr::Sorted(terms) => terms.iter().any(|t| t.coeff.is_nan()),
            Repr::Direct { ids, coeffs } => ids
                .iter()
                .zip(coeffs.iter())
                .any(|(&id, &c)| id != NO_SYMBOL && c.is_nan()),
        }
    }

    /// `err(â)` — paper eq. 11, the base-2 log of the number of `f64`
    /// values inside the range.
    pub fn err_bits(&self) -> f64 {
        let (lo, hi) = self.range();
        metrics::err_bits(lo, hi)
    }

    /// `acc(â) = 53 − err(â)` — certified bits on the `f64` grid
    /// (paper eq. 12). All precisions are compared on this axis, as in the
    /// paper's figures; a form narrower than one `f64` ulp certifies the
    /// full 53 bits.
    pub fn acc_bits(&self) -> f64 {
        let (lo, hi) = self.range();
        metrics::acc_bits(lo, hi, metrics::F64_MANTISSA_BITS)
    }

    /// True if `x` is inside the form's range.
    pub fn contains_f64(&self, x: f64) -> bool {
        let (lo, hi) = self.range();
        lo <= x && x <= hi
    }

    /// True if the double-double value `x` is inside the form's range —
    /// the soundness check used throughout the test suite with dd reference
    /// results.
    pub fn contains_dd(&self, x: Dd) -> bool {
        let (lo, hi) = self.range();
        Dd::from(lo) <= x && x <= Dd::from(hi)
    }
}

impl<C: CenterValue> fmt::Display for Affine<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ± {:e} ({} syms)",
            self.center,
            self.radius(),
            self.n_symbols()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AaConfig, Placement};

    fn ctx_sorted(k: usize) -> AaContext {
        AaContext::new(AaConfig::new(k).with_placement(Placement::Sorted))
    }

    fn ctx_direct(k: usize) -> AaContext {
        AaContext::new(AaConfig::new(k))
    }

    #[test]
    fn exact_has_no_symbols() {
        let ctx = ctx_sorted(8);
        let x = AffineF64::exact(0.1, &ctx);
        assert_eq!(x.n_symbols(), 0);
        assert_eq!(x.radius(), 0.0);
        assert_eq!(x.range(), (0.1, 0.1));
        assert_eq!(x.acc_bits(), 53.0);
    }

    #[test]
    fn integer_constant_is_exact() {
        let ctx = ctx_sorted(8);
        let x = AffineF64::constant(3.0, &ctx);
        assert_eq!(x.n_symbols(), 0);
        let z = AffineF64::constant(0.0, &ctx);
        assert_eq!(z.n_symbols(), 0);
    }

    #[test]
    fn decimal_constant_gets_ulp_symbol() {
        let ctx = ctx_sorted(8);
        let x = AffineF64::constant(0.1, &ctx);
        assert_eq!(x.n_symbols(), 1);
        assert_eq!(x.radius(), metrics::ulp(0.1));
        // The true decimal 0.1 lies inside.
        let tenth = Dd::ONE / Dd::from(10.0);
        assert!(x.contains_dd(tenth));
    }

    #[test]
    fn from_input_radius_is_one_ulp() {
        let ctx = ctx_direct(8);
        let x = AffineF64::from_input(0.5, &ctx);
        assert_eq!(x.n_symbols(), 1);
        assert_eq!(x.radius(), metrics::ulp(0.5));
    }

    #[test]
    fn from_interval_encloses_endpoints() {
        let ctx = ctx_direct(8);
        let x = AffineF64::from_interval(0.1, 0.7, &ctx);
        assert!(x.contains_f64(0.1));
        assert!(x.contains_f64(0.7));
        assert!(x.contains_f64(0.4));
        assert!(!x.contains_f64(0.8));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn from_interval_rejects_inverted() {
        let ctx = ctx_direct(8);
        let _ = AffineF64::from_interval(1.0, 0.0, &ctx);
    }

    #[test]
    fn entire_certifies_nothing() {
        let ctx = ctx_direct(8);
        let x = AffineF64::entire(&ctx);
        assert_eq!(x.acc_bits(), f64::NEG_INFINITY);
        let (lo, hi) = x.range();
        assert_eq!(lo, f64::NEG_INFINITY);
        assert_eq!(hi, f64::INFINITY);
    }

    #[test]
    fn direct_repr_has_k_slots() {
        let ctx = ctx_direct(4);
        let x = AffineF64::from_input(1.0, &ctx);
        match &x.repr {
            Repr::Direct { ids, coeffs } => {
                assert_eq!(ids.len(), 4);
                assert_eq!(coeffs.len(), 4);
            }
            _ => panic!("expected direct repr"),
        }
    }

    #[test]
    fn direct_fresh_symbol_conflict_merges() {
        let ctx = ctx_direct(2);
        let mut repr = Repr::empty(&ctx);
        // ids 0 and 2 both map to slot 0 with k = 2.
        repr.push_fresh(0, 1.0, 2);
        repr.push_fresh(2, 0.5, 2);
        match &repr {
            Repr::Direct { ids, coeffs } => {
                assert_eq!(ids[0], 2); // fresh id wins the slot
                assert_eq!(coeffs[0], 1.5); // magnitudes merged soundly
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn symbol_ids_sorted() {
        let ctx = ctx_direct(8);
        let x = AffineF64::from_input(1.0, &ctx);
        let y = AffineF64::from_input(2.0, &ctx);
        let s = x.add(&y, &ctx, crate::Protect::None);
        let ids = s.symbol_ids();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dd_form_range_brackets_center() {
        let ctx = ctx_sorted(8);
        let x = AffineDd::from_input(0.1, &ctx);
        let (lo, hi) = x.range();
        assert!(lo <= 0.1 && 0.1 <= hi);
    }

    #[test]
    fn f32_exact_records_conversion_error() {
        let ctx = ctx_sorted(8);
        let x = AffineF32::exact(0.1, &ctx);
        // 0.1f64 is not representable in f32: a symbol captures the gap.
        assert_eq!(x.n_symbols(), 1);
        assert!(x.contains_f64(0.1));
    }

    #[test]
    fn display_nonempty() {
        let ctx = ctx_sorted(8);
        let x = AffineF64::from_input(1.0, &ctx);
        assert!(!format!("{x}").is_empty());
    }

    #[test]
    fn from_range_outward_is_outward_at_the_edges() {
        let ctx = ctx_sorted(8);
        // Ordinary range: the materialized form must enclose both
        // endpoints even though mid/rad rounding is involved — including
        // subnormal-width ranges whose midpoint rounds.
        let cases = [
            (0.1, 0.2),
            (-1.0, 1.0),
            (f64::from_bits(1), f64::from_bits(9)),
            (-f64::MIN_POSITIVE, f64::MIN_POSITIVE.next_up()),
            (1.0, 1.0f64.next_up()),
        ];
        for (lo, hi) in cases {
            let x = AffineF64::from_range_outward(lo, hi, &ctx);
            let (rlo, rhi) = x.range();
            assert!(
                rlo <= lo && hi <= rhi,
                "[{lo:e}, {hi:e}] → [{rlo:e}, {rhi:e}]"
            );
        }
        // Half-infinite and infinite hulls cannot keep a finite center:
        // the sound materialization is the entire form, never a panic.
        for (lo, hi) in [
            (1.0, f64::INFINITY),
            (f64::NEG_INFINITY, 0.0),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::MAX, f64::INFINITY),
            (f64::NAN, 1.0),
        ] {
            let x = AffineF64::from_range_outward(lo, hi, &ctx);
            let (rlo, rhi) = x.range();
            assert_eq!(
                (rlo, rhi),
                (f64::NEG_INFINITY, f64::INFINITY),
                "[{lo:e}, {hi:e}] must collapse to entire"
            );
        }
        // Near-overflow midpoints: 0.5*lo + 0.5*hi stays finite here, and
        // the enclosure must still cover both endpoints.
        let x = AffineF64::from_range_outward(f64::MAX.next_down(), f64::MAX, &ctx);
        let (rlo, rhi) = x.range();
        assert!(rlo <= f64::MAX.next_down() && f64::MAX <= rhi);
    }

    #[test]
    fn join_and_widen_dominate_ranges_and_drop_correlation() {
        let ctx = ctx_sorted(8);
        let a = AffineF64::from_interval(-1.0, 2.0, &ctx);
        let b = AffineF64::from_interval(1.5, 3.0, &ctx);
        let j = a.join(&b, &ctx);
        let (jlo, jhi) = j.range();
        assert!(jlo <= -1.0 && 3.0 <= jhi, "join [{jlo}, {jhi}]");
        // The join is condensed to a single fresh symbol: keeping the
        // inputs' symbols across a loop join would be unsound — the
        // `x = 1.0 - x` flip makes successive trips anti-correlated.
        assert!(j.n_symbols() <= 1, "join not condensed: {}", j.n_symbols());

        // widen ⊒ join on the ranges, and an ascending chain stabilizes
        // after at most two applications per endpoint.
        let w = a.widen(&b, &ctx);
        let (wlo, whi) = w.range();
        assert!(wlo <= jlo && jhi <= whi);
        let w2 = w.widen(&AffineF64::from_interval(-5.0, 100.0, &ctx), &ctx);
        let w3 = w2.widen(&AffineF64::from_interval(-1e300, 1e300, &ctx), &ctx);
        let (lo3, hi3) = w3.range();
        assert_eq!((lo3, hi3), (f64::NEG_INFINITY, f64::INFINITY));
        let w4 = w3.widen(&AffineF64::from_interval(-1e308, 1e308, &ctx), &ctx);
        let (lo4, hi4) = w4.range();
        assert_eq!((lo4, hi4), (lo3, hi3), "widening chain did not stabilize");
    }
}
