//! Affine operations: add, sub, mul, div, sqrt, negation, comparisons, and
//! the range-clipping helpers the benchmarks need.
//!
//! Every operation follows the same shape:
//!
//! 1. combine the central values with [`CenterValue`], recovering the
//!    rounding error;
//! 2. merge the symbol terms with the placement-specific kernel
//!    ([`crate::sorted`] / [`crate::direct`] / [`crate::vector`]), which
//!    accumulates coefficient rounding errors (and, for direct-mapped
//!    placement, slot-conflict fusions) into the *noise* accumulator;
//! 3. add operation-specific over-approximation terms (the quadratic
//!    `r(â)·r(b̂)` of multiplication, the `δ` of the min-range
//!    approximations);
//! 4. *finalize*: fuse down to the symbol budget per the fusion policy and
//!    materialize the noise as a fresh error symbol (or fold it into the
//!    dedicated noise term under [`NoisePolicy::Dedicated`]).

use crate::center::{CenterValue, ErrAcc};
use crate::config::{AaContext, NoisePolicy, Placement, Protect};
use crate::direct::{merge_linear_direct, merge_mul_direct, scale_direct};
use crate::form::{Affine, Repr};
use crate::fusion::select_victims;
use crate::sorted::{merge_linear, merge_mul, scale_terms};
use crate::symbol::{Term, NO_SYMBOL};
use crate::vector;
use safegen_fpcore::round::{add_ru, div_rd, div_ru, mul_ru, sqrt_rd, sqrt_ru, sub_rd, sub_ru};
use std::cmp::Ordering;

/// Magnitude product for radius/noise propagation: `0 · ∞` must be `0`
/// here (a coefficient of exactly zero annihilates even an unbounded noise
/// term — every realization of the noise is a real number), where plain
/// IEEE multiplication would produce a NaN and poison the range.
#[inline]
fn mul_mag(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        mul_ru(a, b)
    }
}

impl<C: CenterValue> Affine<C> {
    /// Affine addition `â + b̂` (paper eq. 3–4).
    pub fn add(&self, rhs: &Affine<C>, ctx: &AaContext, protect: Protect<'_>) -> Affine<C> {
        self.linear_op(rhs, 1.0, ctx, protect)
    }

    /// Affine subtraction `â − b̂` — where shared symbols cancel.
    pub fn sub(&self, rhs: &Affine<C>, ctx: &AaContext, protect: Protect<'_>) -> Affine<C> {
        self.linear_op(rhs, -1.0, ctx, protect)
    }

    fn linear_op(
        &self,
        rhs: &Affine<C>,
        sign_b: f64,
        ctx: &AaContext,
        protect: Protect<'_>,
    ) -> Affine<C> {
        let mut noise = ErrAcc::default();
        let (center, ce) = if sign_b > 0.0 {
            C::add_err(self.center, rhs.center)
        } else {
            C::sub_err(self.center, rhs.center)
        };
        noise.add(ce);
        let acc = add_ru(self.acc_noise, rhs.acc_noise);

        match (&self.repr, &rhs.repr) {
            (Repr::Sorted(a), Repr::Sorted(b)) => {
                let terms = merge_linear(a, b, sign_b, &mut noise);
                finalize_sorted(center, terms, noise.value(), acc, ctx, protect)
            }
            (
                Repr::Direct {
                    ids: ai,
                    coeffs: ac,
                },
                Repr::Direct {
                    ids: bi,
                    coeffs: bc,
                },
            ) => {
                let (ids, coeffs) = if ctx.config().vectorized {
                    vector::merge_linear_vec(ai, ac, bi, bc, sign_b, ctx, protect, &mut noise)
                } else {
                    merge_linear_direct(ai, ac, bi, bc, sign_b, ctx, protect, &mut noise)
                };
                finalize_direct(center, ids, coeffs, noise.value(), acc, ctx)
            }
            _ => panic!("mixed placements: operands must come from one context"),
        }
    }

    /// Affine multiplication `â · b̂` (paper eq. 5): the affine part keeps
    /// linear correlations, the quadratic remainder `r(â)·r(b̂)` joins the
    /// fresh symbol.
    pub fn mul(&self, rhs: &Affine<C>, ctx: &AaContext, protect: Protect<'_>) -> Affine<C> {
        let mut noise = ErrAcc::default();
        let (center, ce) = C::mul_err(self.center, rhs.center);
        noise.add(ce);
        // Quadratic over-approximation: covers all εᵢ·εⱼ products,
        // including the dedicated-noise contributions (radius includes
        // them).
        noise.add(mul_mag(self.radius(), rhs.radius()));
        // Linear contributions of each operand's dedicated noise.
        let acc = add_ru(
            mul_mag(rhs.center.abs_f64(), self.acc_noise),
            mul_mag(self.center.abs_f64(), rhs.acc_noise),
        );

        match (&self.repr, &rhs.repr) {
            (Repr::Sorted(a), Repr::Sorted(b)) => {
                let terms = merge_mul(self.center, rhs.center, a, b, &mut noise);
                finalize_sorted(center, terms, noise.value(), acc, ctx, protect)
            }
            (
                Repr::Direct {
                    ids: ai,
                    coeffs: ac,
                },
                Repr::Direct {
                    ids: bi,
                    coeffs: bc,
                },
            ) => {
                let (ids, coeffs) = if ctx.config().vectorized {
                    vector::merge_mul_vec(
                        self.center,
                        rhs.center,
                        ai,
                        ac,
                        bi,
                        bc,
                        ctx,
                        protect,
                        &mut noise,
                    )
                } else {
                    merge_mul_direct(
                        self.center,
                        rhs.center,
                        ai,
                        ac,
                        bi,
                        bc,
                        ctx,
                        protect,
                        &mut noise,
                    )
                };
                finalize_direct(center, ids, coeffs, noise.value(), acc, ctx)
            }
            _ => panic!("mixed placements: operands must come from one context"),
        }
    }

    /// Affine division `â / b̂ = â · (1/b̂)`, using a sound min-range
    /// linear approximation of the reciprocal. A divisor whose range
    /// contains zero yields the [`Affine::entire`] form.
    pub fn div(&self, rhs: &Affine<C>, ctx: &AaContext, protect: Protect<'_>) -> Affine<C> {
        let r = rhs.recip(ctx, protect);
        self.mul(&r, ctx, protect)
    }

    /// Sound reciprocal `1 / b̂` via min-range linear approximation
    /// `α·b̂ + ζ ± δ`.
    pub fn recip(&self, ctx: &AaContext, protect: Protect<'_>) -> Affine<C> {
        let (lo, hi) = self.range();
        if lo <= 0.0 && hi >= 0.0 {
            return Affine::entire(ctx);
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Affine::entire(ctx);
        }
        // Work on the positive side; mirror for negative ranges.
        let negate = hi < 0.0;
        let (l, u) = if negate { (-hi, -lo) } else { (lo, hi) };

        // Min-range approximation of f(x) = 1/x on [l, u] (0 < l ≤ u):
        // slope α = f'(u) = −1/u² makes d(x) = 1/x − αx monotone
        // decreasing on [l, u], so its extremes are at the endpoints.
        // All quantities are computed with directed rounding.
        let alpha = -div_rd(1.0, mul_ru(u, u)); // any value near −1/u² is valid
                                                // d(l) and d(u), outward-rounded. d is only *approximately*
                                                // monotone once α is a rounded value, so take min/max of sound
                                                // endpoint enclosures plus the (tiny) interior correction at the
                                                // critical point x* = 1/√(−α), which lies within ~1 ulp of u.
        let (dl_lo, dl_hi) = d_recip_bounds(l, alpha);
        let (du_lo, du_hi) = d_recip_bounds(u, alpha);
        // Interior critical value: d(x*) = 2√(−α) ≥ d(u); include it.
        let dxs_hi = mul_ru(2.0, sqrt_ru(-alpha));
        let dmin = dl_lo.min(du_lo);
        let dmax = dl_hi.max(du_hi).max(dxs_hi);
        let zeta = 0.5 * (dmin + dmax);
        let delta = add_ru(sub_ru(dmax, zeta), sub_ru(zeta, dmin)).max(0.0) * 0.5;
        // delta covers |d(x) − ζ| with margin: widen by one rounding step.
        let delta = add_ru(delta, safegen_fpcore::metrics::ulp(dmax));

        let (alpha, zeta) = if negate {
            (alpha, -zeta)
        } else {
            (alpha, zeta)
        };
        self.linear_approx(alpha, zeta, delta, ctx, protect)
    }

    /// Sound square root via min-range linear approximation. Ranges that
    /// dip below zero yield the poisoned [`Affine::entire`] form (the value
    /// may be NaN, per the paper's convention).
    pub fn sqrt(&self, ctx: &AaContext, protect: Protect<'_>) -> Affine<C> {
        let (lo, hi) = self.range();
        if lo < 0.0 || !hi.is_finite() {
            return Affine::entire(ctx);
        }
        if self.radius() == 0.0 {
            // Point form: direct centered square root.
            let mut noise = ErrAcc::default();
            let (c, e) = C::sqrt_err(self.center);
            noise.add(e);
            return finalize_scaled(self, c, None, noise, ctx, protect);
        }
        if lo == 0.0 {
            // Degenerate slope at 0: fall back to the interval enclosure.
            return Affine::from_interval(0.0, sqrt_ru(hi), ctx);
        }
        // Min-range: slope α = f'(u) = 1/(2√u); d(x) = √x − αx is
        // increasing on [l, u], extremes at the endpoints (checked with an
        // interior correction as in `recip`).
        let alpha = div_rd(1.0, mul_ru(2.0, sqrt_ru(hi)));
        let (dl_lo, dl_hi) = d_sqrt_bounds(lo, alpha);
        let (du_lo, du_hi) = d_sqrt_bounds(hi, alpha);
        // Interior critical point x* = 1/(4α²), d(x*) = 1/(4α).
        let dxs_hi = div_ru(1.0, mul_ru(4.0, alpha).max(f64::MIN_POSITIVE));
        let dmin = dl_lo.min(du_lo);
        let dmax = dl_hi.max(du_hi).max(dxs_hi);
        let zeta = 0.5 * (dmin + dmax);
        let delta = add_ru(sub_ru(dmax, zeta), sub_ru(zeta, dmin)).max(0.0) * 0.5;
        let delta = add_ru(delta, safegen_fpcore::metrics::ulp(dmax.max(1e-300)));
        self.linear_approx(alpha, zeta, delta, ctx, protect)
    }

    /// Negation (exact: flips the center and every coefficient).
    pub fn neg(&self) -> Affine<C> {
        let repr = match &self.repr {
            Repr::Sorted(terms) => {
                Repr::Sorted(terms.iter().map(|t| Term::new(t.id, -t.coeff)).collect())
            }
            Repr::Direct { ids, coeffs } => Repr::Direct {
                ids: ids.clone(),
                coeffs: coeffs.iter().map(|c| -c).collect(),
            },
        };
        Affine::from_parts(self.center.neg(), repr, self.acc_noise)
    }

    /// `α·â + ζ ± δ` — the shared backbone of [`Affine::recip`] and
    /// [`Affine::sqrt`]: scales the affine part (keeping correlations),
    /// shifts the center, and adds `δ` to the fresh-symbol noise.
    pub fn linear_approx(
        &self,
        alpha: f64,
        zeta: f64,
        delta: f64,
        ctx: &AaContext,
        protect: Protect<'_>,
    ) -> Affine<C> {
        let mut noise = ErrAcc::default();
        let (scaled, e1) = self.center.scale_coeff(alpha);
        // Center arithmetic stays in C: c = RN_C(scaled + ζ).
        let (zc, zconv) = C::from_f64(zeta);
        let (sc, sconv) = C::from_f64(scaled);
        let (center, e2) = C::add_err(sc, zc);
        noise.add(e1);
        noise.add(e2);
        noise.add(zconv);
        noise.add(sconv);
        noise.add(delta);
        noise.add(mul_mag(self.acc_noise, alpha.abs()));

        match &self.repr {
            Repr::Sorted(terms) => {
                let terms = scale_terms(terms, alpha, &mut noise);
                finalize_sorted(center, terms, noise.value(), 0.0, ctx, protect)
            }
            Repr::Direct { ids, coeffs } => {
                let (ids, coeffs) = scale_direct(ids, coeffs, alpha, &mut noise);
                finalize_direct(center, ids, coeffs, noise.value(), 0.0, ctx)
            }
        }
    }

    /// Three-way comparison when the ranges are disjoint; `None` when they
    /// overlap (the comparison is not decided by the sound enclosures).
    pub fn try_cmp(&self, rhs: &Affine<C>) -> Option<Ordering> {
        let (alo, ahi) = self.range();
        let (blo, bhi) = rhs.range();
        if alo.is_nan() || blo.is_nan() {
            return None;
        }
        if ahi < blo {
            Some(Ordering::Less)
        } else if alo > bhi {
            Some(Ordering::Greater)
        } else if alo == ahi && blo == bhi && alo == blo {
            Some(Ordering::Equal)
        } else {
            None
        }
    }

    /// Comparison by central value — the documented fallback for branches
    /// whose sound comparison is undecided (pivoting in `luf`; sound for
    /// branch *selection*, see DESIGN.md §4.5).
    pub fn cmp_center(&self, rhs: &Affine<C>) -> Ordering {
        self.center_f64()
            .partial_cmp(&rhs.center_f64())
            .unwrap_or(Ordering::Equal)
    }

    /// Sound absolute value: exact when the sign is determined, interval
    /// hull otherwise. Non-finite ranges (NaN or ±∞ endpoints, routine for
    /// widened loop-carried state) collapse to [`Affine::entire`].
    pub fn abs(&self, ctx: &AaContext) -> Affine<C> {
        let (lo, hi) = self.range();
        if lo.is_nan() || hi.is_nan() {
            return Affine::entire(ctx);
        }
        if lo >= 0.0 {
            self.clone()
        } else if hi <= 0.0 {
            self.neg()
        } else {
            Affine::from_range_outward(0.0, hi.max(-lo), ctx)
        }
    }

    /// Sound `max(â, lo_bound)` where the bound is an exact scalar — the
    /// projection primitive of the fast-gradient-method benchmark. When the
    /// comparison is undecided the result is the interval hull (correlations
    /// to `â` are lost only in that case).
    pub fn max_scalar(&self, bound: f64, ctx: &AaContext) -> Affine<C> {
        let (lo, hi) = self.range();
        if lo.is_nan() || hi.is_nan() {
            return Affine::entire(ctx);
        }
        if lo >= bound {
            self.clone()
        } else if hi <= bound {
            Affine::exact(bound, ctx)
        } else {
            Affine::from_range_outward(bound, hi, ctx)
        }
    }

    /// Sound `min(â, hi_bound)` with an exact scalar bound.
    pub fn min_scalar(&self, bound: f64, ctx: &AaContext) -> Affine<C> {
        let (lo, hi) = self.range();
        if lo.is_nan() || hi.is_nan() {
            return Affine::entire(ctx);
        }
        if hi <= bound {
            self.clone()
        } else if lo >= bound {
            Affine::exact(bound, ctx)
        } else {
            Affine::from_range_outward(lo, bound, ctx)
        }
    }

    /// Sound clamp into `[lo_bound, hi_bound]`.
    pub fn clip(&self, lo_bound: f64, hi_bound: f64, ctx: &AaContext) -> Affine<C> {
        self.max_scalar(lo_bound, ctx).min_scalar(hi_bound, ctx)
    }
}

/// Outward bounds of `d(x) = 1/x − αx` at a point.
fn d_recip_bounds(x: f64, alpha: f64) -> (f64, f64) {
    let inv_lo = div_rd(1.0, x);
    let inv_hi = div_ru(1.0, x);
    let ax_lo = safegen_fpcore::round::mul_rd(alpha, x);
    let ax_hi = mul_ru(alpha, x);
    (sub_rd(inv_lo, ax_hi), sub_ru(inv_hi, ax_lo))
}

/// Outward bounds of `d(x) = √x − αx` at a point.
fn d_sqrt_bounds(x: f64, alpha: f64) -> (f64, f64) {
    let s_lo = sqrt_rd(x);
    let s_hi = sqrt_ru(x);
    let ax_lo = safegen_fpcore::round::mul_rd(alpha, x);
    let ax_hi = mul_ru(alpha, x);
    (sub_rd(s_lo, ax_hi), sub_ru(s_hi, ax_lo))
}

/// Point-operation finalization used by `sqrt` on radius-0 forms.
fn finalize_scaled<C: CenterValue>(
    src: &Affine<C>,
    center: C,
    _terms: Option<()>,
    noise: ErrAcc,
    ctx: &AaContext,
    protect: Protect<'_>,
) -> Affine<C> {
    let _ = (src, protect);
    let mut repr = Repr::empty(ctx);
    if noise.value() > 0.0 {
        repr.push_fresh(ctx.fresh_symbol(), noise.value(), ctx.k());
    }
    Affine::from_parts(center, repr, 0.0)
}

/// Fuses a sorted term list down to the budget and attaches the fresh
/// round-off symbol (paper Sec. V-B).
pub(crate) fn finalize_sorted<C: CenterValue>(
    center: C,
    mut terms: Vec<Term>,
    noise: f64,
    acc_noise: f64,
    ctx: &AaContext,
    protect: Protect<'_>,
) -> Affine<C> {
    let k = ctx.k();
    debug_assert_eq!(ctx.config().placement, Placement::Sorted);

    match ctx.config().noise {
        NoisePolicy::Dedicated => {
            // No fresh symbols: noise joins the dedicated term; the budget
            // still applies to the inherited symbols.
            let mut acc = add_ru(acc_noise, noise);
            if terms.len() > k {
                let excess = terms.len() - k;
                acc = fuse_selected(&mut terms, excess, acc, ctx, protect);
            }
            Affine::from_parts(center, Repr::Sorted(terms), acc)
        }
        NoisePolicy::Fresh => {
            let mut noise = noise;
            if terms.len() + usize::from(noise > 0.0) > k {
                // Keep k−1, fuse the rest into the fresh symbol.
                let keep = k.saturating_sub(1);
                let excess = terms.len() - keep;
                noise = fuse_selected(&mut terms, excess, noise, ctx, protect);
            }
            if noise > 0.0 {
                let id = ctx.fresh_symbol();
                debug_assert!(terms.last().is_none_or(|t| t.id < id));
                terms.push(Term::new(id, noise));
            }
            Affine::from_parts(center, Repr::Sorted(terms), acc_noise)
        }
    }
}

/// Removes policy-selected victims from `terms` and returns `noise`
/// increased by their magnitudes (upward-rounded).
fn fuse_selected(
    terms: &mut Vec<Term>,
    excess: usize,
    mut noise: f64,
    ctx: &AaContext,
    protect: Protect<'_>,
) -> f64 {
    let mut victims = select_victims(terms, excess, ctx.config().fusion, ctx, protect);
    ctx.note_fusion(victims.len() as u64);
    victims.sort_unstable();
    for &i in victims.iter().rev() {
        noise = add_ru(noise, terms[i].coeff.abs());
        terms.remove(i);
    }
    noise
}

/// Direct-mapped finalization: the slot arrays are already within budget;
/// the fresh symbol claims its slot, absorbing any occupant.
pub(crate) fn finalize_direct<C: CenterValue>(
    center: C,
    ids: Box<[u64]>,
    coeffs: Box<[f64]>,
    noise: f64,
    acc_noise: f64,
    ctx: &AaContext,
) -> Affine<C> {
    let mut repr = Repr::Direct { ids, coeffs };
    match ctx.config().noise {
        NoisePolicy::Dedicated => Affine::from_parts(center, repr, add_ru(acc_noise, noise)),
        NoisePolicy::Fresh => {
            if noise > 0.0 {
                let id = ctx.fresh_symbol();
                if let Repr::Direct { ids, .. } = &repr {
                    let slot = (id % ids.len() as u64) as usize;
                    if ids[slot] != NO_SYMBOL {
                        ctx.note_condensation();
                    }
                }
                repr.push_fresh(id, noise, ctx.k());
            }
            Affine::from_parts(center, repr, acc_noise)
        }
    }
}

/// Suppresses an unused-import warning path for `NO_SYMBOL` in release
/// builds where the debug assertions compile out.
#[allow(dead_code)]
const _: u64 = NO_SYMBOL;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AaConfig, Fusion};
    use safegen_fpcore::Dd;

    fn ctx(k: usize, placement: Placement) -> AaContext {
        AaContext::new(
            AaConfig::new(k)
                .with_placement(placement)
                .with_vectorized(false),
        )
    }

    fn both_placements(k: usize) -> [AaContext; 2] {
        [ctx(k, Placement::Sorted), ctx(k, Placement::DirectMapped)]
    }

    #[test]
    fn add_contains_exact_sum() {
        for c in both_placements(8) {
            let a = Affine::<f64>::from_input(0.1, &c);
            let b = Affine::<f64>::from_input(0.2, &c);
            let s = a.add(&b, &c, Protect::None);
            let exact = Dd::from_two_sum(0.1, 0.2);
            assert!(s.contains_dd(exact));
        }
    }

    #[test]
    fn sub_self_cancels_exactly() {
        for c in both_placements(8) {
            let a = Affine::<f64>::from_interval(0.0, 1.0, &c);
            let d = a.sub(&a, &c, Protect::None);
            assert_eq!(d.range(), (0.0, 0.0), "x - x must be exactly zero in AA");
        }
    }

    #[test]
    fn paper_section_ii_example() {
        // â = 0.5 + 0.5ε₁ ⇒ â − â = 0 (the motivating example).
        let c = ctx(4, Placement::Sorted);
        let a = Affine::<f64>::from_interval(0.0, 1.0, &c);
        let d = a.sub(&a, &c, Protect::None);
        assert_eq!(d.center_f64(), 0.0);
        assert_eq!(d.radius(), 0.0);
    }

    #[test]
    fn mul_contains_exact_product() {
        for c in both_placements(8) {
            let a = Affine::<f64>::from_input(0.7, &c);
            let b = Affine::<f64>::from_input(0.3, &c);
            let p = a.mul(&b, &c, Protect::None);
            assert!(p.contains_dd(Dd::from_two_prod(0.7, 0.3)));
        }
    }

    #[test]
    fn paper_fig4_partial_cancellation() {
        // x·z − y·z with shared z: the ε_z terms cancel.
        for c in both_placements(8) {
            let x = Affine::<f64>::from_interval(0.9, 1.1, &c);
            let y = Affine::<f64>::from_interval(0.9, 1.1, &c);
            let z = Affine::<f64>::from_interval(0.9, 1.1, &c);
            let t1 = x.mul(&z, &c, Protect::None);
            let t2 = y.mul(&z, &c, Protect::None);
            let t3 = t1.sub(&t2, &c, Protect::None);
            // Exact range of x·z − y·z = z(x−y): |z|≤1.1, |x−y|≤0.2 → ±0.22.
            let (lo, hi) = t3.range();
            assert!(lo <= 0.0 && 0.0 <= hi);
            // AA keeps it well below the IA bound of ±(1.21−0.81)=±0.4.
            assert!(hi < 0.3, "hi = {hi}");
            assert!(lo > -0.3, "lo = {lo}");
        }
    }

    #[test]
    fn fusion_respects_budget() {
        for c in both_placements(4) {
            let mut x = Affine::<f64>::from_input(0.5, &c);
            let y = Affine::<f64>::from_input(0.25, &c);
            for _ in 0..20 {
                x = x.mul(&y, &c, Protect::None);
                assert!(x.n_symbols() <= 4, "budget violated: {}", x.n_symbols());
            }
        }
    }

    #[test]
    fn fusion_remains_sound() {
        // Long chain with tiny k: the enclosure must still contain the
        // dd-exact result.
        for c in both_placements(2) {
            let mut x = Affine::<f64>::from_input(0.5, &c);
            let y = Affine::<f64>::from_input(1.25, &c);
            let mut exact = Dd::from(0.5);
            let yd = Dd::from(1.25);
            for _ in 0..30 {
                x = x.mul(&y, &c, Protect::None);
                exact = exact * yd;
                assert!(x.contains_dd(exact));
            }
        }
    }

    #[test]
    fn div_contains_exact_quotient() {
        for c in both_placements(8) {
            let a = Affine::<f64>::from_input(1.0, &c);
            let b = Affine::<f64>::from_input(3.0, &c);
            let q = a.div(&b, &c, Protect::None);
            assert!(
                q.contains_dd(Dd::ONE / Dd::from(3.0)),
                "range = {:?}",
                q.range()
            );
            // And reasonably tight.
            let (lo, hi) = q.range();
            assert!(hi - lo < 1e-10, "width = {}", hi - lo);
        }
    }

    #[test]
    fn div_through_zero_poisons() {
        let c = ctx(8, Placement::Sorted);
        let a = Affine::<f64>::exact(1.0, &c);
        let b = Affine::<f64>::from_interval(-1.0, 1.0, &c);
        let q = a.div(&b, &c, Protect::None);
        assert_eq!(q.acc_bits(), f64::NEG_INFINITY);
    }

    #[test]
    fn div_negative_divisor() {
        for c in both_placements(8) {
            let a = Affine::<f64>::from_input(1.0, &c);
            let b = Affine::<f64>::from_input(-4.0, &c);
            let q = a.div(&b, &c, Protect::None);
            assert!(q.contains_f64(-0.25), "range = {:?}", q.range());
        }
    }

    #[test]
    fn recip_preserves_correlation() {
        // x / x should be ≈ 1 with a tight range, because 1/x keeps x's
        // symbols (scaled) and the multiply cancels.
        let c = ctx(8, Placement::Sorted);
        let x = Affine::<f64>::from_interval(1.0, 1.001, &c);
        let q = x.div(&x, &c, Protect::None);
        let (lo, hi) = q.range();
        assert!(lo <= 1.0 && 1.0 <= hi);
        // IA would give [1/1.001, 1.001] ≈ width 2e-3; AA must beat it.
        assert!(hi - lo < 1.5e-3, "width = {}", hi - lo);
    }

    #[test]
    fn sqrt_contains_exact() {
        for c in both_placements(8) {
            let a = Affine::<f64>::from_input(2.0, &c);
            let r = a.sqrt(&c, Protect::None);
            assert!(
                r.contains_dd(Dd::from(2.0).sqrt()),
                "range = {:?}",
                r.range()
            );
        }
    }

    #[test]
    fn sqrt_negative_poisons() {
        let c = ctx(8, Placement::Sorted);
        let a = Affine::<f64>::from_interval(-2.0, -1.0, &c);
        assert_eq!(a.sqrt(&c, Protect::None).acc_bits(), f64::NEG_INFINITY);
    }

    #[test]
    fn sqrt_point_form() {
        let c = ctx(8, Placement::Sorted);
        let a = Affine::<f64>::exact(4.0, &c);
        let r = a.sqrt(&c, Protect::None);
        assert!(r.contains_f64(2.0));
        assert!(r.radius() <= f64::EPSILON);
    }

    #[test]
    fn neg_flips_everything() {
        for c in both_placements(8) {
            let a = Affine::<f64>::from_input(0.5, &c);
            let n = a.neg();
            assert_eq!(n.center_f64(), -0.5);
            let (lo, hi) = a.range();
            let (nlo, nhi) = n.range();
            assert_eq!((nlo, nhi), (-hi, -lo));
        }
    }

    #[test]
    fn comparisons() {
        let c = ctx(8, Placement::Sorted);
        let a = Affine::<f64>::from_interval(0.0, 1.0, &c);
        let b = Affine::<f64>::from_interval(2.0, 3.0, &c);
        assert_eq!(a.try_cmp(&b), Some(Ordering::Less));
        assert_eq!(b.try_cmp(&a), Some(Ordering::Greater));
        let o = Affine::<f64>::from_interval(0.5, 2.5, &c);
        assert_eq!(a.try_cmp(&o), None);
        assert_eq!(a.cmp_center(&b), Ordering::Less);
    }

    #[test]
    fn clip_preserves_inside_form() {
        let c = ctx(8, Placement::Sorted);
        let a = Affine::<f64>::from_interval(0.2, 0.4, &c);
        let clipped = a.clip(0.0, 1.0, &c);
        // Entirely inside: the very same symbols survive (correlations kept).
        assert_eq!(clipped.symbol_ids(), a.symbol_ids());
    }

    #[test]
    fn clip_saturates() {
        let c = ctx(8, Placement::Sorted);
        let a = Affine::<f64>::from_interval(2.0, 3.0, &c);
        let clipped = a.clip(0.0, 1.0, &c);
        assert_eq!(clipped.range(), (1.0, 1.0));
        let b = Affine::<f64>::from_interval(-3.0, -2.0, &c);
        assert_eq!(b.clip(0.0, 1.0, &c).range(), (0.0, 0.0));
    }

    #[test]
    fn clip_partial_overlap_hulls() {
        let c = ctx(8, Placement::Sorted);
        let a = Affine::<f64>::from_interval(-0.5, 0.5, &c);
        let clipped = a.clip(0.0, 1.0, &c);
        let (lo, hi) = clipped.range();
        assert!(lo <= 0.0 && hi >= 0.5);
        assert!(hi <= 0.5 + 1e-12);
    }

    #[test]
    fn abs_mixed_sign() {
        let c = ctx(8, Placement::Sorted);
        let a = Affine::<f64>::from_interval(-1.0, 2.0, &c);
        let r = a.abs(&c);
        let (lo, hi) = r.range();
        assert!(lo <= 0.0 + 1e-12 && hi >= 2.0);
    }

    #[test]
    fn dedicated_noise_mode_creates_no_symbols() {
        let cfg = AaConfig::new(8)
            .with_placement(Placement::Sorted)
            .with_noise(NoisePolicy::Dedicated)
            .with_vectorized(false);
        let c = AaContext::new(cfg);
        let a = Affine::<f64>::from_input(0.1, &c);
        let b = Affine::<f64>::from_input(0.2, &c);
        let s = a.mul(&b, &c, Protect::None);
        // Only the two input symbols exist; round-off went to acc_noise.
        assert!(s.n_symbols() <= 2);
        assert!(s.acc_noise() > 0.0);
        assert!(s.contains_dd(Dd::from_two_prod(0.1, 0.2)));
    }

    #[test]
    fn dda_center_keeps_more_bits() {
        let cs = ctx(8, Placement::Sorted);
        // Chain of multiplications by an inexact constant.
        let mut f = Affine::<f64>::from_input(0.7, &cs);
        let g64 = Affine::<f64>::constant(0.9, &cs);
        let cd = ctx(8, Placement::Sorted);
        let mut d = Affine::<Dd>::from_input(0.7, &cd);
        let gdd = Affine::<Dd>::constant(0.9, &cd);
        for _ in 0..40 {
            f = f.mul(&g64, &cs, Protect::None);
            d = d.mul(&gdd, &cd, Protect::None);
        }
        assert!(
            d.acc_bits() >= f.acc_bits(),
            "dda {} vs f64a {}",
            d.acc_bits(),
            f.acc_bits()
        );
    }

    #[test]
    fn k1_behaves_like_interval_arithmetic() {
        // With k = 1, every operation's result holds a single fresh symbol,
        // so results of *distinct* operations never correlate: computing
        // x·c twice and subtracting does not cancel (the IA behaviour).
        let c1 = ctx(1, Placement::Sorted);
        let x = Affine::<f64>::from_interval(0.0, 1.0, &c1);
        let y = Affine::<f64>::constant(1.5, &c1);
        let t1 = x.mul(&y, &c1, Protect::None);
        let t2 = x.mul(&y, &c1, Protect::None);
        let d1 = t1.sub(&t2, &c1, Protect::None);
        let (lo, hi) = d1.range();
        assert!(
            lo <= -1.4 && hi >= 1.4,
            "IA-like behaviour expected, got [{lo},{hi}]"
        );

        // The same computation with a healthy budget cancels.
        let c8 = ctx(8, Placement::Sorted);
        let x = Affine::<f64>::from_interval(0.0, 1.0, &c8);
        let y = Affine::<f64>::constant(1.5, &c8);
        let t1 = x.mul(&y, &c8, Protect::None);
        let t2 = x.mul(&y, &c8, Protect::None);
        let d8 = t1.sub(&t2, &c8, Protect::None);
        let (lo8, hi8) = d8.range();
        assert!(hi8 - lo8 < 0.1 * (hi - lo), "AA must beat IA here");
    }

    #[test]
    fn protection_changes_fusion_outcome() {
        // Under the oldest-symbol policy, z's symbol (the oldest) is the
        // first fusion victim and the later x·z − y·z cancellation is lost
        // — unless the static analysis protects it.
        let run = |protect_input: bool| -> f64 {
            let c = AaContext::new(
                AaConfig::new(2)
                    .with_placement(Placement::Sorted)
                    .with_fusion(Fusion::Oldest)
                    .with_vectorized(false),
            );
            let z = Affine::<f64>::from_interval(0.9, 1.1, &c); // oldest symbol
            let zids = z.symbol_ids();
            let prot = if protect_input {
                Protect::Ids(&zids)
            } else {
                Protect::None
            };
            let x = Affine::<f64>::from_interval(0.95, 1.05, &c);
            let y = Affine::<f64>::from_interval(0.95, 1.05, &c);
            let t1 = x.mul(&z, &c, prot);
            let t2 = y.mul(&z, &c, prot);
            let t3 = t1.sub(&t2, &c, prot);
            let (lo, hi) = t3.range();
            hi - lo
        };
        let protected_width = run(true);
        let unprotected_width = run(false);
        assert!(
            protected_width < unprotected_width,
            "protected {protected_width} !< unprotected {unprotected_width}"
        );
    }

    #[test]
    fn exact_zero_times_poisoned_is_not_nan() {
        // Regression: 0 · ∞ in the noise propagation used to produce NaN
        // ranges. An exactly-zero factor annihilates even an unbounded
        // noise term.
        for c in both_placements(4) {
            let zero = Affine::<f64>::exact(0.0, &c);
            let poisoned = Affine::<f64>::entire(&c);
            let p = zero.mul(&poisoned, &c, Protect::None);
            let (lo, hi) = p.range();
            assert!(!lo.is_nan() && !hi.is_nan(), "[{lo}, {hi}]");
            assert!(p.contains_f64(0.0));
            // sqrt of x·x where x has tiny symbols dips below zero and
            // poisons; multiplying by an exact zero must stay clean.
            let x = Affine::<f64>::constant(0.5, &c).sub(
                &Affine::<f64>::constant(0.5, &c),
                &c,
                Protect::None,
            );
            let sq = x.mul(&x, &c, Protect::None);
            let r = sq.sqrt(&c, Protect::None);
            let z = zero.mul(&r, &c, Protect::None);
            let (lo, hi) = z.range();
            assert!(!lo.is_nan() && !hi.is_nan(), "[{lo}, {hi}]");
        }
    }

    #[test]
    fn op_capacity_override_throttles_sorted_ops() {
        let c = ctx(16, Placement::Sorted);
        let a = Affine::<f64>::from_input(0.3, &c);
        let b = Affine::<f64>::from_input(0.7, &c);
        // Build values with many symbols at full budget.
        let mut x = a.mul(&b, &c, Protect::None);
        for _ in 0..10 {
            x = x.mul(&b, &c, Protect::None).add(&a, &c, Protect::None);
        }
        assert!(x.n_symbols() > 4);
        // Throttle: the next op must respect the lowered budget…
        c.set_op_capacity(3);
        let y = x.add(&a, &c, Protect::None);
        assert!(y.n_symbols() <= 3, "{} symbols", y.n_symbols());
        // …and stay sound.
        assert!(y.contains_f64(x.center_f64() + 0.3));
        // Reset restores the full budget for later ops.
        c.reset_op_capacity();
        let z = x.add(&a, &c, Protect::None);
        assert!(z.n_symbols() > 3);
    }

    #[test]
    fn protect_ids_caps_at_largest_magnitudes() {
        let c = ctx(16, Placement::Sorted);
        let big = Affine::<f64>::from_interval(0.0, 2.0, &c); // large symbol
        let small = Affine::<f64>::from_input(1.0, &c); // ulp symbol
        let v = big.add(&small, &c, Protect::None);
        let all = v.symbol_ids();
        assert!(all.len() >= 2);
        let capped = v.protect_ids(1);
        assert_eq!(capped.len(), 1);
        // The surviving id is the big symbol's.
        assert_eq!(capped[0], big.symbol_ids()[0]);
        // A generous limit returns everything, sorted.
        let loose = v.protect_ids(100);
        assert_eq!(loose, all);
    }

    #[test]
    fn f32a_soundness() {
        let c = ctx(8, Placement::Sorted);
        let a = Affine::<f32>::from_input(0.1, &c);
        let b = Affine::<f32>::from_input(0.2, &c);
        let s = a.add(&b, &c, Protect::None);
        assert!(s.contains_dd(Dd::from_two_sum(0.1, 0.2)));
        let p = a.mul(&b, &c, Protect::None);
        assert!(p.contains_dd(Dd::from_two_prod(0.1, 0.2)));
    }
}
