//! A tiny, fully deterministic PRNG for the fuzzer.
//!
//! splitmix64 seeds a xoshiro256++-style state; we only need statistical
//! spread and byte-for-byte reproducibility across platforms, not
//! cryptographic quality. Keeping it local (rather than depending on the
//! vendored `rand` shim) lets `safegen-fuzz` stay a leaf crate whose
//! output is a pure function of the seed forever — corpus files and CI
//! seeds must never shift because a shared dependency changed.

/// Deterministic fuzzer RNG. Same seed ⇒ same stream, on every platform.
#[derive(Clone, Debug)]
pub struct FuzzRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FuzzRng {
    /// Expands a 64-bit seed into the full state via splitmix64 (the
    /// construction recommended by the xoshiro authors).
    pub fn new(seed: u64) -> FuzzRng {
        let mut sm = seed;
        FuzzRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. `n` must be nonzero. Uses the widening
    /// multiply trick; the tiny modulo bias is irrelevant for fuzzing.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Uniform float in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = FuzzRng::new(0xC60);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FuzzRng::new(0xC60);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = FuzzRng::new(0xC61);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = FuzzRng::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut r = FuzzRng::new(42);
        for _ in 0..100 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
