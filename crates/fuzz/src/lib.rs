//! # safegen-fuzz
//!
//! Structured, seeded generation of C sources for differential soundness
//! fuzzing, plus greedy counterexample shrinking.
//!
//! The generator emits programs over the **full accepted surface** of the
//! SafeGen front end — the four arithmetic operators (division included),
//! unary negation and `fabs`, `fmin`/`fmax`/`sqrt` builtins, float
//! constants, `if/else` branches, bounded `for` loops, and multiple
//! functions per translation unit — going well beyond the straight-line
//! `+,-,*` triples the original property tests covered.
//!
//! Two properties are load-bearing for the rest of the stack:
//!
//! * **Determinism.** A [`FuzzProgram`] is a pure function of the seed
//!   (see [`generate_seeded`]); CI pins a seed and must see the same
//!   programs and verdicts forever, and corpus files must replay.
//! * **Drop-stability.** Statements reference earlier variables through
//!   *raw indices resolved modulo the number of visible definitions*, so
//!   the shrinker can delete any statement (or function, or simplify any
//!   operand) and the result is still a well-formed program — no
//!   renumbering pass, no dangling references.
//!
//! This crate deliberately knows nothing about compilation or domains: it
//! produces and transforms program *specs* and their C rendering. The
//! oracle/checker side lives in `safegen-core` (`safegen::fuzzer`), which
//! closes the loop by handing [`shrink`] a "does this still fail?"
//! callback.

mod rng;

pub use rng::FuzzRng;

use std::fmt::Write as _;

/// Binary operators the generator emits.
///
/// `Div` renders with a divisor pushed away from zero
/// (`l / (r*r + 0.5)`) so division is *exercised* on every run instead of
/// being skipped whenever the oracle meets an exactly-zero or
/// interval-zero-spanning divisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

/// Unary operators. `SqrtAbs` renders `sqrt(fabs(x) + 0.5)` — always in
/// the domain of the real square root, so the only thing it stresses is
/// the domains' sqrt enclosures (the exact oracle reports it as
/// not-exactly-representable and skips the rational check for that run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnKind {
    Neg,
    Abs,
    SqrtAbs,
}

/// Comparison operators usable in generated `if` conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpKind {
    Lt,
    Le,
    Gt,
    Ge,
}

/// One generated statement. Each statement defines exactly one new
/// variable; operand fields are raw indices resolved modulo the number of
/// variables visible at that point (parameters + earlier statements).
#[derive(Clone, Debug, PartialEq)]
pub enum FStmt {
    /// `double vN = <l> op <r>;`
    Bin { op: BinKind, l: usize, r: usize },
    /// `double vN = op(<a>);`
    Un { op: UnKind, a: usize },
    /// `double vN = c;`
    Const { c: f64 },
    /// ```c
    /// double vN = 0.0;
    /// if (<cl> cmp <cr>) { vN = <t>; } else { vN = <e>; }
    /// ```
    IfElse {
        cl: usize,
        cr: usize,
        cmp: CmpKind,
        t: (BinKind, usize, usize),
        e: (BinKind, usize, usize),
    },
    /// ```c
    /// double vN = <seed>;
    /// for (int iN = 0; iN < trips; iN++) { vN = vN * <mul> + <add>; }
    /// ```
    Loop {
        trips: u32,
        seed: usize,
        mul: usize,
        add: usize,
    },
    /// An *unbounded* accumulator loop: the trip count is the function's
    /// trailing `int n` parameter, unknown at compile time, so only the
    /// fixpoint engine can bound it without unrolling.
    ///
    /// ```c
    /// double vN = <seed>;
    /// int tN = 0;
    /// while (tN < n) {
    ///     vN = vN * c + <u>;              // div = false
    ///     vN = vN / (<u> * <u> + 0.5) + c; // div = true (guarded divisor)
    ///     tN = tN + 1;
    /// }
    /// ```
    ///
    /// Only generated when [`GenLimits::loop_weight`] is nonzero (which
    /// also gives every function the `int n` parameter), so the default
    /// corpus replays bit-identically.
    While {
        seed: usize,
        u: usize,
        /// Multiplier (`div = false`) or additive constant (`div = true`).
        /// The palette includes contractive, divergent, and sign-flipping
        /// values so widening, narrowing, and ±∞ escapes all get exercised.
        c: f64,
        /// Guarded-division body instead of the linear accumulator.
        div: bool,
    },
}

/// One generated function: `n_params` double parameters `v0..`, then one
/// variable per statement, returning the last defined variable (or the
/// last parameter if every statement was shrunk away).
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzFunction {
    pub n_params: usize,
    /// Trailing `int n` parameter (the [`FStmt::While`] trip bound). Kept
    /// even if shrinking removes every `while`, so the input vector and
    /// the signature never disagree. The matching input value is appended
    /// to the function's inputs (an integer rendered as a float).
    pub has_n: bool,
    pub stmts: Vec<FStmt>,
}

/// A full generated test case: a translation unit of one or more
/// functions plus concrete input points for each.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzProgram {
    pub functions: Vec<FuzzFunction>,
    /// Per-function input values, one `f64` per parameter.
    pub inputs: Vec<Vec<f64>>,
}

impl FuzzFunction {
    /// Number of variables visible to statement `i` (parameters plus the
    /// statements before it).
    fn avail(&self, i: usize) -> usize {
        self.n_params + i
    }

    /// Total size used as the shrinker's progress measure.
    fn weight(&self) -> usize {
        self.stmts
            .iter()
            .map(|s| match s {
                FStmt::IfElse { .. } => 3,
                FStmt::Loop { trips, .. } => 2 + *trips as usize,
                // Body complexity counts so the shrinker can simplify a
                // loop body (guarded division → linear, constant → 1.0)
                // without deleting the loop the failure may depend on.
                FStmt::While { c, div, .. } => 3 + *div as usize + (*c != 1.0) as usize,
                _ => 1,
            })
            .sum::<usize>()
            + self.n_params
    }
}

impl FuzzProgram {
    /// Shrinker progress measure: strictly decreasing across accepted
    /// shrink steps, which bounds the greedy loop.
    pub fn weight(&self) -> usize {
        self.functions
            .iter()
            .map(FuzzFunction::weight)
            .sum::<usize>()
            + self.functions.len()
    }

    /// Names of the functions, in emission order (`f0`, `f1`, …).
    pub fn function_names(&self) -> Vec<String> {
        (0..self.functions.len()).map(|i| format!("f{i}")).collect()
    }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

/// Generation limits. The defaults match the shapes the original
/// soundness property tests could never reach; they are kept modest so a
/// 200-iteration CI smoke run stays inside a couple of seconds.
#[derive(Clone, Debug)]
pub struct GenLimits {
    pub max_functions: usize,
    pub max_params: usize,
    pub max_stmts: usize,
    pub max_trips: u32,
    /// Extra faces on the statement die that produce [`FStmt::While`]
    /// (unbounded data-dependent loops). **Zero by default**: the
    /// statement die keeps exactly its historical 12 faces, so every
    /// pinned seed and corpus file replays bit-identically. Nonzero also
    /// gives every generated function the trailing `int n` parameter.
    pub loop_weight: u32,
}

impl Default for GenLimits {
    fn default() -> GenLimits {
        GenLimits {
            max_functions: 2,
            max_params: 3,
            max_stmts: 14,
            max_trips: 8,
            loop_weight: 0,
        }
    }
}

const CONST_PALETTE: [f64; 10] = [0.0, 0.5, 1.0, 1.5, 2.0, 0.1, 0.25, 3.0, -1.0, -0.5];

fn gen_const(rng: &mut FuzzRng) -> f64 {
    if rng.chance(1, 2) {
        CONST_PALETTE[rng.below(CONST_PALETTE.len())]
    } else {
        // Uniform in [-2, 2); occasionally scaled up to exercise larger
        // magnitudes without immediately overflowing product chains.
        let base = rng.unit_f64() * 4.0 - 2.0;
        if rng.chance(1, 10) {
            base * 5e3
        } else {
            base
        }
    }
}

fn gen_input(rng: &mut FuzzRng) -> f64 {
    let base = rng.unit_f64() * 4.0 - 2.0;
    if rng.chance(1, 12) {
        base * 5e3
    } else {
        base
    }
}

fn gen_bin_kind(rng: &mut FuzzRng) -> BinKind {
    // Division is deliberately over-weighted relative to a uniform pick:
    // it is the operator the original tests never generated.
    match rng.below(8) {
        0 | 1 => BinKind::Add,
        2 => BinKind::Sub,
        3 | 4 => BinKind::Mul,
        5 | 6 => BinKind::Div,
        _ => {
            if rng.chance(1, 2) {
                BinKind::Min
            } else {
                BinKind::Max
            }
        }
    }
}

fn gen_triple(rng: &mut FuzzRng, avail: usize) -> (BinKind, usize, usize) {
    (gen_bin_kind(rng), rng.below(avail), rng.below(avail))
}

/// Multiplier/offset palette for `while` bodies: contractive values that
/// converge, |c| = 1 edge cases, and divergent ones that must widen to a
/// sound ±∞ instead of hanging the fixpoint engine.
const WHILE_C_PALETTE: [f64; 8] = [0.5, 0.875, 0.9, -0.5, 0.25, 1.0, -1.0, 1.5];

fn gen_stmt(rng: &mut FuzzRng, avail: usize, limits: &GenLimits) -> FStmt {
    // `loop_weight` adds faces *past* the historical 12, so the die is
    // unchanged (and the RNG stream identical) whenever it is zero.
    let roll = rng.below(12 + limits.loop_weight as usize);
    if roll >= 12 {
        return FStmt::While {
            seed: rng.below(avail),
            u: rng.below(avail),
            c: WHILE_C_PALETTE[rng.below(WHILE_C_PALETTE.len())],
            div: rng.chance(1, 3),
        };
    }
    match roll {
        0..=4 => {
            let (op, l, r) = gen_triple(rng, avail);
            FStmt::Bin { op, l, r }
        }
        5 | 6 => FStmt::Un {
            op: match rng.below(5) {
                0 | 1 => UnKind::Neg,
                2 | 3 => UnKind::Abs,
                _ => UnKind::SqrtAbs,
            },
            a: rng.below(avail),
        },
        7 | 8 => FStmt::Const { c: gen_const(rng) },
        9 | 10 => FStmt::IfElse {
            cl: rng.below(avail),
            cr: rng.below(avail),
            cmp: match rng.below(4) {
                0 => CmpKind::Lt,
                1 => CmpKind::Le,
                2 => CmpKind::Gt,
                _ => CmpKind::Ge,
            },
            t: gen_triple(rng, avail),
            e: gen_triple(rng, avail),
        },
        _ => FStmt::Loop {
            trips: rng.range(1, limits.max_trips as usize) as u32,
            seed: rng.below(avail),
            mul: rng.below(avail),
            add: rng.below(avail),
        },
    }
}

/// Generates one program from an RNG stream.
pub fn generate(rng: &mut FuzzRng, limits: &GenLimits) -> FuzzProgram {
    let n_funcs = rng.range(1, limits.max_functions);
    let mut functions = Vec::with_capacity(n_funcs);
    let mut inputs = Vec::with_capacity(n_funcs);
    let has_n = limits.loop_weight > 0;
    for _ in 0..n_funcs {
        let n_params = rng.range(1, limits.max_params);
        let n_stmts = rng.range(3, limits.max_stmts);
        let mut stmts = Vec::with_capacity(n_stmts);
        for i in 0..n_stmts {
            let avail = n_params + i;
            stmts.push(gen_stmt(rng, avail, limits));
        }
        functions.push(FuzzFunction {
            n_params,
            has_n,
            stmts,
        });
        let mut vals: Vec<f64> = (0..n_params).map(|_| gen_input(rng)).collect();
        if has_n {
            // Small concrete trip counts keep the exact oracle engaged on
            // the same run the fixpoint enclosure is checked against.
            vals.push(rng.below(9) as f64);
        }
        inputs.push(vals);
    }
    FuzzProgram { functions, inputs }
}

/// The canonical per-iteration derivation used by `safegen fuzz` and the
/// replay corpus: iteration `iter` of seed `seed` is always this program.
pub fn generate_seeded(seed: u64, iter: u64, limits: &GenLimits) -> FuzzProgram {
    // Mix with distinct odd constants so (seed, iter) pairs never collide
    // in the low bits that xoshiro seeds from.
    let mixed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(iter.wrapping_mul(0xD134_2543_DE82_EF95) ^ 0xA5A5_5A5A_F00D_BEEF);
    generate(&mut FuzzRng::new(mixed), limits)
}

// ---------------------------------------------------------------------------
// Rendering to C
// ---------------------------------------------------------------------------

/// Formats an `f64` as a C literal that the SafeGen lexer re-reads to the
/// identical bit pattern (Rust's shortest round-trip repr; the lexer
/// accepts both positional and exponent forms).
pub fn fmt_f64_c(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x:?}")
    }
}

fn var(i: usize) -> String {
    format!("v{i}")
}

fn bin_expr(op: BinKind, l: &str, r: &str) -> String {
    match op {
        BinKind::Add => format!("{l} + {r}"),
        BinKind::Sub => format!("{l} - {r}"),
        BinKind::Mul => format!("{l} * {r}"),
        // Divisor bounded away from zero at every point: r*r + 0.5 ≥ 0.5.
        BinKind::Div => format!("{l} / ({r} * {r} + 0.5)"),
        BinKind::Min => format!("fmin({l}, {r})"),
        BinKind::Max => format!("fmax({l}, {r})"),
    }
}

fn cmp_str(c: CmpKind) -> &'static str {
    match c {
        CmpKind::Lt => "<",
        CmpKind::Le => "<=",
        CmpKind::Gt => ">",
        CmpKind::Ge => ">=",
    }
}

fn render_function(f: &FuzzFunction, name: &str, out: &mut String) {
    let mut params: Vec<String> = (0..f.n_params)
        .map(|i| format!("double {}", var(i)))
        .collect();
    if f.has_n {
        params.push("int n".to_string());
    }
    let _ = writeln!(out, "double {name}({}) {{", params.join(", "));
    for (i, stmt) in f.stmts.iter().enumerate() {
        let avail = f.avail(i);
        let def = var(f.n_params + i);
        // Raw indices resolve modulo the visible definitions; `avail` is
        // at least 1 because every function has at least one parameter.
        let v = |raw: usize| var(raw % avail);
        match stmt {
            FStmt::Bin { op, l, r } => {
                let _ = writeln!(out, "    double {def} = {};", bin_expr(*op, &v(*l), &v(*r)));
            }
            FStmt::Un { op, a } => {
                let a = v(*a);
                let expr = match op {
                    UnKind::Neg => format!("-{a}"),
                    UnKind::Abs => format!("fabs({a})"),
                    UnKind::SqrtAbs => format!("sqrt(fabs({a}) + 0.5)"),
                };
                let _ = writeln!(out, "    double {def} = {expr};");
            }
            FStmt::Const { c } => {
                let _ = writeln!(out, "    double {def} = {};", fmt_f64_c(*c));
            }
            FStmt::IfElse { cl, cr, cmp, t, e } => {
                let _ = writeln!(out, "    double {def} = 0.0;");
                let _ = writeln!(out, "    if ({} {} {}) {{", v(*cl), cmp_str(*cmp), v(*cr));
                let _ = writeln!(out, "        {def} = {};", bin_expr(t.0, &v(t.1), &v(t.2)));
                let _ = writeln!(out, "    }} else {{");
                let _ = writeln!(out, "        {def} = {};", bin_expr(e.0, &v(e.1), &v(e.2)));
                let _ = writeln!(out, "    }}");
            }
            FStmt::Loop {
                trips,
                seed,
                mul,
                add,
            } => {
                let idx = format!("i{}", f.n_params + i);
                let _ = writeln!(out, "    double {def} = {};", v(*seed));
                let _ = writeln!(out, "    for (int {idx} = 0; {idx} < {trips}; {idx}++) {{");
                let _ = writeln!(out, "        {def} = {def} * {} + {};", v(*mul), v(*add));
                let _ = writeln!(out, "    }}");
            }
            FStmt::While { seed, u, c, div } => {
                let t = format!("t{}", f.n_params + i);
                let c = fmt_f64_c(*c);
                let _ = writeln!(out, "    double {def} = {};", v(*seed));
                let _ = writeln!(out, "    int {t} = 0;");
                let _ = writeln!(out, "    while ({t} < n) {{");
                let body = if *div {
                    format!("{def} / ({u} * {u} + 0.5) + {c}", u = v(*u))
                } else {
                    format!("{def} * {c} + {}", v(*u))
                };
                let _ = writeln!(out, "        {def} = {body};");
                let _ = writeln!(out, "        {t} = {t} + 1;");
                let _ = writeln!(out, "    }}");
            }
        }
    }
    let ret = var(f.n_params + f.stmts.len() - 1).to_string();
    let ret = if f.stmts.is_empty() {
        var(f.n_params - 1)
    } else {
        ret
    };
    let _ = writeln!(out, "    return {ret};");
    let _ = writeln!(out, "}}");
}

/// Renders the whole program as a C translation unit, with a header
/// comment recording the inputs so the source alone is a replayable test
/// case (see `safegen::fuzzer::parse_corpus_header`).
pub fn render(prog: &FuzzProgram) -> String {
    let mut out = String::new();
    for (i, inputs) in prog.inputs.iter().enumerate() {
        let vals: Vec<String> = inputs.iter().map(|x| fmt_f64_c(*x)).collect();
        let _ = writeln!(out, "/* safegen-fuzz: fn=f{i} inputs={} */", vals.join(","));
    }
    for (i, f) in prog.functions.iter().enumerate() {
        let _ = writeln!(out);
        render_function(f, &format!("f{i}"), &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Statistics from a shrink run, for telemetry.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkStats {
    /// Candidate programs handed to the `still_fails` callback.
    pub checks: usize,
    /// Candidates the callback confirmed as still failing.
    pub accepted: usize,
}

/// Greedily shrinks `prog` to a smaller program for which `still_fails`
/// keeps returning `true`. First-improvement passes run to a fixpoint:
/// drop functions, drop statements, flatten `if`/`for` into plain binary
/// statements, simplify operators to `+`, constants to `1.0`, loop trip
/// counts to 1, and inputs to `1.0`/`0.0`. At most `max_checks`
/// candidates are tried, so a slow or flaky callback cannot hang the
/// fuzz loop.
pub fn shrink(
    prog: &FuzzProgram,
    still_fails: &mut dyn FnMut(&FuzzProgram) -> bool,
    max_checks: usize,
) -> (FuzzProgram, ShrinkStats) {
    let mut cur = prog.clone();
    let mut stats = ShrinkStats::default();
    fn try_candidate(
        cand: FuzzProgram,
        cur: &mut FuzzProgram,
        stats: &mut ShrinkStats,
        still_fails: &mut dyn FnMut(&FuzzProgram) -> bool,
        max_checks: usize,
    ) -> bool {
        if stats.checks >= max_checks || cand.weight() >= cur.weight() {
            return false;
        }
        stats.checks += 1;
        if still_fails(&cand) {
            stats.accepted += 1;
            *cur = cand;
            true
        } else {
            false
        }
    }

    loop {
        let before = cur.weight();

        // Pass 1: drop whole functions (keep at least one).
        let mut fi = 0;
        while fi < cur.functions.len() && cur.functions.len() > 1 {
            let mut cand = cur.clone();
            cand.functions.remove(fi);
            cand.inputs.remove(fi);
            if !try_candidate(cand, &mut cur, &mut stats, still_fails, max_checks) {
                fi += 1;
            }
        }

        // Pass 2: drop statements, last-to-first (indices are taken
        // modulo the visible definitions, so any deletion is valid).
        for fi in 0..cur.functions.len() {
            let mut si = cur.functions[fi].stmts.len();
            while si > 0 {
                si -= 1;
                if cur.functions[fi].stmts.len() <= 1 {
                    break;
                }
                let mut cand = cur.clone();
                cand.functions[fi].stmts.remove(si);
                try_candidate(cand, &mut cur, &mut stats, still_fails, max_checks);
            }
        }

        // Pass 3: simplify statement shapes and operands in place.
        for fi in 0..cur.functions.len() {
            for si in 0..cur.functions[fi].stmts.len() {
                let simplified: Vec<FStmt> = match &cur.functions[fi].stmts[si] {
                    FStmt::IfElse { t, e, .. } => vec![
                        FStmt::Bin {
                            op: t.0,
                            l: t.1,
                            r: t.2,
                        },
                        FStmt::Bin {
                            op: e.0,
                            l: e.1,
                            r: e.2,
                        },
                    ],
                    FStmt::Loop {
                        trips, seed, mul, ..
                    } => {
                        let mut cands = vec![FStmt::Bin {
                            op: BinKind::Mul,
                            l: *seed,
                            r: *mul,
                        }];
                        if *trips > 1 {
                            let mut one_trip = cur.functions[fi].stmts[si].clone();
                            if let FStmt::Loop { trips, .. } = &mut one_trip {
                                *trips = 1;
                            }
                            cands.push(one_trip);
                        }
                        cands
                    }
                    // Unbounded loops: first try deleting the loop
                    // entirely (flatten to one product), then keep the
                    // loop but minimize its body — a `loop-enclosure`
                    // failure needs the loop, so body shrinks are what
                    // make those counterexamples readable.
                    FStmt::While { seed, u, c, div } => {
                        let mut cands = vec![FStmt::Bin {
                            op: BinKind::Mul,
                            l: *seed,
                            r: *u,
                        }];
                        if *div {
                            cands.push(FStmt::While {
                                seed: *seed,
                                u: *u,
                                c: *c,
                                div: false,
                            });
                        }
                        if *c != 1.0 {
                            cands.push(FStmt::While {
                                seed: *seed,
                                u: *u,
                                c: 1.0,
                                div: *div,
                            });
                        }
                        cands
                    }
                    FStmt::Bin { op, l, r } if *op != BinKind::Add => vec![FStmt::Bin {
                        op: BinKind::Add,
                        l: *l,
                        r: *r,
                    }],
                    FStmt::Un { op, a } if *op != UnKind::Neg => vec![FStmt::Un {
                        op: UnKind::Neg,
                        a: *a,
                    }],
                    FStmt::Const { c } if *c != 1.0 => vec![FStmt::Const { c: 1.0 }],
                    _ => vec![],
                };
                for s in simplified {
                    let mut cand = cur.clone();
                    cand.functions[fi].stmts[si] = s;
                    if try_candidate(cand, &mut cur, &mut stats, still_fails, max_checks) {
                        break;
                    }
                }
            }
        }

        // Pass 4: simplify inputs toward 1.0 then 0.0.
        for fi in 0..cur.inputs.len() {
            for pi in 0..cur.inputs[fi].len() {
                for target in [1.0, 0.0] {
                    if cur.inputs[fi][pi] == target {
                        continue;
                    }
                    let mut cand = cur.clone();
                    cand.inputs[fi][pi] = target;
                    // Input simplification does not reduce the structural
                    // weight; accept it when it preserves failure by
                    // checking directly rather than through the
                    // weight-gated candidate filter.
                    if stats.checks >= max_checks {
                        break;
                    }
                    stats.checks += 1;
                    if still_fails(&cand) {
                        stats.accepted += 1;
                        cur = cand;
                        break;
                    }
                }
            }
        }

        if cur.weight() >= before || stats.checks >= max_checks {
            break;
        }
    }
    (cur, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let limits = GenLimits::default();
        let a = generate_seeded(0xC60, 7, &limits);
        let b = generate_seeded(0xC60, 7, &limits);
        assert_eq!(a, b);
        assert_eq!(render(&a), render(&b));
        let c = generate_seeded(0xC60, 8, &limits);
        assert_ne!(render(&a), render(&c));
    }

    #[test]
    fn corpus_of_seeds_covers_every_shape() {
        let limits = GenLimits::default();
        let mut saw = (false, false, false, false, false); // div, if, for, sqrt, two-fn
        for iter in 0..400u64 {
            let p = generate_seeded(1, iter, &limits);
            let src = render(&p);
            saw.0 |= src.contains('/') && src.contains("+ 0.5)");
            saw.1 |= src.contains("if (");
            saw.2 |= src.contains("for (");
            saw.3 |= src.contains("sqrt(");
            saw.4 |= p.functions.len() > 1;
        }
        assert!(
            saw == (true, true, true, true, true),
            "coverage gaps (div, if, for, sqrt, multi-fn): {saw:?}"
        );
    }

    #[test]
    fn loop_weight_zero_keeps_seeds_replay_identical() {
        // The explicit-zero limits must drive the RNG exactly like the
        // historical defaults: no `while` shapes, no `int n` parameter,
        // and bit-identical renderings for pinned seeds.
        let default = GenLimits::default();
        let explicit = GenLimits {
            loop_weight: 0,
            ..GenLimits::default()
        };
        for iter in 0..50u64 {
            let a = generate_seeded(0xC60, iter, &default);
            let b = generate_seeded(0xC60, iter, &explicit);
            assert_eq!(a, b);
            let src = render(&a);
            assert!(!src.contains("while ("), "{src}");
            assert!(!src.contains("int n"), "{src}");
        }
    }

    #[test]
    fn loop_weight_generates_unbounded_loops() {
        let limits = GenLimits {
            loop_weight: 4,
            ..GenLimits::default()
        };
        let mut saw = (false, false, false); // while, guarded-div body, linear body
        for iter in 0..200u64 {
            let p = generate_seeded(2, iter, &limits);
            let src = render(&p);
            for f in &p.functions {
                assert!(f.has_n);
                for s in &f.stmts {
                    if let FStmt::While { div, .. } = s {
                        saw.0 = true;
                        if *div {
                            saw.1 = true;
                        } else {
                            saw.2 = true;
                        }
                    }
                }
            }
            if src.contains("while (") {
                assert!(src.contains("int n"), "guard parameter missing: {src}");
            }
            // Every function's input vector carries the trip count too.
            for (f, inputs) in p.functions.iter().zip(&p.inputs) {
                assert_eq!(inputs.len(), f.n_params + 1);
                let trip = *inputs.last().unwrap();
                assert!(trip == trip.trunc() && (0.0..9.0).contains(&trip));
            }
        }
        assert!(
            saw == (true, true, true),
            "coverage gaps (while, div body, linear body): {saw:?}"
        );
    }

    #[test]
    fn shrinker_minimizes_loop_bodies_without_losing_the_loop() {
        let limits = GenLimits {
            loop_weight: 12,
            ..GenLimits::default()
        };
        let mut found = false;
        for iter in 0..200u64 {
            let p = generate_seeded(11, iter, &limits);
            let has_div_while = p.functions.iter().any(|f| {
                f.stmts
                    .iter()
                    .any(|s| matches!(s, FStmt::While { div: true, .. }))
            });
            if !has_div_while {
                continue;
            }
            found = true;
            // Predicate: "fails" while a `while` loop survives at all —
            // so the shrinker must simplify bodies rather than delete.
            let mut fails = |cand: &FuzzProgram| render(cand).contains("while (");
            let (min, _) = shrink(&p, &mut fails, 2000);
            assert!(render(&min).contains("while ("), "shrink lost the loop");
            let whiles: Vec<&FStmt> = min
                .functions
                .iter()
                .flat_map(|f| &f.stmts)
                .filter(|s| matches!(s, FStmt::While { .. }))
                .collect();
            assert_eq!(whiles.len(), 1, "{}", render(&min));
            assert!(
                matches!(
                    whiles[0],
                    FStmt::While {
                        c: 1.0,
                        div: false,
                        ..
                    }
                ),
                "body not minimized: {:?}",
                whiles[0]
            );
            break;
        }
        assert!(found, "no seed produced a guarded-division while loop");
    }

    #[test]
    fn rendered_constants_round_trip_exactly() {
        for x in [0.1, -2.5, 1e-7, 1234.5678, 3.0, -0.0, 5e3 * 1.7] {
            let s = fmt_f64_c(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {s}");
        }
    }

    #[test]
    fn every_variable_reference_is_in_scope() {
        // The mod-avail discipline means the rendered source never
        // mentions a variable at or past its definition point.
        let limits = GenLimits::default();
        for iter in 0..50u64 {
            let p = generate_seeded(3, iter, &limits);
            for f in &p.functions {
                for (i, stmt) in f.stmts.iter().enumerate() {
                    let avail = f.n_params + i;
                    let refs: Vec<usize> = match stmt {
                        FStmt::Bin { l, r, .. } => vec![*l % avail, *r % avail],
                        FStmt::Un { a, .. } => vec![*a % avail],
                        FStmt::Const { .. } => vec![],
                        FStmt::IfElse { cl, cr, t, e, .. } => vec![
                            *cl % avail,
                            *cr % avail,
                            t.1 % avail,
                            t.2 % avail,
                            e.1 % avail,
                            e.2 % avail,
                        ],
                        FStmt::Loop { seed, mul, add, .. } => {
                            vec![*seed % avail, *mul % avail, *add % avail]
                        }
                        FStmt::While { seed, u, .. } => vec![*seed % avail, *u % avail],
                    };
                    assert!(refs.iter().all(|&r| r < avail));
                }
            }
        }
    }

    #[test]
    fn shrinker_minimizes_under_synthetic_predicate() {
        // Predicate: "fails" iff the rendered source still contains a
        // division. The shrinker should strip everything else away.
        let limits = GenLimits::default();
        let mut found = false;
        for iter in 0..200u64 {
            let p = generate_seeded(5, iter, &limits);
            if !render(&p).contains("+ 0.5)") || !render(&p).contains('/') {
                continue;
            }
            found = true;
            let mut fails = |cand: &FuzzProgram| render(cand).contains("/ (");
            let (min, stats) = shrink(&p, &mut fails, 2000);
            assert!(render(&min).contains("/ ("), "shrink lost the failure");
            assert!(min.weight() <= p.weight());
            assert!(stats.accepted <= stats.checks);
            // A single-division program has one function and few stmts.
            assert_eq!(min.functions.len(), 1);
            assert!(
                min.functions[0].stmts.len() <= 3,
                "not minimal: {}",
                render(&min)
            );
            break;
        }
        assert!(found, "no seed produced a division program");
    }

    #[test]
    fn shrinker_respects_check_budget() {
        let limits = GenLimits::default();
        let p = generate_seeded(9, 0, &limits);
        let mut calls = 0usize;
        let mut fails = |_: &FuzzProgram| {
            calls += 1;
            true
        };
        let (_, stats) = shrink(&p, &mut fails, 10);
        assert!(stats.checks <= 10);
        assert_eq!(calls, stats.checks);
    }

    #[test]
    fn render_header_carries_inputs() {
        let p = FuzzProgram {
            functions: vec![FuzzFunction {
                n_params: 2,
                has_n: false,
                stmts: vec![FStmt::Bin {
                    op: BinKind::Add,
                    l: 0,
                    r: 1,
                }],
            }],
            inputs: vec![vec![1.5, -0.25]],
        };
        let src = render(&p);
        assert!(
            src.contains("/* safegen-fuzz: fn=f0 inputs=1.5,-0.25 */"),
            "{src}"
        );
        assert!(src.contains("double f0(double v0, double v1)"), "{src}");
        assert!(src.contains("return v2;"), "{src}");
    }
}
