//! Source-to-source transformation (the paper's Fig. 2): print the sound
//! C code SafeGen generates for a small input program, with and without
//! the static-analysis pragmas.
//!
//! Run with: `cargo run --release --example emit_c`

use safegen_suite::cfront;
use safegen_suite::ir;
use safegen_suite::safegen::{emit_c, EmitPrecision};

fn main() {
    let src = r#"
double kernel(double a, double b, double z) {
    double c = a * b + 0.1;
    return c * z - b * z;
}
"#;
    println!("--- input ---------------------------------------------------");
    println!("{}", src.trim());

    let unit = cfront::parse(src).expect("parses");
    let unit = cfront::rename_unique(&unit);
    let sema = cfront::analyze(&unit).expect("type-checks");
    let tac = ir::to_tac(&unit, &sema);

    println!("\n--- three-address form (analysis input) ---------------------");
    print!("{}", cfront::print_unit(&tac));

    let annotated = safegen_suite::analysis::annotate_unit(&tac, 8).expect("analysis");
    println!("\n--- annotated (max-reuse priorities, k = 8) ------------------");
    print!("{}", cfront::print_unit(&annotated));

    let sema = cfront::analyze(&annotated).expect("still valid");
    println!("\n--- sound C output (f64a) ------------------------------------");
    print!("{}", emit_c(&annotated, &sema, EmitPrecision::F64));

    println!("\n--- sound C output (dda, double-double centers) ---------------");
    print!("{}", emit_c(&annotated, &sema, EmitPrecision::Dd));
}
