//! Quickstart: compile a tiny C function into a sound computation and
//! read off the certificate.
//!
//! Run with: `cargo run --release --example quickstart`

use safegen_suite::safegen::{Compiler, RunConfig};

fn main() {
    // The input program: ordinary (unsound) C floating-point code.
    let src = r#"
        double poly(double x) {
            double r = 1.0;
            for (int i = 0; i < 12; i++) {
                r = r * x - 0.3;
            }
            return r;
        }
    "#;

    // Compile once; run under any numeric configuration.
    let compiled = Compiler::new().compile(src).expect("valid program");

    let x = 0.73;
    // Reference: what the unsound program computes.
    let unsound = compiled
        .run("poly", &[x.into()], &RunConfig::unsound())
        .unwrap();
    let (v, _) = unsound.ret.unwrap();
    println!("unsound f64 result:          {v:.17}");

    // The same computation, soundly, under a few configurations.
    for cfg in [
        RunConfig::interval_f64(),
        RunConfig::affine_f64(8),
        RunConfig::affine_f64(32),
        RunConfig::affine_dd(16),
    ] {
        let r = compiled.run("poly", &[x.into()], &cfg).unwrap();
        let (lo, hi) = r.ret.unwrap();
        println!(
            "{:<18} certified bits: {:>5.1}   range: [{lo:.17}, {hi:.17}]",
            cfg.label(),
            r.acc_bits
        );
        assert!(
            lo <= v && v <= hi,
            "sound range must contain the f64 result"
        );
    }

    println!("\nEvery range above is guaranteed to contain the exact real-arithmetic result.");
}
