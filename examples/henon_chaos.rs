//! The Hénon map: where interval arithmetic dies and affine arithmetic
//! survives (the paper's headline benchmark).
//!
//! Iterating `x' = 1 − 1.05·x² + y`, `y' = 0.3·x` amplifies input
//! uncertainty exponentially. Interval arithmetic additionally suffers the
//! dependency problem and loses *all* certified bits — even with
//! double-double endpoints — while bounded affine arithmetic keeps
//! tracking the correlations and certifies dozens of bits.
//!
//! Run with: `cargo run --release --example henon_chaos`

use safegen_suite::safegen::{Compiler, RunConfig};

fn henon_src(iters: usize) -> String {
    format!(
        "void henon(double x, double y, double out[2]) {{
            for (int i = 0; i < {iters}; i++) {{
                double xn = 1.0 - 1.05 * x * x + y;
                y = 0.3 * x;
                x = xn;
            }}
            out[0] = x;
            out[1] = y;
        }}"
    )
}

fn main() {
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "iters", "IGen-f64", "IGen-dd", "AA k=8", "AA k=16", "AA k=48"
    );
    for iters in [25usize, 50, 75, 100] {
        let compiled = Compiler::new().compile(&henon_src(iters)).unwrap();
        let args = [0.3.into(), 0.4.into(), vec![0.0, 0.0].into()];
        let acc = |cfg: &RunConfig| compiled.run("henon", &args, cfg).unwrap().acc_bits.max(0.0);
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            iters,
            acc(&RunConfig::interval_f64()),
            acc(&RunConfig::interval_dd()),
            acc(&RunConfig::affine_f64(8)),
            acc(&RunConfig::affine_f64(16)),
            acc(&RunConfig::affine_f64(48)),
        );
    }
    println!("\ncertified bits per configuration; 0 = the result is worthless.");
    println!("IA cannot be saved by more precision (IGen-dd dies too):");
    println!("only tracking correlations (AA) delays the collapse.");
}
