//! Thread-scaling study of the parallel batch engine: evaluates one
//! workload over a fixed batch of random inputs at 1, 2, 4, … workers
//! and prints the speedup over the serial path — while verifying that
//! every enclosure stays bit-identical to the serial result (the
//! engine's determinism guarantee; see `safegen::batch`).
//!
//! Run with: `cargo run --release --example batch_scaling`

use rand::rngs::StdRng;
use rand::SeedableRng;
use safegen_bench::{Workload, WorkloadKind};
use safegen_suite::safegen::batch::{run_batch_with, BatchOptions};
use safegen_suite::safegen::{Compiler, RunConfig};
use std::time::Instant;

fn main() {
    let w = Workload::new(WorkloadKind::Sor { n: 12, iters: 10 });
    let cfg = RunConfig::affine_f64(16);
    let n = 64;
    let base_seed = 0x5CA1_AB1E;

    let compiled = Compiler::new().compile(&w.source).unwrap();
    let prog = compiled.program_for(w.func, &cfg);
    let make_input = |seed: u64, _i: usize| w.args(&mut StdRng::seed_from_u64(seed));

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut counts = vec![1usize];
    while *counts.last().unwrap() * 2 <= cores {
        counts.push(counts.last().unwrap() * 2);
    }

    println!(
        "batch of {n} × {} under {} ({cores} cores available)",
        w.name,
        cfg.label()
    );
    println!(
        "{:<8} {:>10} {:>9} {:>14}",
        "threads", "wall(s)", "speedup", "bit-identical"
    );

    let mut serial_items = None;
    let mut serial_wall = 0.0;
    for &t in &counts {
        let t0 = Instant::now();
        let batch = run_batch_with(
            &prog,
            n,
            base_seed,
            make_input,
            &cfg,
            &BatchOptions::with_threads(t),
        )
        .unwrap();
        let wall = t0.elapsed().as_secs_f64();

        let rets: Vec<_> = batch.items.iter().map(|it| it.report.ret).collect();
        let identical = match &serial_items {
            None => {
                serial_items = Some(rets);
                serial_wall = wall;
                true
            }
            Some(serial) => serial == &rets,
        };
        assert!(identical, "parallel results diverged from serial at t={t}");
        println!(
            "{:<8} {:>10.3} {:>8.2}x {:>14}",
            t,
            wall,
            serial_wall / wall,
            "yes"
        );
    }
}
