//! Scaling study: how certified accuracy behaves as the problem grows
//! (the paper's Fig. 10 in miniature).
//!
//! `sor` has computation depth O(1) per grid cell and keeps roughly
//! constant accuracy as the grid grows; `luf`'s depth is O(n) and its
//! certificate decays until nothing can be certified.
//!
//! Run with: `cargo run --release --example sor_scaling`

use rand::rngs::StdRng;
use rand::SeedableRng;
use safegen_bench::{Workload, WorkloadKind};
use safegen_suite::safegen::{Compiler, RunConfig};

fn main() {
    let cfg = RunConfig::affine_f64(16);
    println!("{:<6} {:>12} {:>12}", "n", "sor(bits)", "luf(bits)");
    for n in [8usize, 16, 24, 32, 40] {
        let mut row = vec![];
        for w in [
            Workload::new(WorkloadKind::Sor { n, iters: 10 }),
            Workload::new(WorkloadKind::Luf { n }),
        ] {
            let compiled = Compiler::new().compile(&w.source).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let args = w.args(&mut rng);
            let r = compiled.run(w.func, &args, &cfg).unwrap();
            row.push(r.acc_bits.max(0.0));
        }
        println!("{:<6} {:>12.1} {:>12.1}", n, row[0], row[1]);
    }
    println!("\nsor: shallow dependencies — accuracy is size-stable.");
    println!("luf: O(n)-deep dependency chains — the certificate erodes with n.");
}
