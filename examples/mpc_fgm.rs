//! Certified Model Predictive Control: the fast gradient method with a
//! soundness certificate.
//!
//! MPC runs an optimizer inside a feedback loop; round-off errors in the
//! solver can destabilize the controlled plant, which is why sound
//! floating-point matters in this domain (paper Sec. I, [3], [4]). This
//! example solves a box-constrained QP with the fast gradient method and
//! certifies how many bits of the returned control input are correct.
//!
//! Run with: `cargo run --release --example mpc_fgm`

use rand::rngs::StdRng;
use rand::SeedableRng;
use safegen_bench::{Workload, WorkloadKind};
use safegen_suite::safegen::{Compiler, RunConfig};

fn main() {
    let n = 8;
    let w = Workload::new(WorkloadKind::Fgm { n, iters: 40 });
    let compiled = Compiler::new().compile(&w.source).expect("fgm compiles");

    let mut rng = StdRng::seed_from_u64(2022);
    let args = w.args(&mut rng);
    let reference = w.native(&args);

    println!("fast gradient method, n = {n}, 40 iterations\n");
    for cfg in [
        RunConfig::interval_f64(),
        RunConfig::affine_f64(8),
        RunConfig::affine_f64(32),
    ] {
        let r = compiled.run("fgm", &args, &cfg).unwrap();
        let out = &r.arrays.last().unwrap().1;
        println!(
            "{} — certified bits (worst coordinate): {:.1}",
            cfg.label(),
            r.acc_bits
        );
        for (i, ((lo, hi), x)) in out.iter().zip(&reference).enumerate().take(3) {
            println!("  x[{i}] ∈ [{lo:.15}, {hi:.15}]   (f64 run: {x:.15})");
            assert!(lo <= x && x <= hi);
        }
        println!("  …");
    }
    println!(
        "\nA controller can accept the solution only if enough bits are certified —\n\
         the affine configurations certify more than interval arithmetic at the\n\
         same double precision."
    );
}
