//! Umbrella crate: re-exports the SafeGen-rs workspace for the integration
//! tests and examples that live at the repository root.
pub use safegen;
pub use safegen_affine as affine;
pub use safegen_analysis as analysis;
pub use safegen_artifact as artifact;
pub use safegen_cfront as cfront;
pub use safegen_fpcore as fpcore;
pub use safegen_fuzz as fuzz;
pub use safegen_ilp as ilp;
pub use safegen_interval as interval;
pub use safegen_ir as ir;
pub use safegen_rational as rational;
pub use safegen_telemetry as telemetry;
